//! Property-based tests (proptest) on the core data structures and
//! invariants, spanning the workspace crates.

use faultsim::Attacker;
use hypervector::{BinaryHypervector, BundleAccumulator, IntHypervector, PackedBits, Precision};
use proptest::prelude::*;

proptest! {
    /// PackedBits agrees with a plain Vec<bool> reference implementation
    /// under any sequence of set/flip operations.
    #[test]
    fn packed_bits_matches_reference(
        len in 1usize..300,
        ops in prop::collection::vec((0usize..300, any::<bool>(), any::<bool>()), 0..50),
    ) {
        let mut bits = PackedBits::zeros(len);
        let mut reference = vec![false; len];
        for (pos, value, is_flip) in ops {
            let pos = pos % len;
            if is_flip {
                bits.flip(pos);
                reference[pos] = !reference[pos];
            } else {
                bits.set(pos, value);
                reference[pos] = value;
            }
        }
        for (i, &expected) in reference.iter().enumerate() {
            prop_assert_eq!(bits.get(i), expected, "bit {}", i);
        }
        prop_assert_eq!(bits.count_ones(), reference.iter().filter(|&&b| b).count());
    }

    /// Hamming distance is a metric: non-negative (by type), symmetric,
    /// zero iff equal, and satisfies the triangle inequality.
    #[test]
    fn hamming_is_a_metric(
        a in prop::collection::vec(any::<bool>(), 64),
        b in prop::collection::vec(any::<bool>(), 64),
        c in prop::collection::vec(any::<bool>(), 64),
    ) {
        let ha = BinaryHypervector::from_fn(64, |i| a[i]);
        let hb = BinaryHypervector::from_fn(64, |i| b[i]);
        let hc = BinaryHypervector::from_fn(64, |i| c[i]);
        prop_assert_eq!(ha.hamming_distance(&hb), hb.hamming_distance(&ha));
        prop_assert_eq!(ha.hamming_distance(&ha), 0);
        if a != b {
            prop_assert!(ha.hamming_distance(&hb) > 0);
        }
        prop_assert!(
            ha.hamming_distance(&hc)
                <= ha.hamming_distance(&hb) + hb.hamming_distance(&hc)
        );
    }

    /// Binding is self-inverse and distance-preserving for arbitrary
    /// vectors, not just random ones.
    #[test]
    fn bind_properties(
        a in prop::collection::vec(any::<bool>(), 128),
        b in prop::collection::vec(any::<bool>(), 128),
        k in prop::collection::vec(any::<bool>(), 128),
    ) {
        let ha = BinaryHypervector::from_fn(128, |i| a[i]);
        let hb = BinaryHypervector::from_fn(128, |i| b[i]);
        let hk = BinaryHypervector::from_fn(128, |i| k[i]);
        prop_assert_eq!(ha.bind(&hb).bind(&hb), ha.clone());
        prop_assert_eq!(
            ha.hamming_distance(&hb),
            ha.bind(&hk).hamming_distance(&hb.bind(&hk))
        );
    }

    /// The bundle majority never disagrees with a unanimous component, and
    /// bundling is permutation-invariant over its inputs.
    #[test]
    fn bundle_majority_bounds(
        rows in prop::collection::vec(prop::collection::vec(any::<bool>(), 32), 1..9),
    ) {
        let dim = 32;
        let mut acc = BundleAccumulator::new(dim);
        for row in &rows {
            acc.add(&BinaryHypervector::from_fn(dim, |i| row[i]));
        }
        let bundled = acc.to_binary();
        for i in 0..dim {
            let ones = rows.iter().filter(|r| r[i]).count();
            if ones == rows.len() {
                prop_assert!(bundled.get(i), "unanimous one lost at {}", i);
            }
            if ones == 0 {
                prop_assert!(!bundled.get(i), "unanimous zero lost at {}", i);
            }
        }
        // Permutation invariance: add in reverse order.
        let mut acc_rev = BundleAccumulator::new(dim);
        for row in rows.iter().rev() {
            acc_rev.add(&BinaryHypervector::from_fn(dim, |i| row[i]));
        }
        prop_assert_eq!(acc_rev.to_binary(), bundled);
    }

    /// Multi-bit hypervectors survive pack/unpack bit-exactly at every
    /// precision.
    #[test]
    fn int_hypervector_pack_roundtrip(
        bits in 1u8..=8,
        raw in prop::collection::vec(any::<i32>(), 1..40),
    ) {
        let precision = Precision::new(bits).expect("valid");
        let values: Vec<i32> = raw
            .iter()
            .map(|&v| {
                if bits == 1 {
                    if v % 2 == 0 { 1 } else { -1 }
                } else {
                    let span = precision.max_value() - precision.min_value() + 1;
                    precision.min_value() + (v.rem_euclid(span))
                }
            })
            .collect();
        let hv = IntHypervector::from_values(values, precision);
        let decoded = IntHypervector::from_packed(&hv.pack(), hv.dim(), precision);
        prop_assert_eq!(decoded, hv);
    }

    /// The fault injector flips exactly the requested number of distinct
    /// bits for any image size and rate.
    #[test]
    fn attacker_flips_exact_count(
        words in 1usize..16,
        rate in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let bit_len = words * 64;
        let mut image = vec![0u64; words];
        let report = Attacker::seed_from(seed).random_flips(&mut image, bit_len, rate);
        let expected = (rate * bit_len as f64).round() as usize;
        prop_assert_eq!(report.flipped_bits, expected);
        let ones: usize = image.iter().map(|w| w.count_ones() as usize).sum();
        prop_assert_eq!(ones, expected, "flips must hit distinct positions");
    }

    /// Double application of the same random attack is NOT the identity in
    /// general, but attacking with rate zero always is.
    #[test]
    fn zero_rate_attack_is_identity(words in 1usize..8, seed in any::<u64>()) {
        let mut image: Vec<u64> = (0..words as u64).map(|i| i.wrapping_mul(0x9e3779b9)).collect();
        let original = image.clone();
        Attacker::seed_from(seed).random_flips(&mut image, words * 64, 0.0);
        prop_assert_eq!(image, original);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SECDED corrects any single flip of any codeword of any word.
    #[test]
    fn secded_corrects_any_single_flip(word in any::<u64>(), bit in 0u32..72) {
        let codec = pimsim::SecdedCodec::new();
        let code = codec.encode(word);
        let decoded = codec.decode(code ^ (1u128 << bit));
        prop_assert_eq!(decoded.data, word);
        prop_assert!(decoded.corrected);
        prop_assert!(!decoded.uncorrectable);
    }

    /// Gate-level PIM arithmetic agrees with native arithmetic on random
    /// operands.
    #[test]
    fn pim_arithmetic_matches_native(a in 0u64..256, b in 0u64..256) {
        let mut gate = pimsim::NorGate::new(pimsim::DeviceParams::default());
        prop_assert_eq!(pimsim::logic::add(&mut gate, a, b, 16), (a + b) & 0xffff);
        prop_assert_eq!(pimsim::logic::multiply(&mut gate, a, b, 8), a * b);
    }

    /// The 8-bit fixed-point codec round-trips within half a quantization
    /// step for in-range values.
    #[test]
    fn fixed8_roundtrip_error_bound(scale in 0.1f64..100.0, frac in -1.0f64..1.0) {
        let codec = baselines::Fixed8Codec::from_max_abs(scale);
        let value = frac * scale;
        let err = (codec.decode(codec.encode(value)) - value).abs();
        prop_assert!(err <= scale / 127.0 / 2.0 + 1e-12, "error {} at {}", err, value);
    }
}
