//! Cross-crate integration tests: the full train → attack → recover flow
//! and the robustness orderings the paper claims, wired through the real
//! public APIs of every workspace crate.

use faultsim::Attacker;
use robusthd::{
    accuracy, Encoder, HdcConfig, RecordEncoder, RecoveryConfig, RecoveryEngine, SubstitutionMode,
    TrainedModel,
};
use synthdata::{DatasetSpec, GeneratorConfig};

struct Pipeline {
    queries: Vec<hypervector::BinaryHypervector>,
    labels: Vec<usize>,
    model: TrainedModel,
    config: HdcConfig,
}

fn pipeline(dim: usize, seed: u64) -> Pipeline {
    pipeline_sized(dim, seed, 600, 400)
}

fn pipeline_sized(dim: usize, seed: u64, train_size: usize, test_size: usize) -> Pipeline {
    let spec = DatasetSpec::ucihar().with_sizes(train_size, test_size);
    let data = GeneratorConfig::new(seed).generate(&spec);
    let config = HdcConfig::builder()
        .dimension(dim)
        .seed(seed)
        .build()
        .expect("valid config");
    let encoder = RecordEncoder::new(&config, spec.features);
    let train: Vec<_> = data
        .train
        .iter()
        .map(|s| encoder.encode(&s.features))
        .collect();
    let train_labels: Vec<_> = data.train.iter().map(|s| s.label).collect();
    let queries: Vec<_> = data
        .test
        .iter()
        .map(|s| encoder.encode(&s.features))
        .collect();
    let labels: Vec<_> = data.test.iter().map(|s| s.label).collect();
    let model = TrainedModel::train(&train, &train_labels, spec.classes, &config);
    Pipeline {
        queries,
        labels,
        model,
        config,
    }
}

fn attack(model: &TrainedModel, rate: f64, seed: u64) -> TrainedModel {
    let mut image = model.to_memory_image();
    let bits = image.len();
    Attacker::seed_from(seed).random_flips(image.words_mut(), bits, rate);
    image.mask_tail();
    let mut attacked = model.clone();
    attacked.load_memory_image(&image);
    attacked
}

#[test]
fn hdc_learns_the_synthetic_task() {
    let p = pipeline(4096, 1);
    let acc = accuracy(&p.model, &p.queries, &p.labels);
    assert!(acc > 0.9, "clean accuracy only {acc}");
}

#[test]
fn hdc_survives_ten_percent_bit_flips() {
    let p = pipeline(10_000, 2);
    let clean = accuracy(&p.model, &p.queries, &p.labels);
    let attacked = attack(&p.model, 0.10, 7);
    let after = accuracy(&attacked, &p.queries, &p.labels);
    assert!(
        clean - after < 0.05,
        "10% flips cost too much: {clean} -> {after}"
    );
}

#[test]
fn robustness_grows_with_dimension() {
    // Table 1's dimension claim, end to end: at a heavy error rate, the
    // 10k-dimensional model loses no more than the 2k one.
    let heavy_rate = 0.25;
    let loss = |dim: usize| {
        let p = pipeline(dim, 3);
        let clean = accuracy(&p.model, &p.queries, &p.labels);
        let attacked = attack(&p.model, heavy_rate, 7);
        (clean - accuracy(&attacked, &p.queries, &p.labels)).max(0.0)
    };
    let small = loss(2_048);
    let large = loss(10_000);
    assert!(
        large <= small + 0.01,
        "D=10k loss {large} should not exceed D=2k loss {small}"
    );
}

#[test]
fn recovery_repairs_attacked_model_from_unlabeled_traffic() {
    // Majority-counter regeneration rebuilds each class from its trusted
    // traffic, so it needs a healthy per-class query volume (~50/class).
    let p = pipeline_sized(4096, 4, 1200, 600);
    let clean = accuracy(&p.model, &p.queries, &p.labels);
    let mut attacked = attack(&p.model, 0.10, 9);
    let before = accuracy(&attacked, &p.queries, &p.labels);

    let recovery = RecoveryConfig::builder()
        .confidence_threshold(0.45)
        .substitution_rate(0.5)
        .substitution(SubstitutionMode::MajorityCounter { saturation: 3 })
        .build()
        .expect("valid recovery config");
    let mut engine = RecoveryEngine::new(recovery, p.config.softmax_beta);
    for _ in 0..16 {
        engine.run_stream(&mut attacked, &p.queries);
    }
    let after = accuracy(&attacked, &p.queries, &p.labels);
    assert!(
        after + 1e-9 >= before,
        "recovery regressed accuracy: {before} -> {after}"
    );
    assert!(
        clean - after < 0.02,
        "recovered loss too high: clean {clean}, recovered {after}"
    );
    assert!(engine.stats().samples_trusted > 0);
}

#[test]
fn hdc_beats_fixed_point_baselines_under_targeted_attack() {
    use baselines::{BitStoredModel, Classifier, LinearSvm, Mlp, MlpConfig, SvmConfig};

    let spec = DatasetSpec::ucihar().with_sizes(600, 400);
    let data = GeneratorConfig::new(5).generate(&spec);

    // HDC loss at 6% random flips (targeted == random for binary storage).
    let config = HdcConfig::builder()
        .dimension(10_000)
        .seed(5)
        .build()
        .expect("valid config");
    let encoder = RecordEncoder::new(&config, spec.features);
    let train: Vec<_> = data
        .train
        .iter()
        .map(|s| encoder.encode(&s.features))
        .collect();
    let train_labels: Vec<_> = data.train.iter().map(|s| s.label).collect();
    let queries: Vec<_> = data
        .test
        .iter()
        .map(|s| encoder.encode(&s.features))
        .collect();
    let labels: Vec<_> = data.test.iter().map(|s| s.label).collect();
    let model = TrainedModel::train(&train, &train_labels, spec.classes, &config);
    let hdc_clean = accuracy(&model, &queries, &labels);
    let hdc_loss = (hdc_clean - accuracy(&attack(&model, 0.06, 11), &queries, &labels)).max(0.0);

    // Baselines under the 6% targeted (MSB) attack.
    fn targeted_loss<M: Classifier + BitStoredModel + Clone>(
        m: &M,
        test: &[synthdata::Sample],
    ) -> f64 {
        let clean = baselines::accuracy(m, test);
        let mut image = m.to_image();
        Attacker::seed_from(11).targeted_flips(&mut image, m.bit_len(), 0.06, m.field_bits());
        let mut attacked = m.clone();
        attacked.load_image(&image);
        (clean - baselines::accuracy(&attacked, test)).max(0.0)
    }
    let mlp_loss = targeted_loss(&Mlp::fit(&MlpConfig::default(), &data.train), &data.test);
    let svm_loss = targeted_loss(
        &LinearSvm::fit(&SvmConfig::default(), &data.train),
        &data.test,
    );

    assert!(
        hdc_loss < mlp_loss && hdc_loss < svm_loss,
        "HDC loss {hdc_loss} must beat DNN {mlp_loss} and SVM {svm_loss}"
    );
}

#[test]
fn pim_lifetime_ordering_holds_end_to_end() {
    use pimsim::arch::{FULL_ADDER_NORS, XNOR_NORS};
    use pimsim::{DpimArchitecture, DpimConfig, EnduranceModel, LifetimeSimulation};

    let arch = DpimArchitecture::new(DpimConfig::default());
    let endurance = EnduranceModel::new(1e9, 0.25, 0);
    let rate_of = |nors_per_bit: f64| nors_per_bit * 1.5 / 50.0 * 10.0;

    let dnn8 = (arch.multiply_nors(8) + arch.add_nors(24)) as f64 / 8.0;
    let hdc = (XNOR_NORS + FULL_ADDER_NORS) as f64;

    let years_to = |nors: f64, ber: f64| {
        let sim = LifetimeSimulation::new(endurance, rate_of(nors));
        (0..10_000)
            .map(|m| m as f64 * 0.01)
            .find(|&y| sim.bit_error_rate_at(y) > ber)
            .expect("fails within horizon")
    };
    let dnn_years = years_to(dnn8, 0.01);
    let hdc_years = years_to(hdc, 0.01);
    assert!(
        hdc_years > 5.0 * dnn_years,
        "HDC {hdc_years}y should far outlive DNN {dnn_years}y"
    );
}

#[test]
fn dram_relaxation_is_tolerable_for_hdc_only() {
    use pimsim::DramModel;

    let dram = DramModel::default();
    let interval = dram.interval_for_error(0.04).expect("4% reachable");
    assert!(dram.energy_improvement(interval) > 0.10);

    // 4% stored-bit errors: measure the actual accuracy impact on HDC.
    let p = pipeline(10_000, 6);
    let clean = accuracy(&p.model, &p.queries, &p.labels);
    let relaxed = attack(&p.model, dram.error_rate(interval), 13);
    let after = accuracy(&relaxed, &p.queries, &p.labels);
    assert!(
        clean - after < 0.02,
        "HDC should tolerate relaxed DRAM: {clean} -> {after}"
    );
}

#[test]
fn trained_model_executes_in_array_on_the_pim() {
    // Map the trained class hypervectors onto a functional crossbar and
    // check the in-array associative search agrees with the software
    // model on real queries — the full stack from dataset to device.
    use pimsim::{AssociativeArray, DeviceParams, EnduranceModel};

    let p = pipeline(1024, 7);
    let dim = p.model.dim();
    let mut array = AssociativeArray::new(
        p.model.num_classes(),
        dim,
        DeviceParams::default(),
        EnduranceModel::new(1e9, 0.0, 1),
    );
    for class in 0..p.model.num_classes() {
        let bits: Vec<bool> = (0..dim).map(|i| p.model.class(class).get(i)).collect();
        array.store(class, &bits);
    }
    let mut agreements = 0;
    for query in p.queries.iter().take(40) {
        let bits: Vec<bool> = (0..dim).map(|i| query.get(i)).collect();
        let (in_array, _) = array.nearest(&bits);
        if in_array == p.model.predict(query) {
            agreements += 1;
        }
    }
    assert_eq!(agreements, 40, "in-array search must match software search");
    // And the device actually worked for it: cycles and scratch writes.
    assert!(array.compute_cost().cycles > 0);
    assert!(array.array().total_writes() > 0);
}
