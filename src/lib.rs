//! RobustHD reproduction suite — umbrella crate.
//!
//! This crate exists to host the runnable examples (`examples/`) and
//! cross-crate integration tests (`tests/`) of the RobustHD (DAC 2022)
//! reproduction. It re-exports the workspace members so downstream code can
//! depend on one crate:
//!
//! * [`hypervector`] — bit-packed hypervectors and the HDC operator algebra
//! * [`robusthd`] — encoding, training, confidence, adaptive recovery
//! * [`synthdata`] — synthetic stand-ins for the paper's datasets
//! * [`faultsim`] — bit-flip attack and fault injection
//! * [`baselines`] — DNN / SVM / AdaBoost comparators in 8-bit fixed point
//! * [`pimsim`] — the digital processing-in-memory simulator
//!
//! See `README.md` for the quickstart and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.

#![forbid(unsafe_code)]

pub use baselines;
pub use faultsim;
pub use hypervector;
pub use pimsim;
pub use robusthd;
pub use synthdata;
