//! Self recovery: attack a deployed HDC model, then let RobustHD repair it
//! using nothing but unlabeled inference traffic — no clean copy, no
//! training data, no labels.
//!
//! Run with:
//! ```sh
//! cargo run --release --example self_recovery
//! ```

use faultsim::Attacker;
use robusthd::{
    accuracy, Encoder, HdcConfig, RecordEncoder, RecoveryConfig, RecoveryEngine, SubstitutionMode,
    TrainedModel,
};
use synthdata::{DatasetSpec, GeneratorConfig};

fn main() {
    // Train the deployed model.
    let spec = DatasetSpec::ucihar().with_sizes(1200, 600);
    let data = GeneratorConfig::new(9).generate(&spec);
    let config = HdcConfig::builder()
        .dimension(4096)
        .seed(2)
        .build()
        .expect("valid configuration");
    let encoder = RecordEncoder::new(&config, spec.features);
    let train: Vec<_> = data
        .train
        .iter()
        .map(|s| encoder.encode(&s.features))
        .collect();
    let train_labels: Vec<_> = data.train.iter().map(|s| s.label).collect();
    let queries: Vec<_> = data
        .test
        .iter()
        .map(|s| encoder.encode(&s.features))
        .collect();
    let labels: Vec<_> = data.test.iter().map(|s| s.label).collect();
    let mut model = TrainedModel::train(&train, &train_labels, spec.classes, &config);
    let clean = accuracy(&model, &queries, &labels);
    println!("clean accuracy:    {:.2}%", clean * 100.0);

    // A memory attack flips 10% of the stored model bits.
    let mut image = model.to_memory_image();
    let bits = image.len();
    Attacker::seed_from(13).random_flips(image.words_mut(), bits, 0.10);
    image.mask_tail();
    model.load_memory_image(&image);
    println!(
        "attacked accuracy: {:.2}%",
        accuracy(&model, &queries, &labels) * 100.0
    );

    // RobustHD recovery: confident predictions become pseudo-labels, chunk
    // votes locate the faulty dimensions, and the majority of the trusted
    // traffic regenerates them.
    let recovery = RecoveryConfig::builder()
        .confidence_threshold(0.45)
        .substitution_rate(0.5)
        .substitution(SubstitutionMode::MajorityCounter { saturation: 3 })
        .build()
        .expect("valid recovery configuration");
    let mut engine = RecoveryEngine::new(recovery, config.softmax_beta);
    for pass in 1..=8 {
        engine.run_stream(&mut model, &queries);
        println!(
            "after pass {pass}:     {:.2}%  (trusted {:.0}% of traffic, {} bits rewritten)",
            accuracy(&model, &queries, &labels) * 100.0,
            engine.stats().trust_rate() * 100.0,
            engine.stats().bits_changed
        );
    }
    let final_acc = accuracy(&model, &queries, &labels);
    println!(
        "\nfinal quality loss: {:.2}% (was {:.2}% without recovery)",
        (clean - final_acc).max(0.0) * 100.0,
        (clean - {
            // Re-create the attacked-but-unrecovered model for the closing
            // comparison.
            let mut m = TrainedModel::train(&train, &train_labels, spec.classes, &config);
            let mut img = m.to_memory_image();
            let b = img.len();
            Attacker::seed_from(13).random_flips(img.words_mut(), b, 0.10);
            img.mask_tail();
            m.load_memory_image(&img);
            accuracy(&m, &queries, &labels)
        })
        .max(0.0)
            * 100.0
    );
}
