//! Quickstart: train a hyperdimensional classifier on a synthetic dataset,
//! attack its stored model with bit flips, and watch it shrug.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use faultsim::Attacker;
use robusthd::{HdcClassifier, HdcConfig};
use synthdata::{DatasetSpec, GeneratorConfig};

fn main() {
    // 1. A synthetic stand-in for UCI HAR: same features/classes geometry.
    let spec = DatasetSpec::ucihar().with_sizes(800, 400);
    let data = GeneratorConfig::new(42).generate(&spec);
    println!(
        "dataset: {} ({} features, {} classes, {} train / {} test)",
        spec.name, spec.features, spec.classes, spec.train_size, spec.test_size
    );

    // 2. Fit the HDC pipeline: record encoding into D = 10k bits, one-shot
    //    class bundling.
    let config = HdcConfig::builder()
        .dimension(10_000)
        .seed(7)
        .build()
        .expect("valid configuration");
    let mut classifier = HdcClassifier::fit(&config, &data.train);
    let clean = classifier.accuracy(&data.test);
    println!("clean accuracy: {:.2}%", clean * 100.0);

    // 3. Flip 10% of every stored model bit — the attack that costs an
    //    8-bit DNN half its accuracy (see `--bin table3`).
    let mut image = classifier.model().to_memory_image();
    let bits = image.len();
    let report = Attacker::seed_from(1).random_flips(image.words_mut(), bits, 0.10);
    image.mask_tail();
    classifier.model_mut().load_memory_image(&image);
    println!(
        "attacked {} of {} stored bits ({:.1}%)",
        report.flipped_bits,
        report.bit_len,
        report.achieved_rate() * 100.0
    );

    // 4. The holographic representation barely notices.
    let attacked = classifier.accuracy(&data.test);
    println!(
        "attacked accuracy: {:.2}%  (quality loss {:.2}%)",
        attacked * 100.0,
        (clean - attacked).max(0.0) * 100.0
    );
}
