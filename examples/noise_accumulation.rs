//! Noise accumulation: the paper's actual runtime threat model. Memory
//! errors don't arrive all at once — they accumulate, interval after
//! interval. Without recovery the damage compounds; with RobustHD's
//! recovery running between intervals, accuracy stays pinned.
//!
//! Run with:
//! ```sh
//! cargo run --release --example noise_accumulation
//! ```

use faultsim::{AttackCampaign, ErrorRateSchedule};
use robusthd::{
    accuracy, Encoder, HdcConfig, RecordEncoder, RecoveryConfig, RecoveryEngine, SubstitutionMode,
    TrainedModel,
};
use synthdata::{DatasetSpec, GeneratorConfig};

fn main() {
    // Train the deployed model.
    let spec = DatasetSpec::ucihar().with_sizes(1200, 600);
    let data = GeneratorConfig::new(17).generate(&spec);
    let config = HdcConfig::builder()
        .dimension(4096)
        .seed(4)
        .build()
        .expect("valid configuration");
    let encoder = RecordEncoder::new(&config, spec.features);
    let train: Vec<_> = data
        .train
        .iter()
        .map(|s| encoder.encode(&s.features))
        .collect();
    let train_labels: Vec<_> = data.train.iter().map(|s| s.label).collect();
    let queries: Vec<_> = data
        .test
        .iter()
        .map(|s| encoder.encode(&s.features))
        .collect();
    let labels: Vec<_> = data.test.iter().map(|s| s.label).collect();
    let trained = TrainedModel::train(&train, &train_labels, spec.classes, &config);
    let clean = accuracy(&trained, &queries, &labels);
    println!("clean accuracy: {:.2}%\n", clean * 100.0);

    // Noise accumulates 1.5% per interval, up to 15% — far past the point
    // where a one-shot model degrades.
    let schedule = || ErrorRateSchedule::linear(0.0, 0.15, 10);
    let model_bits = trained.num_classes() * trained.dim();

    // Victim A: no recovery. Victim B: recovery runs between intervals.
    let mut unprotected = trained.clone();
    let mut protected = trained.clone();
    let mut campaign_a = AttackCampaign::new(schedule(), model_bits, 23);
    let mut campaign_b = AttackCampaign::new(schedule(), model_bits, 23);
    let recovery = RecoveryConfig::builder()
        .confidence_threshold(0.45)
        .substitution_rate(0.5)
        .substitution(SubstitutionMode::MajorityCounter { saturation: 3 })
        .build()
        .expect("valid recovery configuration");
    let mut engine = RecoveryEngine::new(recovery, config.softmax_beta);

    println!("interval | cumulative noise | no recovery | with RobustHD");
    println!("{}", "-".repeat(60));
    for interval in 1..=10 {
        // Fresh corruption lands on both copies identically.
        for (model, campaign) in [
            (&mut unprotected, &mut campaign_a),
            (&mut protected, &mut campaign_b),
        ] {
            let mut image = model.to_memory_image();
            campaign.advance(image.words_mut()).expect("schedule step");
            image.mask_tail();
            model.load_memory_image(&image);
        }
        // Only the protected copy runs the recovery loop on its traffic.
        for _ in 0..2 {
            engine.run_stream(&mut protected, &queries);
        }
        println!(
            "{interval:8} | {:15.1}% | {:10.2}% | {:12.2}%",
            campaign_a.cumulative_rate() * 100.0,
            accuracy(&unprotected, &queries, &labels) * 100.0,
            accuracy(&protected, &queries, &labels) * 100.0,
        );
    }
    println!(
        "\nfinal quality loss: {:.2}% unprotected vs {:.2}% with recovery",
        (clean - accuracy(&unprotected, &queries, &labels)).max(0.0) * 100.0,
        (clean - accuracy(&protected, &queries, &labels)).max(0.0) * 100.0,
    );
}
