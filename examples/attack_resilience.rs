//! Attack resilience: the paper's Table 3 story in one binary — HDC vs an
//! 8-bit DNN under random and MSB-targeted bit-flip attacks.
//!
//! Run with:
//! ```sh
//! cargo run --release --example attack_resilience
//! ```

use baselines::{BitStoredModel, Mlp, MlpConfig};
use faultsim::Attacker;
use robusthd::{HdcClassifier, HdcConfig};
use synthdata::{DatasetSpec, GeneratorConfig};

fn main() {
    let spec = DatasetSpec::ucihar().with_sizes(800, 400);
    let data = GeneratorConfig::new(3).generate(&spec);

    // HDC pipeline.
    let config = HdcConfig::builder()
        .dimension(10_000)
        .seed(11)
        .build()
        .expect("valid configuration");
    let hdc = HdcClassifier::fit(&config, &data.train);
    let hdc_clean = hdc.accuracy(&data.test);

    // DNN baseline deployed in 8-bit fixed point.
    let mlp = Mlp::fit(&MlpConfig::default(), &data.train);
    let mlp_clean = baselines::accuracy(&mlp, &data.test);

    println!(
        "clean accuracy   HDC {:.2}%   DNN {:.2}%",
        hdc_clean * 100.0,
        mlp_clean * 100.0
    );
    println!("\nerror |        HDC loss |  DNN loss (rnd) |  DNN loss (tgt)");
    println!("{}", "-".repeat(62));

    for rate in [0.02, 0.06, 0.10] {
        // HDC: random flips over the class-hypervector image (for a binary
        // model a targeted attack has nothing better to aim at).
        let mut image = hdc.model().to_memory_image();
        let bits = image.len();
        Attacker::seed_from(5).random_flips(image.words_mut(), bits, rate);
        image.mask_tail();
        let mut attacked_hdc = hdc.clone();
        attacked_hdc.model_mut().load_memory_image(&image);
        let hdc_loss = (hdc_clean - attacked_hdc.accuracy(&data.test)).max(0.0);

        // DNN: random and worst-case MSB-targeted flips over the weights.
        let dnn_loss = |targeted: bool| {
            let mut image = mlp.to_image();
            let mut attacker = Attacker::seed_from(5);
            if targeted {
                attacker.targeted_flips(&mut image, mlp.bit_len(), rate, mlp.field_bits());
            } else {
                attacker.random_flips(&mut image, mlp.bit_len(), rate);
            }
            let mut attacked = mlp.clone();
            attacked.load_image(&image);
            (mlp_clean - baselines::accuracy(&attacked, &data.test)).max(0.0)
        };

        println!(
            "{:4.0}% | {:14.2}% | {:14.2}% | {:14.2}%",
            rate * 100.0,
            hdc_loss * 100.0,
            dnn_loss(false) * 100.0,
            dnn_loss(true) * 100.0
        );
    }
    println!("\nEvery stored HDC bit carries the same negligible weight; the DNN's");
    println!("MSBs are single points of failure — that asymmetry is the whole paper.");
}
