//! Health monitoring: detect that the deployed model is being corrupted —
//! with no labels — and trigger recovery automatically.
//!
//! Run with:
//! ```sh
//! cargo run --release --example health_monitor
//! ```

use faultsim::Attacker;
use robusthd::diagnostics::{HealthMonitor, HealthVerdict};
use robusthd::{
    accuracy, Encoder, HdcConfig, RecordEncoder, RecoveryConfig, RecoveryEngine, SubstitutionMode,
    TrainedModel,
};
use synthdata::{DatasetSpec, GeneratorConfig};

fn main() {
    // Deploy.
    let spec = DatasetSpec::ucihar().with_sizes(1200, 600);
    let data = GeneratorConfig::new(25).generate(&spec);
    let config = HdcConfig::builder()
        .dimension(4096)
        .seed(8)
        .build()
        .expect("valid configuration");
    let encoder = RecordEncoder::new(&config, spec.features);
    let train: Vec<_> = data
        .train
        .iter()
        .map(|s| encoder.encode(&s.features))
        .collect();
    let train_labels: Vec<_> = data.train.iter().map(|s| s.label).collect();
    let queries: Vec<_> = data
        .test
        .iter()
        .map(|s| encoder.encode(&s.features))
        .collect();
    let labels: Vec<_> = data.test.iter().map(|s| s.label).collect();
    let mut model = TrainedModel::train(&train, &train_labels, spec.classes, &config);
    println!(
        "clean accuracy: {:.2}%",
        accuracy(&model, &queries, &labels) * 100.0
    );

    // Calibrate the monitor on known-good traffic at deployment time.
    let mut monitor = HealthMonitor::new(100, 0.6);
    monitor.calibrate(&model, &queries, config.softmax_beta);
    let baseline = monitor.baseline().expect("calibrated");
    println!(
        "baseline: mean confidence {:.3}, mean margin {:.4}\n",
        baseline.mean_confidence, baseline.mean_margin
    );

    // Memory degrades in steps; the monitor watches the live traffic.
    for step in 1..=6 {
        let mut image = model.to_memory_image();
        let bits = image.len();
        Attacker::seed_from(step).random_flips(image.words_mut(), bits, 0.05);
        image.mask_tail();
        model.load_memory_image(&image);

        for q in &queries {
            monitor.observe(&model, q, config.softmax_beta);
        }
        let snap = monitor.snapshot().expect("traffic seen");
        let verdict = monitor.verdict();
        println!(
            "step {step}: accuracy {:.2}%  margin {:.4}  verdict {:?}",
            accuracy(&model, &queries, &labels) * 100.0,
            snap.mean_margin,
            verdict
        );

        if verdict == HealthVerdict::Degraded {
            println!("\nalarm raised — engaging recovery on live traffic");
            let recovery = RecoveryConfig::builder()
                .confidence_threshold(0.45)
                .substitution_rate(0.5)
                .substitution(SubstitutionMode::MajorityCounter { saturation: 3 })
                .build()
                .expect("valid recovery configuration");
            let mut engine = RecoveryEngine::new(recovery, config.softmax_beta);
            for _ in 0..12 {
                engine.run_stream(&mut model, &queries);
            }
            for q in &queries {
                monitor.observe(&model, q, config.softmax_beta);
            }
            println!(
                "after recovery: accuracy {:.2}%  verdict {:?}",
                accuracy(&model, &queries, &labels) * 100.0,
                monitor.verdict()
            );
            break;
        }
    }
}
