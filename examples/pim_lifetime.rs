//! PIM lifetime: how long can an endurance-limited in-memory accelerator
//! sustain a learning workload? (The Figure 4a story.)
//!
//! Run with:
//! ```sh
//! cargo run --release --example pim_lifetime
//! ```

use pimsim::arch::{FULL_ADDER_NORS, XNOR_NORS};
use pimsim::{DpimArchitecture, DpimConfig, EnduranceModel, LifetimeSimulation};

fn main() {
    let arch = DpimArchitecture::new(DpimConfig::default());
    // 10^9-write NVM cells with 25% lognormal endurance variability.
    let endurance = EnduranceModel::new(1e9, 0.25, 1);

    // Per-model-bit NOR traffic of each kernel (gate-exact counts): the
    // quadratic fixed-point multiply is the wear monster.
    let kernels = [
        (
            "DNN fp32 ",
            (arch.multiply_nors(32) + arch.add_nors(72)) as f64 / 32.0,
        ),
        (
            "DNN 8-bit",
            (arch.multiply_nors(8) + arch.add_nors(24)) as f64 / 8.0,
        ),
        ("HDC      ", (XNOR_NORS + FULL_ADDER_NORS) as f64),
    ];

    // 10 inferences/s, compute writes amortized over 50 scratch rows/bit.
    let rate_of = |nors_per_bit: f64| nors_per_bit * 1.5 / 50.0 * 10.0;

    println!("workload   | writes/cell/s | years to 3% dead cells");
    println!("{}", "-".repeat(55));
    for (name, nors) in kernels {
        let sim = LifetimeSimulation::new(endurance, rate_of(nors));
        // Time until 3% of cells are stuck (a heavy bit-error rate for a
        // DNN, routine for HDC).
        let years = (0..)
            .map(|m| m as f64 * 0.02)
            .find(|&y| sim.bit_error_rate_at(y) > 0.03)
            .unwrap_or(f64::NAN);
        let formatted = if years < 1.0 {
            format!("{:.1} months", years * 12.0)
        } else {
            format!("{years:.1} years")
        };
        println!("{name} | {:13.1} | {formatted}", rate_of(nors));
    }

    println!();
    println!("The DNN wears the array out in months; HDC's bitwise kernels run for");
    println!("years — and a higher-dimensional HDC model additionally tolerates the");
    println!("dead cells it does accumulate (run `--bin fig4a` for the full curves).");
}
