//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator.
///
/// Implemented as xoshiro256** seeded through SplitMix64 — fast, passes the
/// usual statistical batteries, and (like upstream's `StdRng`) makes no
/// cross-version stream-stability promise.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed, as recommended by the xoshiro
        // authors for initialising the full 256-bit state.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_is_never_all_zero() {
        // An all-zero xoshiro state is a fixed point; SplitMix64 seeding
        // must avoid it for every seed, including 0.
        for seed in [0u64, 1, u64::MAX] {
            let rng = StdRng::seed_from_u64(seed);
            assert_ne!(rng.s, [0, 0, 0, 0]);
        }
    }

    #[test]
    fn words_are_well_distributed() {
        let mut rng = StdRng::seed_from_u64(42);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        // Expect ~32 set bits per word.
        assert!((31_000..33_000).contains(&ones), "ones {ones}");
    }
}
