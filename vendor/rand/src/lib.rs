//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This workspace builds in hermetic environments with no crates.io access,
//! so the external `rand` dependency is replaced by this vendored subset of
//! the 0.9 API. Only what the workspace actually calls is implemented:
//!
//! * [`rngs::StdRng`] — a seeded, deterministic generator (xoshiro256**
//!   initialised by SplitMix64; **not** the upstream ChaCha12, so raw
//!   streams differ from crates.io `rand`, but every consumer in this
//!   repository relies on determinism and statistical quality only).
//! * [`SeedableRng::seed_from_u64`], [`Rng::random`], [`Rng::random_bool`],
//!   [`Rng::random_range`].
//! * [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`].
//!
//! All generators are pure functions of their seed, which is what the
//! reproduction's replayability guarantees rest on.

#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an [`RngCore`] (the `StandardUniform`
/// distribution of upstream `rand`).
pub trait Random: Sized {
    /// Draws one uniform value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64() as f32
    }
}

/// Types with a uniform sampler over a bounded range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws one value from `[start, end)` (`inclusive = false`) or
    /// `[start, end]` (`inclusive = true`). Bounds are pre-validated by the
    /// caller.
    fn sample_between<R: RngCore + ?Sized>(
        start: Self,
        end: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                start: Self,
                end: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (end as i128 - start as i128) as u128 + u128::from(inclusive);
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                start: Self,
                end: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                start + (rng.next_f64() as $t) * (end - start)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges samplable via [`Rng::random_range`].
///
/// Kept parametric over `T` (one impl per range *shape*, not per element
/// type) so type inference flows through `random_range` exactly as it does
/// with upstream `rand`.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        T::sample_between(start, end, true, rng)
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one uniform value of type `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "p={p} is outside range [0.0, 1.0]"
        );
        // Draw unconditionally so the stream advances identically no matter
        // the probability — keeps seeded experiments comparable across rates.
        let draw = self.next_f64();
        if p >= 1.0 {
            true
        } else {
            draw < p
        }
    }

    /// Draws one uniform value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn random_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn random_range_is_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.random_range(-0.25f64..0.75);
            assert!((-0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn random_range_covers_support() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn uniform_f64_is_centered() {
        let mut rng = StdRng::seed_from_u64(4);
        let mean: f64 = (0..10_000).map(|_| rng.random::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "outside range")]
    fn random_bool_rejects_invalid_probability() {
        StdRng::seed_from_u64(0).random_bool(1.5);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        StdRng::seed_from_u64(0).random_range(5usize..5);
    }
}
