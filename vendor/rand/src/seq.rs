//! Sequence-related sampling: shuffling and element choice.

use crate::{Rng, RngCore};

/// Randomised operations on slices.
pub trait SliceRandom {
    /// Element type of the sequence.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Returns one uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 100-element shuffle staying sorted is ~impossible"
        );
    }

    #[test]
    fn shuffle_is_deterministic() {
        let run = || {
            let mut rng = StdRng::seed_from_u64(9);
            let mut v: Vec<usize> = (0..32).collect();
            v.shuffle(&mut rng);
            v
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn choose_handles_empty_and_singleton() {
        let mut rng = StdRng::seed_from_u64(6);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert_eq!([42u8].choose(&mut rng), Some(&42));
    }
}
