//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, covering exactly the API subset this workspace's property tests
//! use: the `proptest!` macro (with optional `#![proptest_config(..)]`),
//! `prop_assert!`/`prop_assert_eq!`, range and `any::<T>()` strategies,
//! strategy tuples, and `prop::collection::vec`.
//!
//! Differences from upstream, deliberate and documented:
//!
//! * **No shrinking.** A failing case reports the generated inputs via the
//!   assertion message; it is not minimised. Failures are reproducible
//!   because case seeds derive deterministically from the test name.
//! * **Fixed case count** (default 64, configurable through
//!   [`ProptestConfig::with_cases`]) rather than upstream's adaptive runner.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Runner configuration; only the case count is modelled.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Returns a configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed property-test assertion, produced by `prop_assert!` and
/// `prop_assert_eq!`.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wraps an assertion message.
    pub fn fail(message: String) -> Self {
        Self(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Drives the cases of one property; constructed by the `proptest!`
/// expansion.
pub struct TestRunner {
    cases: u32,
    base_seed: u64,
}

impl TestRunner {
    /// Builds a runner whose streams are a pure function of the test name.
    pub fn new(config: &ProptestConfig, name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            cases: config.cases,
            base_seed: seed,
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// Deterministic generator for one case.
    pub fn rng_for_case(&self, case: u32) -> StdRng {
        StdRng::seed_from_u64(self.base_seed ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::Rng::random_range(rng, self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::Rng::random_range(rng, self.clone())
            }
        }
    )*};
}
impl_strategy_for_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Types with a whole-domain default strategy (see [`any`]).
pub trait Arbitrary {
    /// Draws one unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rand::Rng::random::<$t>(rng)
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rand::Rng::random::<bool>(rng)
    }
}

impl Arbitrary for f64 {
    // Unlike upstream (which explores infinities and NaN), this draws from
    // the unit interval — sufficient for the workspace's properties.
    fn arbitrary(rng: &mut StdRng) -> Self {
        rand::Rng::random::<f64>(rng)
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The default whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_strategy_for_tuple {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_for_tuple! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{StdRng, Strategy};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive-exclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self {
                min: exact,
                max_exclusive: exact + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty size range");
            Self {
                min: range.start,
                max_exclusive: range.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(range: RangeInclusive<usize>) -> Self {
            assert!(range.start() <= range.end(), "empty size range");
            Self {
                min: *range.start(),
                max_exclusive: *range.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rand::Rng::random_range(rng, self.size.min..self.size.max_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespace mirror so call sites can write `prop::collection::vec`.
pub mod prop {
    pub use crate::collection;
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                ::std::format!($($fmt)+)
            )));
        }
    };
}

/// Asserts equality inside a `proptest!` body, failing the case when the
/// operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n  note: {}",
                stringify!($left),
                stringify!($right),
                left,
                right,
                ::std::format!($($fmt)+)
            )));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running the body over deterministically seeded
/// random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_body! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let runner = $crate::TestRunner::new(&config, stringify!($name));
                for case in 0..runner.cases() {
                    let mut rng = runner.rng_for_case(case);
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(err) = outcome {
                        ::std::panic!(
                            "property `{}` failed on case {}/{}:\n{}",
                            stringify!($name),
                            case,
                            runner.cases(),
                            err
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Generated values respect their strategy bounds.
        #[test]
        fn ranges_are_respected(
            n in 3usize..9,
            f in -1.0f64..=1.0,
            pair in (0u32..10, any::<bool>()),
            items in prop::collection::vec(0u8..4, 2..6),
        ) {
            prop_assert!((3..9).contains(&n));
            prop_assert!((-1.0..=1.0).contains(&f));
            prop_assert!(pair.0 < 10, "pair.0 = {}", pair.0);
            prop_assert!((2..6).contains(&items.len()));
            prop_assert!(items.iter().all(|&i| i < 4));
        }

        /// Exact-length vec specs produce exactly that length.
        #[test]
        fn exact_vec_length(items in prop::collection::vec(any::<u64>(), 17)) {
            prop_assert_eq!(items.len(), 17);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let runner = crate::TestRunner::new(&ProptestConfig::default(), "some_test");
        let a = (0usize..8)
            .map(|_| Strategy::generate(&(0u64..1000), &mut runner.rng_for_case(3)))
            .collect::<Vec<_>>();
        assert!(a.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    #[should_panic(expected = "property `always_fails`")]
    fn failures_panic_with_context() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            fn always_fails(x in 0u8..2) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
