//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` — it never
//! serializes through a format crate (persistence uses a hand-rolled binary
//! format in `robusthd::persist`). These derives therefore accept the input,
//! register the `#[serde(...)]` helper attribute, and expand to nothing.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
