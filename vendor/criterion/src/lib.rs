//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness. It implements the API subset the workspace's benches
//! use — `Criterion::default().sample_size(..)`, `bench_function`,
//! `benchmark_group`/`bench_with_input`/`finish`, `Bencher::iter` /
//! `iter_batched`, and the `criterion_group!` / `criterion_main!` macros —
//! with plain wall-clock timing and stdout reporting instead of upstream's
//! statistical analysis. Benchmarks stay runnable and comparable in hermetic
//! (no crates.io) builds, and compile cleanly under `--all-targets`.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(mut self, samples: usize) -> Self {
        assert!(samples > 0, "sample_size must be positive");
        self.sample_size = samples;
        self
    }

    /// Times one closure-driven benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Times one benchmark inside the group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().0);
        run_benchmark(&id, self.criterion.sample_size, f);
        self
    }

    /// Times one benchmark parameterised by `input`.
    pub fn bench_with_input<I, D, F>(&mut self, id: I, input: &D, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &D),
    {
        let id = format!("{}/{}", self.name, id.into().0);
        run_benchmark(&id, self.criterion.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group. (Upstream flushes reports here; nothing to do.)
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new<D: Display>(function_name: &str, parameter: D) -> Self {
        Self(format!("{function_name}/{parameter}"))
    }

    /// Builds an id that is just the parameter value.
    pub fn from_parameter<D: Display>(parameter: D) -> Self {
        Self(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        Self(id.to_string())
    }
}

/// How per-iteration inputs are batched in [`Bencher::iter_batched`].
/// Ignored by this stand-in: every iteration gets a fresh input.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small inputs; upstream batches many per allocation.
    SmallInput,
    /// Large inputs; upstream batches few per allocation.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut measured = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
        }
        self.elapsed = measured;
    }
}

fn run_benchmark<F>(id: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        iterations: samples as u64,
        elapsed: Duration::ZERO,
    };
    // Warm-up pass, then the measured pass.
    f(&mut bencher);
    f(&mut bencher);
    let per_iter = bencher.elapsed.as_secs_f64() / samples as f64;
    println!(
        "{id}: {} per iter ({samples} iters)",
        format_seconds(per_iter)
    );
}

fn format_seconds(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a benchmark group function, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut hits = 0u64;
        Criterion::default()
            .sample_size(3)
            .bench_function("probe", |b| b.iter(|| hits += 1));
        // Warm-up + measured pass, 3 iterations each.
        assert_eq!(hits, 6);
    }

    #[test]
    fn iter_batched_gets_fresh_inputs() {
        let mut setups = 0u64;
        Criterion::default()
            .sample_size(4)
            .bench_function("batched", |b| {
                b.iter_batched(
                    || {
                        setups += 1;
                        vec![0u8; 8]
                    },
                    |v| v.len(),
                    BatchSize::SmallInput,
                )
            });
        assert_eq!(setups, 8);
    }

    #[test]
    fn group_ids_compose() {
        let mut c = Criterion::default().sample_size(1);
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(64), &64usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
