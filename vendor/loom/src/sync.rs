//! Synchronization primitives whose every operation is a schedule point.

pub use std::sync::Arc;

/// Model-checked atomics.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use crate::rt::{self, Clock};
    use std::sync::Mutex;

    fn acquires(order: Ordering) -> bool {
        matches!(
            order,
            Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
        )
    }

    fn releases(order: Ordering) -> bool {
        matches!(
            order,
            Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
        )
    }

    /// A `usize` atomic with one modification order and vector-clock
    /// release/acquire edges. `Relaxed` operations transfer no clocks
    /// (so they synchronize nothing), but read-modify-write atomicity
    /// is always preserved.
    #[derive(Debug, Default)]
    pub struct AtomicUsize {
        inner: Mutex<(usize, Clock)>,
    }

    impl AtomicUsize {
        /// A new atomic holding `value`.
        pub fn new(value: usize) -> Self {
            Self {
                inner: Mutex::new((value, Clock::new())),
            }
        }

        fn op<R>(&self, order: Ordering, apply: impl FnOnce(&mut usize) -> R) -> R {
            let (sched, tid) = rt::ctx();
            // The schedule decision happens before the operation; the
            // operation itself is indivisible (no thread runs between
            // the decision and the update).
            sched.yield_point(tid);
            let mut guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            let (value, clock) = &mut *guard;
            if acquires(order) {
                sched.acquire(tid, clock);
            }
            let out = apply(value);
            if releases(order) {
                sched.release(tid, clock);
            }
            out
        }

        /// Loads the current value.
        pub fn load(&self, order: Ordering) -> usize {
            self.op(order, |v| *v)
        }

        /// Stores `value`.
        pub fn store(&self, value: usize, order: Ordering) {
            self.op(order, |v| *v = value);
        }

        /// Atomically adds `n`, returning the previous value.
        pub fn fetch_add(&self, n: usize, order: Ordering) -> usize {
            self.op(order, |v| {
                let old = *v;
                *v = old.wrapping_add(n);
                old
            })
        }

        /// Atomically compares and swaps, returning `Ok(previous)` on
        /// success and `Err(actual)` on failure.
        pub fn compare_exchange(
            &self,
            current: usize,
            new: usize,
            success: Ordering,
            failure: Ordering,
        ) -> Result<usize, usize> {
            let _ = failure;
            self.op(success, |v| {
                if *v == current {
                    *v = new;
                    Ok(current)
                } else {
                    Err(*v)
                }
            })
        }
    }
}
