//! Synchronization primitives whose every operation is a schedule point.

pub use std::sync::Arc;

use crate::rt::{self, Clock};
use std::ops::{Deref, DerefMut};
use std::sync::Mutex as StdMutex;
use std::sync::MutexGuard as StdMutexGuard;
use std::time::Duration;

/// Mirror of `std::sync::PoisonError`. Model threads that panic abort
/// the whole execution, so locks are never observed poisoned and every
/// `lock()` returns `Ok` — the type exists so code written against
/// `std`'s `LockResult` idioms (`unwrap_or_else(PoisonError::into_inner)`)
/// compiles unchanged under the model.
#[derive(Debug)]
pub struct PoisonError<G> {
    guard: G,
}

impl<G> PoisonError<G> {
    /// Wraps a guard (API parity with `std`).
    pub fn new(guard: G) -> Self {
        Self { guard }
    }

    /// Recovers the guard, ignoring the poison.
    pub fn into_inner(self) -> G {
        self.guard
    }
}

/// Mirror of `std::sync::LockResult`; always `Ok` in the model.
pub type LockResult<G> = Result<G, PoisonError<G>>;

/// Mirror of `std::sync::WaitTimeoutResult`.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True iff the wait returned because the timeout elapsed rather
    /// than because of a notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

#[derive(Debug, Default)]
struct MutexSync {
    /// Tid currently holding the model-level lock, if any.
    held_by: Option<usize>,
    /// Tids blocked in `lock()` waiting for release.
    waiters: Vec<usize>,
    /// Release/acquire vector clock: unlock publishes the holder's
    /// clock here, the next lock acquires it — the happens-before edge
    /// the race detector ([`crate::cell::UnsafeCell`]) consumes.
    clock: Clock,
}

/// Model-checked mutual exclusion with cooperative blocking.
///
/// Contended `lock()` parks the thread in the scheduler (`runnable =
/// false`), so a hold-forever or a lock cycle shows up as the model's
/// deadlock failure ("live threads but none runnable") rather than a
/// hang. Unlock wakes every waiter and lets the scheduler pick who wins
/// the race (barging is explored, not hidden).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    data: StdMutex<T>,
    sync: StdMutex<MutexSync>,
}

impl<T> Mutex<T> {
    /// A new unlocked mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            data: StdMutex::new(value),
            sync: StdMutex::new(MutexSync::default()),
        }
    }

    /// Acquires the lock, blocking cooperatively while it is held.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let (sched, tid) = rt::ctx();
        // The acquisition attempt is a schedule point: other threads
        // may run (and take the lock) before this one commits.
        sched.yield_point(tid);
        loop {
            {
                let mut sy = self.sync.lock().unwrap_or_else(|e| e.into_inner());
                if sy.held_by.is_none() {
                    sy.held_by = Some(tid);
                    let clock = sy.clock.clone();
                    drop(sy);
                    sched.acquire(tid, &clock);
                    let inner = self.data.lock().unwrap_or_else(|e| e.into_inner());
                    return Ok(MutexGuard {
                        lock: self,
                        inner: Some(inner),
                    });
                }
                sy.waiters.push(tid);
            }
            // Registration above is published while this thread still
            // holds the run token, so the unlocking thread cannot miss
            // it — block until a release wakes us, then retry.
            sched.block_current(tid);
        }
    }
}

/// Guard returned by [`Mutex::lock`]; dropping it releases the lock,
/// wakes all waiters, and hands the scheduler a decision point.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<StdMutexGuard<'a, T>>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after release")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed after release")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the std-level data lock before the model-level state
        // so a woken waiter can enter `data.lock()` without contention.
        self.inner = None;
        let (sched, tid) = rt::ctx();
        let mut sy = self.lock.sync.lock().unwrap_or_else(|e| e.into_inner());
        sched.release(tid, &mut sy.clock);
        sy.held_by = None;
        for waiter in sy.waiters.drain(..) {
            sched.unblock(waiter);
        }
        drop(sy);
        // Deliberately NOT a schedule point: between the release and the
        // dropping thread's next primitive operation (which is one) only
        // local computation runs, so no distinguishable interleaving is
        // lost — and the state space stays small enough to exhaust.
        // Woken waiters become schedulable at the next decision anywhere
        // (every thread's exit reschedules, so wakeups are never lost).
    }
}

/// Model-checked condition variable.
///
/// `wait` atomically releases the guard and parks the thread (the
/// waiter registers itself before the release, and the release is not a
/// schedule point) — so a protocol with a genuine lost-wakeup race
/// deadlocks the model instead of passing by luck. Spurious wakeups are **not**
/// simulated; the audit's predicate-loop lint enforces wakeup
/// revalidation statically instead.
#[derive(Debug, Default)]
pub struct Condvar {
    waiters: StdMutex<Vec<usize>>,
}

impl Condvar {
    /// A new condition variable with no waiters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Releases `guard` and blocks until notified, then reacquires.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let (sched, tid) = rt::ctx();
        let lock = guard.lock;
        self.waiters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(tid);
        drop(guard);
        // Release-and-park is atomic here (the guard drop is not a
        // schedule point), matching the primitive's contract. The check
        // below is defensive: were a schedule point ever reintroduced in
        // the drop, a notification landing inside the release window
        // must skip the park or the model would invent a lost wakeup.
        let still_waiting = self
            .waiters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .contains(&tid);
        if still_waiting {
            sched.block_current(tid);
        }
        lock.lock()
    }

    /// Releases `guard` and waits until notified **or** the (modelled)
    /// timeout elapses, then reacquires.
    ///
    /// The duration is ignored: because a timeout precludes indefinite
    /// blocking, the wait is modelled as release → schedule window →
    /// reacquire with the thread left runnable throughout. Every
    /// interleaving of other threads fits inside the window (each
    /// schedule point can defer this thread arbitrarily long), and
    /// `timed_out()` reports whether a notification arrived during it —
    /// both outcomes are explored, and a never-notified wait can never
    /// deadlock, exactly like the real primitive.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        _timeout: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        let (sched, tid) = rt::ctx();
        let lock = guard.lock;
        self.waiters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(tid);
        drop(guard);
        sched.yield_point(tid);
        let timed_out = {
            let mut waiters = self.waiters.lock().unwrap_or_else(|e| e.into_inner());
            match waiters.iter().position(|&t| t == tid) {
                Some(index) => {
                    waiters.remove(index);
                    true
                }
                None => false,
            }
        };
        let result = WaitTimeoutResult { timed_out };
        match lock.lock() {
            Ok(reacquired) => Ok((reacquired, result)),
            Err(poison) => Err(PoisonError::new((poison.into_inner(), result))),
        }
    }

    /// Wakes one waiter, chosen nondeterministically (every choice of
    /// waiter is explored as its own branch). Like unlock, not itself a
    /// schedule point: the woken thread becomes an option at the next
    /// decision.
    pub fn notify_one(&self) {
        let (sched, tid) = rt::ctx();
        let mut waiters = self.waiters.lock().unwrap_or_else(|e| e.into_inner());
        if waiters.is_empty() {
            return;
        }
        let index = sched.choose(tid, waiters.len());
        let woken = waiters.remove(index);
        sched.unblock(woken);
    }

    /// Wakes every waiter. Not itself a schedule point (see
    /// [`Condvar::notify_one`]).
    pub fn notify_all(&self) {
        let (sched, _tid) = rt::ctx();
        for woken in self
            .waiters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
        {
            sched.unblock(woken);
        }
    }
}

/// Model-checked atomics.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use crate::rt::{self, Clock};
    use std::sync::Mutex;

    fn acquires(order: Ordering) -> bool {
        matches!(
            order,
            Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
        )
    }

    fn releases(order: Ordering) -> bool {
        matches!(
            order,
            Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
        )
    }

    /// A `usize` atomic with one modification order and vector-clock
    /// release/acquire edges. `Relaxed` operations transfer no clocks
    /// (so they synchronize nothing), but read-modify-write atomicity
    /// is always preserved.
    #[derive(Debug, Default)]
    pub struct AtomicUsize {
        inner: Mutex<(usize, Clock)>,
    }

    impl AtomicUsize {
        /// A new atomic holding `value`.
        pub fn new(value: usize) -> Self {
            Self {
                inner: Mutex::new((value, Clock::new())),
            }
        }

        fn op<R>(&self, order: Ordering, apply: impl FnOnce(&mut usize) -> R) -> R {
            let (sched, tid) = rt::ctx();
            // The schedule decision happens before the operation; the
            // operation itself is indivisible (no thread runs between
            // the decision and the update).
            sched.yield_point(tid);
            let mut guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            let (value, clock) = &mut *guard;
            if acquires(order) {
                sched.acquire(tid, clock);
            }
            let out = apply(value);
            if releases(order) {
                sched.release(tid, clock);
            }
            out
        }

        /// Loads the current value.
        pub fn load(&self, order: Ordering) -> usize {
            self.op(order, |v| *v)
        }

        /// Stores `value`.
        pub fn store(&self, value: usize, order: Ordering) {
            self.op(order, |v| *v = value);
        }

        /// Atomically adds `n`, returning the previous value.
        pub fn fetch_add(&self, n: usize, order: Ordering) -> usize {
            self.op(order, |v| {
                let old = *v;
                *v = old.wrapping_add(n);
                old
            })
        }

        /// Atomically compares and swaps, returning `Ok(previous)` on
        /// success and `Err(actual)` on failure.
        pub fn compare_exchange(
            &self,
            current: usize,
            new: usize,
            success: Ordering,
            failure: Ordering,
        ) -> Result<usize, usize> {
            let _ = failure;
            self.op(success, |v| {
                if *v == current {
                    *v = new;
                    Ok(current)
                } else {
                    Err(*v)
                }
            })
        }
    }
}
