//! Race-checked cell: the stand-in for `loom::cell::UnsafeCell`.

use crate::rt::{self, Clock};
use std::sync::Mutex;

#[derive(Debug)]
struct Access {
    tid: usize,
    clock: Clock,
    write: bool,
}

/// Shared mutable storage with data-race *detection* instead of data-race
/// UB: every access is a schedule point, recorded with the accessing
/// thread's vector clock, and a conflicting pair (at least one write)
/// that is not ordered by happens-before panics the model — even when
/// the executed interleaving happened to produce a plausible value.
///
/// Divergence from real loom: `with`/`with_mut` hand the closure `&T` /
/// `&mut T` rather than raw pointers, so code under test stays free of
/// `unsafe` (this workspace forbids it).
#[derive(Debug, Default)]
pub struct UnsafeCell<T> {
    data: Mutex<T>,
    history: Mutex<Vec<Access>>,
}

impl<T> UnsafeCell<T> {
    /// A new cell holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            data: Mutex::new(value),
            history: Mutex::new(Vec::new()),
        }
    }

    fn check(&self, write: bool) {
        let (sched, tid) = rt::ctx();
        sched.yield_point(tid);
        let my_clock = sched.thread_clock(tid);
        let mut history = self.history.lock().unwrap_or_else(|e| e.into_inner());
        for prior in history.iter() {
            if prior.tid == tid || !(prior.write || write) {
                continue;
            }
            // `prior` happened-before us iff our clock has seen the
            // event counter of `prior`'s thread at `prior`'s access.
            let prior_event = prior.clock.get(prior.tid).copied().unwrap_or(0);
            let seen = my_clock.get(prior.tid).copied().unwrap_or(0);
            if prior_event > seen {
                let message = format!(
                    "data race on UnsafeCell: {} by thread {tid} is concurrent \
                     with {} by thread {}",
                    if write { "write" } else { "read" },
                    if prior.write { "write" } else { "read" },
                    prior.tid,
                );
                drop(history);
                panic!("{message}");
            }
        }
        history.push(Access {
            tid,
            clock: my_clock,
            write,
        });
    }

    /// Immutable access; a schedule point and a recorded read.
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        self.check(false);
        f(&self.data.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access; a schedule point and a recorded write.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        self.check(true);
        f(&mut self.data.lock().unwrap_or_else(|e| e.into_inner()))
    }
}
