//! Offline stand-in for the [`loom`](https://docs.rs/loom) model checker,
//! covering the API subset this workspace uses: [`model`],
//! [`thread::spawn`]/[`thread::JoinHandle::join`],
//! [`sync::atomic::AtomicUsize`], [`sync::Arc`], [`sync::Mutex`],
//! [`sync::Condvar`], and [`cell::UnsafeCell`].
//!
//! # What it actually checks
//!
//! [`model`] runs the closure under a cooperative scheduler that holds a
//! single run token: exactly one model thread executes at a time, and at
//! every *schedule point* (atomic operation, [`cell::UnsafeCell`] access,
//! lock/unlock, condvar wait/notify, spawn, join, exit,
//! [`thread::yield_now`]) the scheduler decides who runs next. Contended
//! [`sync::Mutex::lock`] and [`sync::Condvar::wait`] park the thread in
//! the scheduler, so lock cycles and lost wakeups surface as the
//! deadlock failure ("live threads but none runnable") rather than a
//! hang. Decisions are recorded only where ≥ 2 threads are
//! runnable; after each execution the recorded path is advanced like an
//! odometer and the closure re-run, until the whole decision tree has
//! been explored — a depth-first **exhaustive enumeration of thread
//! interleavings**.
//!
//! Happens-before is tracked with vector clocks: spawn and join edges,
//! plus `Acquire`/`Release`/`AcqRel`/`SeqCst` edges through atomics
//! (`Relaxed` transfers no clocks, though read-modify-write atomicity is
//! always preserved). [`cell::UnsafeCell`] keeps an access history and
//! panics on the first pair of causally-unordered conflicting accesses —
//! a data race under the C++11 model — even when the interleaving that
//! was executed happened to produce the "right" value.
//!
//! # Divergences from real loom
//!
//! - **Interleavings, not weak memory.** Atomics here are a single
//!   modification order; stale `Relaxed` loads and store buffering are
//!   not simulated. Races are still caught (via the clocks above), but
//!   weak-memory *value* behaviours are not explored.
//! - **`UnsafeCell` takes safe closures** — `with(|&T|)` /
//!   `with_mut(|&mut T|)` instead of raw pointers, so code under test
//!   needs no `unsafe` (this workspace forbids it).
//! - **Any panic fails the whole model** with the panicking thread's
//!   message; `JoinHandle::join` never returns `Err`, and locks are
//!   never observed poisoned ([`sync::Mutex::lock`] always returns
//!   `Ok`; [`sync::PoisonError`] exists only for API parity).
//! - **Condvar wakeups are exact.** Spurious wakeups are not simulated
//!   (`cargo xtask audit` enforces predicate-loop discipline around
//!   every `wait` statically instead), and [`sync::Condvar::wait_timeout`]
//!   ignores its duration: because a timeout precludes indefinite
//!   blocking, it is modelled as release → schedule window → reacquire,
//!   reporting whether a notification landed inside the window.
//!
//! Executions are capped at [`MAX_EXECUTIONS`]; exceeding the cap panics
//! rather than looping forever on a state-space explosion.

pub mod cell;
mod rt;
pub mod sync;
pub mod thread;

/// Upper bound on explored executions before the model panics.
pub const MAX_EXECUTIONS: u64 = 500_000;

/// Exhaustively explores every interleaving of the model closure.
///
/// Panics (after restoring the panic hook) if any execution panics,
/// deadlocks, or detects a data race; the failure message includes the
/// execution index so a failing schedule is identifiable.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    rt::run_model(std::sync::Arc::new(f));
}
