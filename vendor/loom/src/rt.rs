//! The cooperative scheduler: run-token handoff, depth-first path
//! exploration, vector clocks, panic and deadlock plumbing.

use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Vector clock: `clock[tid]` counts events thread `tid` has performed.
pub(crate) type Clock = Vec<u64>;

pub(crate) fn merge(into: &mut Clock, from: &Clock) {
    if into.len() < from.len() {
        into.resize(from.len(), 0);
    }
    for (i, &v) in from.iter().enumerate() {
        if v > into[i] {
            into[i] = v;
        }
    }
}

/// Sentinel panic payload: "this execution was aborted, unwind quietly".
pub(crate) struct Abort;

/// One recorded scheduling decision (taken where ≥ 2 threads were runnable).
#[derive(Debug, Clone)]
struct Choice {
    options: usize,
    chosen: usize,
}

#[derive(Debug)]
struct ThreadSlot {
    runnable: bool,
    finished: bool,
    clock: Clock,
    /// Clock at exit, merged into joiners (the join happens-before edge).
    final_clock: Clock,
    /// Threads blocked in `join` on this one.
    joiners: Vec<usize>,
}

#[derive(Debug, Default)]
struct State {
    threads: Vec<ThreadSlot>,
    /// The run token: which tid may execute.
    current: usize,
    path: Vec<Choice>,
    cursor: usize,
    /// Threads spawned and not yet finished.
    live: usize,
    /// All threads ran to completion.
    done: bool,
    /// A panic/deadlock/race ended this execution early.
    aborted: bool,
    failure: Option<String>,
}

pub(crate) struct Scheduler {
    state: Mutex<State>,
    cv: Condvar,
}

struct Ctx {
    sched: Arc<Scheduler>,
    tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// The calling model thread's scheduler handle and tid.
pub(crate) fn ctx() -> (Arc<Scheduler>, usize) {
    CTX.with(|c| {
        let borrow = c.borrow();
        let ctx = borrow
            .as_ref()
            .expect("loom primitives may only be used inside loom::model");
        (Arc::clone(&ctx.sched), ctx.tid)
    })
}

impl Scheduler {
    fn new(path: Vec<Choice>) -> Self {
        Self {
            state: Mutex::new(State {
                path,
                ..State::default()
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers a new model thread, inheriting `parent`'s clock
    /// (the spawn happens-before edge). Returns its tid.
    pub(crate) fn register(&self, parent: Option<usize>) -> usize {
        let mut s = self.lock();
        let tid = s.threads.len();
        let mut clock = match parent {
            Some(p) => s.threads[p].clock.clone(),
            None => Clock::new(),
        };
        if clock.len() <= tid {
            clock.resize(tid + 1, 0);
        }
        s.threads.push(ThreadSlot {
            runnable: true,
            finished: false,
            clock,
            final_clock: Clock::new(),
            joiners: Vec::new(),
        });
        s.live += 1;
        tid
    }

    /// Picks the next thread to run and hands it the token. Records a
    /// decision iff ≥ 2 threads are runnable; declares completion or
    /// deadlock when none are.
    fn reschedule(s: &mut State, cv: &Condvar) {
        let runnable: Vec<usize> = (0..s.threads.len())
            .filter(|&t| s.threads[t].runnable && !s.threads[t].finished)
            .collect();
        let chosen = match runnable.len() {
            0 => {
                if s.live == 0 {
                    s.done = true;
                } else {
                    s.aborted = true;
                    s.failure.get_or_insert_with(|| {
                        "deadlock: live threads but none runnable".to_owned()
                    });
                }
                cv.notify_all();
                return;
            }
            1 => runnable[0],
            n => {
                let idx = if s.cursor < s.path.len() {
                    s.path[s.cursor].chosen.min(n - 1)
                } else {
                    s.path.push(Choice {
                        options: n,
                        chosen: 0,
                    });
                    0
                };
                s.cursor += 1;
                if s.cursor > 100_000 {
                    // A single execution should never need this many
                    // decisions; a spin loop in the model would otherwise
                    // hang the DFS forever.
                    s.aborted = true;
                    s.failure.get_or_insert_with(|| {
                        "execution exceeded 100000 scheduling decisions (livelock? \
                         spin loops are not supported by this loom stand-in)"
                            .to_owned()
                    });
                    cv.notify_all();
                    return;
                }
                runnable[idx]
            }
        };
        s.current = chosen;
        cv.notify_all();
    }

    /// Blocks `tid` until it holds the run token (or the execution
    /// aborts, in which case it unwinds with the [`Abort`] sentinel).
    fn wait_for_token(&self, mut s: MutexGuard<'_, State>, tid: usize) {
        loop {
            if s.aborted {
                drop(s);
                panic::panic_any(Abort);
            }
            if s.current == tid && s.threads[tid].runnable {
                return;
            }
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// A schedule point: one event on `tid`'s clock, then a scheduling
    /// decision. Returns with `tid` holding the run token again.
    pub(crate) fn yield_point(&self, tid: usize) {
        let mut s = self.lock();
        if s.aborted {
            drop(s);
            panic::panic_any(Abort);
        }
        s.threads[tid].clock[tid] += 1;
        Self::reschedule(&mut s, &self.cv);
        self.wait_for_token(s, tid);
    }

    /// Snapshot of `tid`'s vector clock.
    pub(crate) fn thread_clock(&self, tid: usize) -> Clock {
        self.lock().threads[tid].clock.clone()
    }

    /// Acquire edge: merge an atomic's clock into `tid`'s clock.
    pub(crate) fn acquire(&self, tid: usize, from: &Clock) {
        merge(&mut self.lock().threads[tid].clock, from);
    }

    /// Release edge: merge `tid`'s clock into an atomic's clock.
    pub(crate) fn release(&self, tid: usize, into: &mut Clock) {
        merge(into, &self.lock().threads[tid].clock);
    }

    /// Blocks the calling thread until another thread calls
    /// [`Scheduler::unblock`] on it (mutex handoff, condvar notify).
    /// The caller must have published its wait registration (waiter
    /// list entry) *before* calling this; since it holds the run token
    /// up to the internal reschedule, no unblock can be lost.
    pub(crate) fn block_current(&self, tid: usize) {
        let mut s = self.lock();
        if s.aborted {
            drop(s);
            panic::panic_any(Abort);
        }
        s.threads[tid].clock[tid] += 1;
        s.threads[tid].runnable = false;
        Self::reschedule(&mut s, &self.cv);
        self.wait_for_token(s, tid);
    }

    /// Marks `tid` runnable again. Called by the token holder; the
    /// woken thread actually runs at a later scheduling decision.
    pub(crate) fn unblock(&self, tid: usize) {
        let mut s = self.lock();
        s.threads[tid].runnable = true;
    }

    /// An explicit nondeterministic choice among `options` branches,
    /// recorded on the DFS path exactly like a scheduling decision, so
    /// the odometer explores every branch.
    pub(crate) fn choose(&self, tid: usize, options: usize) -> usize {
        let mut s = self.lock();
        if s.aborted {
            drop(s);
            panic::panic_any(Abort);
        }
        s.threads[tid].clock[tid] += 1;
        if options < 2 {
            return 0;
        }
        let idx = if s.cursor < s.path.len() {
            s.path[s.cursor].chosen.min(options - 1)
        } else {
            s.path.push(Choice { options, chosen: 0 });
            0
        };
        s.cursor += 1;
        idx
    }

    /// Blocks `tid` until `child` finishes, then merges the join edge.
    pub(crate) fn join_wait(&self, tid: usize, child: usize) {
        let mut s = self.lock();
        if s.aborted {
            drop(s);
            panic::panic_any(Abort);
        }
        s.threads[tid].clock[tid] += 1;
        if !s.threads[child].finished {
            s.threads[tid].runnable = false;
            s.threads[child].joiners.push(tid);
            Self::reschedule(&mut s, &self.cv);
            self.wait_for_token(s, tid);
            s = self.lock();
        }
        let final_clock = s.threads[child].final_clock.clone();
        merge(&mut s.threads[tid].clock, &final_clock);
    }

    /// Normal thread exit: wake joiners, hand the token on.
    pub(crate) fn exit(&self, tid: usize) {
        let mut s = self.lock();
        s.threads[tid].clock[tid] += 1;
        let clock = s.threads[tid].clock.clone();
        s.threads[tid].final_clock = clock;
        s.threads[tid].finished = true;
        s.threads[tid].runnable = false;
        s.live -= 1;
        let joiners = std::mem::take(&mut s.threads[tid].joiners);
        for j in joiners {
            s.threads[j].runnable = true;
        }
        if !s.aborted {
            Self::reschedule(&mut s, &self.cv);
        } else if s.live == 0 {
            self.cv.notify_all();
        }
    }

    /// Exit of a thread that unwound after the execution aborted.
    fn exit_silent(&self, tid: usize) {
        let mut s = self.lock();
        s.threads[tid].finished = true;
        s.threads[tid].runnable = false;
        s.live -= 1;
        self.cv.notify_all();
    }

    /// First wait of a freshly spawned model thread: its body must not
    /// run until the scheduler hands it the token.
    fn wait_initial(&self, tid: usize) {
        let s = self.lock();
        self.wait_for_token(s, tid);
    }

    /// Records the first real failure and aborts the execution.
    pub(crate) fn abort_with(&self, message: String) {
        let mut s = self.lock();
        s.aborted = true;
        s.failure.get_or_insert(message);
        self.cv.notify_all();
    }
}

/// Entry point of every model OS thread: installs the thread-local
/// context, runs the body, and routes panics into the scheduler.
pub(crate) fn run_thread(sched: Arc<Scheduler>, tid: usize, body: impl FnOnce()) {
    CTX.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            sched: Arc::clone(&sched),
            tid,
        });
    });
    let sched_for_body = Arc::clone(&sched);
    let result = panic::catch_unwind(AssertUnwindSafe(move || {
        sched_for_body.wait_initial(tid);
        body();
    }));
    CTX.with(|c| *c.borrow_mut() = None);
    match result {
        Ok(()) => sched.exit(tid),
        Err(payload) => {
            if payload.downcast_ref::<Abort>().is_none() {
                let message = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
                    .unwrap_or_else(|| "thread panicked (non-string payload)".to_owned());
                sched.abort_with(format!("thread {tid} panicked: {message}"));
            }
            sched.exit_silent(tid);
        }
    }
}

/// Spawns a model thread (used by `thread::spawn`); registration happens
/// here so the child is schedulable before the parent's next decision.
pub(crate) fn spawn_model_thread(
    sched: &Arc<Scheduler>,
    parent: usize,
    body: impl FnOnce() + Send + 'static,
) -> usize {
    {
        // The spawn is an event on the parent's clock, so the child
        // inherits a clock that dominates everything the parent did.
        let mut s = sched.lock();
        s.threads[parent].clock[parent] += 1;
    }
    let tid = sched.register(Some(parent));
    let sched2 = Arc::clone(sched);
    std::thread::Builder::new()
        .name(format!("loom-model-{tid}"))
        .spawn(move || run_thread(Arc::clone(&sched2), tid, body))
        .expect("spawn loom model thread");
    // Hand the scheduler a decision: parent keeps running or child starts.
    sched.yield_point(parent);
    tid
}

/// Advances the decision path like an odometer; false when exhausted.
fn advance(path: &mut Vec<Choice>) -> bool {
    while let Some(last) = path.last_mut() {
        if last.chosen + 1 < last.options {
            last.chosen += 1;
            return true;
        }
        path.pop();
    }
    false
}

/// Panic hook that silences [`Abort`] sentinels, chaining to the
/// previous hook for real panics (so user-visible diagnostics survive).
fn install_quiet_hook() -> Box<dyn Fn(&panic::PanicHookInfo<'_>) + Send + Sync> {
    let previous = panic::take_hook();
    let chained = Arc::new(previous);
    let for_hook = Arc::clone(&chained);
    panic::set_hook(Box::new(move |info| {
        if info.payload().downcast_ref::<Abort>().is_none() {
            for_hook(info);
        }
    }));
    Box::new(move |info| chained(info))
}

/// Serializes concurrent `loom::model` calls (the test harness runs
/// `#[test]`s on several threads; the scheduler context is per-model).
static MODEL_GATE: Mutex<()> = Mutex::new(());

pub(crate) fn run_model(f: Arc<dyn Fn() + Send + Sync>) {
    let _gate = MODEL_GATE.lock().unwrap_or_else(|e| e.into_inner());
    let restore_hook = install_quiet_hook();
    let mut path: Vec<Choice> = Vec::new();
    let mut executions: u64 = 0;
    let failure = loop {
        executions += 1;
        assert!(
            executions <= crate::MAX_EXECUTIONS,
            "loom model exceeded {} executions — state space too large",
            crate::MAX_EXECUTIONS
        );
        let sched = Arc::new(Scheduler::new(path.clone()));
        let tid = sched.register(None);
        let sched2 = Arc::clone(&sched);
        let f2 = Arc::clone(&f);
        let root = std::thread::Builder::new()
            .name("loom-model-0".to_owned())
            .spawn(move || run_thread(sched2, tid, move || f2()))
            .expect("spawn loom root thread");
        // Wait for the execution to run to completion or abort fully
        // (every model thread unwound), then reap the root OS thread.
        {
            let mut s = sched.lock();
            while !(s.done || (s.aborted && s.live == 0)) {
                s = sched.cv.wait(s).unwrap_or_else(|e| e.into_inner());
            }
        }
        let _ = root.join();
        let s = sched.lock();
        if let Some(message) = s.failure.clone() {
            break Some((message, executions));
        }
        path = s.path.clone();
        drop(s);
        if !advance(&mut path) {
            break None;
        }
    };
    // Restore the ambient panic hook before reporting.
    panic::set_hook(restore_hook);
    if let Some((message, execution)) = failure {
        panic!("loom model failed on execution {execution}: {message}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_elementwise_max() {
        let mut a = vec![3, 0, 1];
        merge(&mut a, &vec![1, 5]);
        assert_eq!(a, vec![3, 5, 1]);
        let mut b = vec![1];
        merge(&mut b, &vec![0, 2, 4]);
        assert_eq!(b, vec![1, 2, 4]);
    }

    #[test]
    fn advance_walks_the_tree_depth_first() {
        let mut path = vec![
            Choice {
                options: 2,
                chosen: 0,
            },
            Choice {
                options: 3,
                chosen: 2,
            },
        ];
        assert!(advance(&mut path)); // inner exhausted, bump outer
        assert_eq!(path.len(), 1);
        assert_eq!(path[0].chosen, 1);
        assert!(!advance(&mut vec![Choice {
            options: 2,
            chosen: 1
        }]));
        assert!(!advance(&mut Vec::new()));
    }
}
