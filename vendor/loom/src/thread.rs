//! Model-thread spawning and cooperative joining.

use crate::rt;
use std::sync::{Arc, Mutex};

/// Handle to a model thread; `join` blocks cooperatively through the
/// scheduler so every join order is part of the explored state space.
#[derive(Debug)]
pub struct JoinHandle<T> {
    tid: usize,
    slot: Arc<Mutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result.
    ///
    /// Unlike `std`, a panicking model thread fails the whole model run,
    /// so this never returns `Err`; the `Result` is kept for API
    /// compatibility with `std::thread::JoinHandle`.
    pub fn join(self) -> std::thread::Result<T> {
        let (sched, tid) = rt::ctx();
        sched.join_wait(tid, self.tid);
        let value = self
            .slot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("joined thread produced no value");
        Ok(value)
    }
}

/// Spawns a new model thread under the current `loom::model` scheduler.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (sched, parent) = rt::ctx();
    let slot: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
    let slot2 = Arc::clone(&slot);
    let tid = rt::spawn_model_thread(&sched, parent, move || {
        let value = f();
        *slot2.lock().unwrap_or_else(|e| e.into_inner()) = Some(value);
    });
    JoinHandle { tid, slot }
}

/// An explicit schedule point with no side effects.
pub fn yield_now() {
    let (sched, tid) = rt::ctx();
    sched.yield_point(tid);
}
