//! The stand-in must actually *find* bad interleavings and *prove* good
//! ones — these tests pin both directions.

use loom::cell::UnsafeCell;
use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::Arc;
use loom::thread;
use std::collections::HashSet;
use std::sync::Mutex as StdMutex;

/// A split load/store increment is not atomic: across the explored
/// interleavings BOTH final values {1, 2} must be observed. A scheduler
/// that only ever runs threads back-to-back would see {2} alone.
#[test]
fn explores_both_outcomes_of_a_lost_update() {
    let outcomes: Arc<StdMutex<HashSet<usize>>> = Arc::new(StdMutex::new(HashSet::new()));
    let sink = Arc::clone(&outcomes);
    loom::model(move || {
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    let seen = counter.load(Ordering::Relaxed);
                    counter.store(seen + 1, Ordering::Relaxed);
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        sink.lock().unwrap().insert(counter.load(Ordering::Relaxed));
    });
    assert_eq!(*outcomes.lock().unwrap(), HashSet::from([1, 2]));
}

/// fetch_add is indivisible even at Relaxed: two workers draining a
/// counter can never claim the same ticket in any interleaving.
#[test]
fn fetch_add_tickets_are_unique_in_every_interleaving() {
    loom::model(|| {
        let next = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let next = Arc::clone(&next);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        let ticket = next.fetch_add(1, Ordering::Relaxed);
                        if ticket >= 3 {
                            break;
                        }
                        got.push(ticket);
                    }
                    got
                })
            })
            .collect();
        let mut all = Vec::new();
        for handle in handles {
            all.extend(handle.join().unwrap());
        }
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2]);
    });
}

/// Two unsynchronized writes to the same cell are a data race in every
/// interleaving — the checker must refuse them even though each executed
/// order produces a plausible value.
#[test]
#[should_panic(expected = "data race")]
fn detects_unsynchronized_concurrent_writes() {
    loom::model(|| {
        let cell = Arc::new(UnsafeCell::new(0u64));
        let child_cell = Arc::clone(&cell);
        let child = thread::spawn(move || child_cell.with_mut(|v| *v += 1));
        cell.with_mut(|v| *v += 1);
        child.join().unwrap();
    });
}

/// join() is a happens-before edge: parent reads after joining the
/// writing child are race-free and see the written value.
#[test]
fn join_edge_orders_cell_accesses() {
    loom::model(|| {
        let cell = Arc::new(UnsafeCell::new(0u64));
        let child_cell = Arc::clone(&cell);
        let child = thread::spawn(move || child_cell.with_mut(|v| *v = 7));
        child.join().unwrap();
        cell.with(|v| assert_eq!(*v, 7));
    });
}

/// Release store → Acquire load is a happens-before edge: once the flag
/// is observed, the cell write before it is visible and race-free.
#[test]
fn release_acquire_publishes_a_cell_write() {
    loom::model(|| {
        let cell = Arc::new(UnsafeCell::new(0u64));
        let flag = Arc::new(AtomicUsize::new(0));
        let (child_cell, child_flag) = (Arc::clone(&cell), Arc::clone(&flag));
        let child = thread::spawn(move || {
            child_cell.with_mut(|v| *v = 9);
            child_flag.store(1, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) == 1 {
            cell.with(|v| assert_eq!(*v, 9));
        }
        child.join().unwrap();
    });
}

/// An assertion failing in ANY interleaving fails the model, with the
/// execution index in the message.
#[test]
#[should_panic(expected = "loom model failed on execution")]
fn a_failing_interleaving_fails_the_model() {
    loom::model(|| {
        let flag = Arc::new(AtomicUsize::new(0));
        let child_flag = Arc::clone(&flag);
        let child = thread::spawn(move || child_flag.store(1, Ordering::Relaxed));
        // Fails only in interleavings where the child has already run.
        assert_eq!(flag.load(Ordering::Relaxed), 0, "child ran first");
        child.join().unwrap();
    });
}

/// compare_exchange: exactly one of two racing claimants wins in every
/// interleaving.
#[test]
fn compare_exchange_has_one_winner() {
    loom::model(|| {
        let owner = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (1..=2)
            .map(|id| {
                let owner = Arc::clone(&owner);
                thread::spawn(move || {
                    owner
                        .compare_exchange(0, id, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                })
            })
            .collect();
        let wins: Vec<bool> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(wins.iter().filter(|&&w| w).count(), 1);
        assert_ne!(owner.load(Ordering::Acquire), 0);
    });
}

/// Mutex-guarded increments never lose an update: the lock serializes
/// the read-modify-write in every interleaving (contrast with the
/// split-atomic test above, which must observe a lost update).
#[test]
fn mutex_serializes_increments_in_every_interleaving() {
    use loom::sync::Mutex;
    loom::model(|| {
        let counter = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    let mut guard = counter.lock().unwrap();
                    *guard += 1;
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(*counter.lock().unwrap(), 2);
    });
}

/// Mutex release→acquire is a happens-before edge: a cell written under
/// the lock is race-free when read under the lock on another thread.
#[test]
fn mutex_edge_orders_cell_accesses() {
    use loom::sync::Mutex;
    loom::model(|| {
        let lock = Arc::new(Mutex::new(()));
        let cell = Arc::new(UnsafeCell::new(0u64));
        let (child_lock, child_cell) = (Arc::clone(&lock), Arc::clone(&cell));
        let child = thread::spawn(move || {
            let _guard = child_lock.lock().unwrap();
            child_cell.with_mut(|v| *v += 1);
        });
        {
            let _guard = lock.lock().unwrap();
            cell.with_mut(|v| *v += 1);
        }
        child.join().unwrap();
        assert_eq!(cell.with(|v| *v), 2);
    });
}

/// An ABBA lock cycle must surface as the model's deadlock failure in
/// the interleaving where each thread holds one lock and wants the other.
#[test]
#[should_panic(expected = "deadlock")]
fn detects_an_abba_lock_cycle() {
    use loom::sync::Mutex;
    loom::model(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (child_a, child_b) = (Arc::clone(&a), Arc::clone(&b));
        let child = thread::spawn(move || {
            let _b = child_b.lock().unwrap();
            let _a = child_a.lock().unwrap();
        });
        {
            let _a = a.lock().unwrap();
            let _b = b.lock().unwrap();
        }
        child.join().unwrap();
    });
}

/// The register-before-release wait protocol never loses a wakeup: in
/// every interleaving the waiter either sees the flag already set or is
/// woken by the notify.
#[test]
fn condvar_wait_never_loses_a_wakeup() {
    use loom::sync::{Condvar, Mutex};
    loom::model(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let child_pair = Arc::clone(&pair);
        let child = thread::spawn(move || {
            let (flag, cv) = &*child_pair;
            *flag.lock().unwrap() = true;
            cv.notify_all();
        });
        let (flag, cv) = &*pair;
        let mut ready = flag.lock().unwrap();
        while !*ready {
            ready = cv.wait(ready).unwrap();
        }
        drop(ready);
        child.join().unwrap();
    });
}

/// A notify that races ahead of the wait *without* the waiter
/// re-checking state under the lock is a lost wakeup; the model must
/// find the interleaving where the waiter parks forever (deadlock).
#[test]
#[should_panic(expected = "deadlock")]
fn detects_a_lost_wakeup() {
    use loom::sync::{Condvar, Mutex};
    loom::model(|| {
        let pair = Arc::new((Mutex::new(()), Condvar::new()));
        let child_pair = Arc::clone(&pair);
        // Broken protocol: the notifier publishes no state and the
        // waiter checks none — if notify runs before wait, the waiter
        // blocks forever.
        let child = thread::spawn(move || child_pair.1.notify_all());
        let guard = pair.0.lock().unwrap();
        drop(pair.1.wait(guard).unwrap());
        child.join().unwrap();
    });
}

/// wait_timeout explores both outcomes: across the interleavings it
/// must return timed-out (notify missed the window) *and* notified.
#[test]
fn wait_timeout_explores_timeout_and_notify() {
    use loom::sync::{Condvar, Mutex};
    use std::time::Duration;
    let outcomes: Arc<StdMutex<HashSet<bool>>> = Arc::new(StdMutex::new(HashSet::new()));
    let sink = Arc::clone(&outcomes);
    loom::model(move || {
        let pair = Arc::new((Mutex::new(()), Condvar::new()));
        let child_pair = Arc::clone(&pair);
        let child = thread::spawn(move || child_pair.1.notify_all());
        let guard = pair.0.lock().unwrap();
        let (guard, result) = pair
            .1
            .wait_timeout(guard, Duration::from_millis(1))
            .unwrap();
        drop(guard);
        sink.lock().unwrap().insert(result.timed_out());
        child.join().unwrap();
    });
    assert_eq!(*outcomes.lock().unwrap(), HashSet::from([false, true]));
}
