//! Offline stand-in for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types so the
//! real crates.io `serde` can be swapped back in when a format crate is
//! eventually needed, but nothing in-tree calls the traits: persistence goes
//! through the explicit binary format in `robusthd::persist`. This stand-in
//! keeps the trait names resolvable and the derive invocations compiling in
//! hermetic (no crates.io) builds.

#![warn(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`; no methods are modelled.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`; no methods are modelled.
pub trait Deserialize<'de>: Sized {}
