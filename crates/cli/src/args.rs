//! Minimal `--flag value` argument parsing (no external dependencies).

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// Error produced while parsing command-line options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(String);

impl ArgError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self(message.into())
    }
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl Error for ArgError {}

/// Parsed `--key value` options with typed accessors.
///
/// # Example
///
/// ```
/// use robusthd_cli::ParsedArgs;
///
/// let argv: Vec<String> = ["--dim", "4096", "--help"]
///     .iter()
///     .map(|s| s.to_string())
///     .collect();
/// let args = ParsedArgs::parse(&argv, &["dim", "help"])?;
/// assert_eq!(args.get_parsed_or("dim", 10_000usize)?, 4096);
/// assert!(args.flag("help"));
/// # Ok::<(), robusthd_cli::ArgError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ParsedArgs {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl ParsedArgs {
    /// Parses an argument list, accepting only the `allowed` option names.
    /// An option followed by another option (or nothing) is a boolean flag.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] for unknown or malformed options.
    pub fn parse(argv: &[String], allowed: &[&str]) -> Result<Self, ArgError> {
        let mut parsed = Self::default();
        let mut i = 0;
        while i < argv.len() {
            let arg = &argv[i];
            let Some(name) = arg.strip_prefix("--") else {
                return Err(ArgError::new(format!(
                    "unexpected positional argument `{arg}`"
                )));
            };
            if !allowed.contains(&name) {
                return Err(ArgError::new(format!(
                    "unknown option `--{name}` (expected one of: {})",
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
            let value_next = argv.get(i + 1).filter(|v| !v.starts_with("--")).cloned();
            match value_next {
                Some(value) => {
                    parsed.values.insert(name.to_owned(), value);
                    i += 2;
                }
                None => {
                    parsed.flags.push(name.to_owned());
                    i += 1;
                }
            }
        }
        Ok(parsed)
    }

    /// The raw string value of an option, if given.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// Whether a boolean flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// A required option's value.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] when the option is missing.
    pub fn require(&self, name: &str) -> Result<&str, ArgError> {
        self.get(name)
            .ok_or_else(|| ArgError::new(format!("missing required option `--{name}`")))
    }

    /// An optional typed value with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] when the value does not parse as `T`.
    pub fn get_parsed_or<T>(&self, name: &str, default: T) -> Result<T, ArgError>
    where
        T: FromStr,
        T::Err: fmt::Display,
    {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse::<T>()
                .map_err(|e| ArgError::new(format!("invalid value `{raw}` for `--{name}`: {e}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_values_and_flags() {
        let args = ParsedArgs::parse(&argv(&["--rate", "0.1", "--verbose"]), &["rate", "verbose"])
            .expect("valid");
        assert_eq!(args.get("rate"), Some("0.1"));
        assert!(args.flag("verbose"));
        assert!(!args.flag("rate"));
    }

    #[test]
    fn rejects_unknown_options() {
        let err = ParsedArgs::parse(&argv(&["--bogus", "1"]), &["rate"]).unwrap_err();
        assert!(err.to_string().contains("--bogus"));
        assert!(err.to_string().contains("--rate"));
    }

    #[test]
    fn rejects_positional_arguments() {
        let err = ParsedArgs::parse(&argv(&["stray"]), &["rate"]).unwrap_err();
        assert!(err.to_string().contains("positional"));
    }

    #[test]
    fn typed_accessor_parses_and_defaults() {
        let args = ParsedArgs::parse(&argv(&["--dim", "2048"]), &["dim"]).expect("valid");
        assert_eq!(args.get_parsed_or("dim", 0usize).expect("parses"), 2048);
        assert_eq!(args.get_parsed_or("seed", 7u64).expect("default"), 7);
        let bad = ParsedArgs::parse(&argv(&["--dim", "abc"]), &["dim"]).expect("valid");
        assert!(bad.get_parsed_or("dim", 0usize).is_err());
    }

    #[test]
    fn require_reports_missing() {
        let args = ParsedArgs::parse(&[], &["train"]).expect("valid");
        assert!(args
            .require("train")
            .unwrap_err()
            .to_string()
            .contains("--train"));
    }
}
