//! The four subcommands, each a pure function from argv to a text report.

use crate::args::ParsedArgs;
use advsim::{
    run_adv_soak, AdvSoakConfig, AttackBudget, DisagreementCorpus, DisagreementHunter, HuntBudget,
};
use baselines::{BitStoredModel, Mlp, MlpConfig};
use faultsim::{AttackCampaign, Attacker, ErrorRateSchedule};
use robusthd::diagnostics::{HealthMonitor, HealthVerdict};
use robusthd::persist;
use robusthd::supervisor::{run_soak, ResilienceSupervisor};
use robusthd::train::train_accumulators;
use robusthd::{
    accuracy, AdvConfig, BatchConfig, BatchEngine, EncodeConfig, Encoder, HdcConfig, RecordEncoder,
    RecoveryConfig, RecoveryEngine, SubstitutionMode, SupervisorConfig, TrainConfig, TrainedModel,
};
use std::fmt::Write as _;
use std::fs::File;
use std::path::Path;
use synthdata::{csv, DatasetSpec, GeneratorConfig, Sample};

fn load_samples(path: &str) -> Result<Vec<Sample>, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let samples = csv::read_samples(file).map_err(|e| format!("{path}: {e}"))?;
    if samples.is_empty() {
        return Err(format!("{path}: dataset is empty"));
    }
    Ok(samples)
}

struct TrainedPipeline {
    model: TrainedModel,
    encoder: RecordEncoder,
    queries: Vec<hypervector::BinaryHypervector>,
    labels: Vec<usize>,
    config: HdcConfig,
    clean_accuracy: f64,
}

fn train_pipeline(
    train: &[Sample],
    test: &[Sample],
    dim: usize,
    seed: u64,
) -> Result<TrainedPipeline, String> {
    let features = train[0].features.len();
    if test
        .iter()
        .chain(train)
        .any(|s| s.features.len() != features)
    {
        return Err("train and test feature counts disagree".to_owned());
    }
    let classes = train
        .iter()
        .chain(test)
        .map(|s| s.label)
        .max()
        .expect("non-empty")
        + 1;
    let config = HdcConfig::builder()
        .dimension(dim)
        .seed(seed)
        .build()
        .map_err(|e| e.to_string())?;
    let encoder = RecordEncoder::new(&config, features);
    let train_rows: Vec<&[f64]> = train.iter().map(|s| s.features.as_slice()).collect();
    let encoded_train = encoder.encode_batch_refs(&train_rows);
    let train_labels: Vec<_> = train.iter().map(|s| s.label).collect();
    let test_rows: Vec<&[f64]> = test.iter().map(|s| s.features.as_slice()).collect();
    let queries = encoder.encode_batch_refs(&test_rows);
    let labels: Vec<_> = test.iter().map(|s| s.label).collect();
    let model = TrainedModel::train(&encoded_train, &train_labels, classes, &config);
    let clean_accuracy = accuracy(&model, &queries, &labels);
    Ok(TrainedPipeline {
        model,
        encoder,
        queries,
        labels,
        config,
        clean_accuracy,
    })
}

fn attack_model(model: &TrainedModel, rate: f64, seed: u64) -> TrainedModel {
    let mut image = model.to_memory_image();
    let bits = image.len();
    Attacker::seed_from(seed).random_flips(image.words_mut(), bits, rate);
    image.mask_tail();
    let mut attacked = model.clone();
    attacked.load_memory_image(&image);
    attacked
}

const GENERATE_HELP: &str = "\
robusthd generate — write a synthetic stand-in dataset to CSV

OPTIONS:
    --dataset <NAME>     mnist | ucihar | isolet | face | pamap | pecan (default ucihar)
    --train <PATH>       output CSV for the training split (required)
    --test <PATH>        output CSV for the test split (required)
    --train-size <N>     samples in the training split (default 1200)
    --test-size <N>      samples in the test split (default 600)
    --seed <N>           generation seed (default 1)";

/// `robusthd generate` — synthesize a dataset and write both splits as CSV.
pub fn generate(argv: &[String]) -> Result<String, String> {
    let args = ParsedArgs::parse(
        argv,
        &[
            "dataset",
            "train",
            "test",
            "train-size",
            "test-size",
            "seed",
            "help",
        ],
    )
    .map_err(|e| e.to_string())?;
    if args.flag("help") {
        return Ok(GENERATE_HELP.to_owned());
    }
    let name = args.get("dataset").unwrap_or("ucihar").to_lowercase();
    let spec = match name.as_str() {
        "mnist" => DatasetSpec::mnist(),
        "ucihar" | "uci-har" | "har" => DatasetSpec::ucihar(),
        "isolet" => DatasetSpec::isolet(),
        "face" => DatasetSpec::face(),
        "pamap" => DatasetSpec::pamap(),
        "pecan" => DatasetSpec::pecan(),
        other => return Err(format!("unknown dataset `{other}`")),
    };
    let train_size = args
        .get_parsed_or("train-size", 1200usize)
        .map_err(|e| e.to_string())?;
    let test_size = args
        .get_parsed_or("test-size", 600usize)
        .map_err(|e| e.to_string())?;
    let seed = args
        .get_parsed_or("seed", 1u64)
        .map_err(|e| e.to_string())?;
    let train_path = args.require("train").map_err(|e| e.to_string())?;
    let test_path = args.require("test").map_err(|e| e.to_string())?;

    let spec = spec.with_sizes(train_size, test_size);
    let data = GeneratorConfig::new(seed).generate(&spec);
    let write = |path: &str, samples: &[Sample]| -> Result<(), String> {
        let file =
            File::create(Path::new(path)).map_err(|e| format!("cannot create {path}: {e}"))?;
        csv::write_samples(file, samples).map_err(|e| format!("writing {path}: {e}"))
    };
    write(train_path, &data.train)?;
    write(test_path, &data.test)?;
    Ok(format!(
        "wrote {} ({} samples) and {} ({} samples): {} features, {} classes",
        train_path,
        data.train.len(),
        test_path,
        data.test.len(),
        spec.features,
        spec.classes
    ))
}

const EVALUATE_HELP: &str = "\
robusthd evaluate — train an HDC classifier on CSV data and report accuracy

OPTIONS:
    --train <PATH>   training CSV (features..., integer label) (required)
    --test <PATH>    test CSV (required)
    --dim <N>        hypervector dimensionality (default 10000)
    --seed <N>       pipeline seed (default 0)";

/// `robusthd evaluate` — train on one CSV, score on another.
pub fn evaluate(argv: &[String]) -> Result<String, String> {
    let args = ParsedArgs::parse(argv, &["train", "test", "dim", "seed", "help"])
        .map_err(|e| e.to_string())?;
    if args.flag("help") {
        return Ok(EVALUATE_HELP.to_owned());
    }
    let train = load_samples(args.require("train").map_err(|e| e.to_string())?)?;
    let test = load_samples(args.require("test").map_err(|e| e.to_string())?)?;
    let dim = args
        .get_parsed_or("dim", 10_000usize)
        .map_err(|e| e.to_string())?;
    let seed = args
        .get_parsed_or("seed", 0u64)
        .map_err(|e| e.to_string())?;
    let pipeline = train_pipeline(&train, &test, dim, seed)?;
    Ok(format!(
        "trained on {} samples, tested on {}: accuracy {:.2}% (D = {dim})",
        train.len(),
        test.len(),
        pipeline.clean_accuracy * 100.0
    ))
}

const ATTACK_HELP: &str = "\
robusthd attack — compare HDC and an 8-bit DNN under random bit-flip attack

OPTIONS:
    --train <PATH>   training CSV (required)
    --test <PATH>    test CSV (required)
    --rate <F>       fraction of stored model bits to flip (default 0.1)
    --dim <N>        HDC dimensionality (default 10000)
    --seed <N>       pipeline/attack seed (default 0)";

/// `robusthd attack` — HDC vs DNN quality loss at one attack rate.
pub fn attack(argv: &[String]) -> Result<String, String> {
    let args = ParsedArgs::parse(argv, &["train", "test", "rate", "dim", "seed", "help"])
        .map_err(|e| e.to_string())?;
    if args.flag("help") {
        return Ok(ATTACK_HELP.to_owned());
    }
    let train = load_samples(args.require("train").map_err(|e| e.to_string())?)?;
    let test = load_samples(args.require("test").map_err(|e| e.to_string())?)?;
    let rate = args
        .get_parsed_or("rate", 0.1f64)
        .map_err(|e| e.to_string())?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("--rate {rate} outside [0, 1]"));
    }
    let dim = args
        .get_parsed_or("dim", 10_000usize)
        .map_err(|e| e.to_string())?;
    let seed = args
        .get_parsed_or("seed", 0u64)
        .map_err(|e| e.to_string())?;

    let pipeline = train_pipeline(&train, &test, dim, seed)?;
    let attacked = attack_model(&pipeline.model, rate, seed ^ 0xa77);
    let hdc_attacked = accuracy(&attacked, &pipeline.queries, &pipeline.labels);

    let mlp = Mlp::fit(&MlpConfig::default(), &train);
    let dnn_clean = baselines::accuracy(&mlp, &test);
    let mut image = mlp.to_image();
    Attacker::seed_from(seed ^ 0xa77).random_flips(&mut image, mlp.bit_len(), rate);
    let mut dnn_attacked_model = mlp.clone();
    dnn_attacked_model.load_image(&image);
    let dnn_attacked = baselines::accuracy(&dnn_attacked_model, &test);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "attack rate: {:.1}% of stored model bits",
        rate * 100.0
    );
    let _ = writeln!(
        out,
        "HDC  (D={dim}): clean {:.2}%  attacked {:.2}%  loss {:.2}%",
        pipeline.clean_accuracy * 100.0,
        hdc_attacked * 100.0,
        (pipeline.clean_accuracy - hdc_attacked).max(0.0) * 100.0
    );
    let _ = write!(
        out,
        "DNN  (8-bit): clean {:.2}%  attacked {:.2}%  loss {:.2}%",
        dnn_clean * 100.0,
        dnn_attacked * 100.0,
        (dnn_clean - dnn_attacked).max(0.0) * 100.0
    );
    Ok(out)
}

const RECOVER_HELP: &str = "\
robusthd recover — attack an HDC model, then repair it from unlabeled traffic

OPTIONS:
    --train <PATH>     training CSV (required)
    --test <PATH>      test CSV; also serves as the unlabeled traffic (required)
    --rate <F>         fraction of stored model bits to flip (default 0.1)
    --dim <N>          HDC dimensionality (default 4096)
    --passes <N>       recovery passes over the traffic (default 16)
    --seed <N>         pipeline/attack seed (default 0)";

/// `robusthd recover` — the full attack → unsupervised-repair loop.
pub fn recover(argv: &[String]) -> Result<String, String> {
    let args = ParsedArgs::parse(
        argv,
        &["train", "test", "rate", "dim", "passes", "seed", "help"],
    )
    .map_err(|e| e.to_string())?;
    if args.flag("help") {
        return Ok(RECOVER_HELP.to_owned());
    }
    let train = load_samples(args.require("train").map_err(|e| e.to_string())?)?;
    let test = load_samples(args.require("test").map_err(|e| e.to_string())?)?;
    let rate = args
        .get_parsed_or("rate", 0.1f64)
        .map_err(|e| e.to_string())?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("--rate {rate} outside [0, 1]"));
    }
    let dim = args
        .get_parsed_or("dim", 4096usize)
        .map_err(|e| e.to_string())?;
    let passes = args
        .get_parsed_or("passes", 16usize)
        .map_err(|e| e.to_string())?;
    let seed = args
        .get_parsed_or("seed", 0u64)
        .map_err(|e| e.to_string())?;

    let pipeline = train_pipeline(&train, &test, dim, seed)?;
    let mut model = attack_model(&pipeline.model, rate, seed ^ 0xa77);
    let attacked = accuracy(&model, &pipeline.queries, &pipeline.labels);

    let recovery = RecoveryConfig::builder()
        .confidence_threshold(0.45)
        .substitution_rate(0.5)
        .substitution(SubstitutionMode::MajorityCounter { saturation: 3 })
        .seed(seed)
        .build()
        .map_err(|e| e.to_string())?;
    let mut engine = RecoveryEngine::new(recovery, pipeline.config.softmax_beta);
    for _ in 0..passes {
        engine.run_stream(&mut model, &pipeline.queries);
    }
    let recovered = accuracy(&model, &pipeline.queries, &pipeline.labels);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "clean accuracy:     {:.2}%",
        pipeline.clean_accuracy * 100.0
    );
    let _ = writeln!(
        out,
        "after {:.1}% attack:  {:.2}%  (loss {:.2}%)",
        rate * 100.0,
        attacked * 100.0,
        (pipeline.clean_accuracy - attacked).max(0.0) * 100.0
    );
    let _ = writeln!(
        out,
        "after recovery:     {:.2}%  (loss {:.2}%)",
        recovered * 100.0,
        (pipeline.clean_accuracy - recovered).max(0.0) * 100.0
    );
    let _ = write!(
        out,
        "trusted {:.0}% of the unlabeled traffic, rewrote {} stored bits",
        engine.stats().trust_rate() * 100.0,
        engine.stats().bits_changed
    );
    Ok(out)
}

const TRAIN_HELP: &str = "\
robusthd train — train an HDC pipeline on CSV data and save it

OPTIONS:
    --train <PATH>   training CSV (features..., integer label) (required)
    --model <PATH>   output model file (required)
    --dim <N>        hypervector dimensionality (default 10000)
    --seed <N>       pipeline seed (default 0)";

/// `robusthd train` — fit a pipeline and persist it.
pub fn train(argv: &[String]) -> Result<String, String> {
    let args = ParsedArgs::parse(argv, &["train", "model", "dim", "seed", "help"])
        .map_err(|e| e.to_string())?;
    if args.flag("help") {
        return Ok(TRAIN_HELP.to_owned());
    }
    let train_samples = load_samples(args.require("train").map_err(|e| e.to_string())?)?;
    let model_path = args.require("model").map_err(|e| e.to_string())?;
    let dim = args
        .get_parsed_or("dim", 10_000usize)
        .map_err(|e| e.to_string())?;
    let seed = args
        .get_parsed_or("seed", 0u64)
        .map_err(|e| e.to_string())?;

    let features = train_samples[0].features.len();
    let classes = train_samples
        .iter()
        .map(|s| s.label)
        .max()
        .expect("non-empty")
        + 1;
    let config = HdcConfig::builder()
        .dimension(dim)
        .seed(seed)
        .build()
        .map_err(|e| e.to_string())?;
    let encoder = RecordEncoder::new(&config, features);
    let encoded: Vec<_> = train_samples
        .iter()
        .map(|s| encoder.encode(&s.features))
        .collect();
    let labels: Vec<_> = train_samples.iter().map(|s| s.label).collect();
    let model = TrainedModel::train(&encoded, &labels, classes, &config);

    let file = File::create(Path::new(model_path))
        .map_err(|e| format!("cannot create {model_path}: {e}"))?;
    persist::save_model(file, &config, features, &model)
        .map_err(|e| format!("writing {model_path}: {e}"))?;
    Ok(format!(
        "trained on {} samples ({features} features, {classes} classes, D = {dim}); saved to {model_path}",
        train_samples.len()
    ))
}

const INFER_HELP: &str = "\
robusthd infer — load a saved pipeline and classify CSV samples

OPTIONS:
    --model <PATH>   saved model file from `robusthd train` (required)
    --input <PATH>   CSV with features (and a label column, used for scoring) (required)
    --predictions    also print one predicted label per line";

/// `robusthd infer` — serve predictions from a persisted pipeline.
pub fn infer(argv: &[String]) -> Result<String, String> {
    let args = ParsedArgs::parse(argv, &["model", "input", "predictions", "help"])
        .map_err(|e| e.to_string())?;
    if args.flag("help") {
        return Ok(INFER_HELP.to_owned());
    }
    let model_path = args.require("model").map_err(|e| e.to_string())?;
    let input = load_samples(args.require("input").map_err(|e| e.to_string())?)?;
    let file =
        File::open(Path::new(model_path)).map_err(|e| format!("cannot open {model_path}: {e}"))?;
    let saved = persist::load_model(file).map_err(|e| format!("{model_path}: {e}"))?;
    if input[0].features.len() != saved.features {
        return Err(format!(
            "model expects {} features, input has {}",
            saved.features,
            input[0].features.len()
        ));
    }
    let encoder = RecordEncoder::new(&saved.config, saved.features);
    let predictions: Vec<usize> = input
        .iter()
        .map(|s| saved.model.predict(&encoder.encode(&s.features)))
        .collect();
    let correct = predictions
        .iter()
        .zip(&input)
        .filter(|(&p, s)| p == s.label)
        .count();
    let mut out = format!(
        "classified {} samples: accuracy {:.2}% against the label column",
        input.len(),
        correct as f64 / input.len() as f64 * 100.0
    );
    if args.flag("predictions") {
        for p in &predictions {
            let _ = write!(out, "\n{p}");
        }
    }
    Ok(out)
}

const MONITOR_HELP: &str = "\
robusthd monitor — judge a model's health from unlabeled traffic

Calibrates on the clean model, re-plays the traffic against an attacked
copy, and reports the monitor's verdict at each corruption step.

OPTIONS:
    --train <PATH>   training CSV (required)
    --traffic <PATH> unlabeled traffic CSV (label column present but unused) (required)
    --rate <F>       per-step corruption increment (default 0.05)
    --steps <N>      corruption steps to simulate (default 5)
    --dim <N>        HDC dimensionality (default 4096)
    --seed <N>       pipeline/attack seed (default 0)";

/// `robusthd monitor` — unsupervised degradation detection demo.
pub fn monitor(argv: &[String]) -> Result<String, String> {
    let args = ParsedArgs::parse(
        argv,
        &["train", "traffic", "rate", "steps", "dim", "seed", "help"],
    )
    .map_err(|e| e.to_string())?;
    if args.flag("help") {
        return Ok(MONITOR_HELP.to_owned());
    }
    let train = load_samples(args.require("train").map_err(|e| e.to_string())?)?;
    let traffic = load_samples(args.require("traffic").map_err(|e| e.to_string())?)?;
    let rate = args
        .get_parsed_or("rate", 0.05f64)
        .map_err(|e| e.to_string())?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("--rate {rate} outside [0, 1]"));
    }
    let steps = args
        .get_parsed_or("steps", 5usize)
        .map_err(|e| e.to_string())?;
    let dim = args
        .get_parsed_or("dim", 4096usize)
        .map_err(|e| e.to_string())?;
    let seed = args
        .get_parsed_or("seed", 0u64)
        .map_err(|e| e.to_string())?;

    let pipeline = train_pipeline(&train, &traffic, dim, seed)?;
    let mut model = pipeline.model.clone();
    let window = (pipeline.queries.len() / 2).max(1);
    let mut health = HealthMonitor::new(window, 0.6);
    health.calibrate(&model, &pipeline.queries, pipeline.config.softmax_beta);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "calibrated on {} clean queries",
        pipeline.queries.len()
    );
    for step in 1..=steps {
        model = attack_model(&model, rate, seed ^ (step as u64) << 4);
        for q in &pipeline.queries {
            health.observe(&model, q, pipeline.config.softmax_beta);
        }
        let verdict = match health.verdict() {
            HealthVerdict::Healthy => "healthy",
            HealthVerdict::Degraded => "DEGRADED",
            HealthVerdict::InsufficientTraffic => "insufficient traffic",
        };
        let _ = writeln!(
            out,
            "step {step}: +{:.1}% corruption, accuracy {:.2}%, verdict {verdict}",
            rate * 100.0,
            accuracy(&model, &pipeline.queries, &pipeline.labels) * 100.0
        );
    }
    out.pop();
    Ok(out)
}

const SOAK_HELP: &str = "\
robusthd soak — chaos-soak the self-healing serving runtime

Trains a pipeline, calibrates the resilience supervisor on the first half
of the traffic (retained as canaries), then serves the second half while
an attack campaign corrupts the stored model between batches. The
supervisor monitors, repairs at an escalating ladder, checkpoints healthy
states, and rolls back when recovery keeps failing.

OPTIONS:
    --train <PATH>   training CSV (required)
    --traffic <PATH> traffic CSV (labels used only to report accuracy) (required)
    --steps <N>      attack-campaign steps (default 8)
    --peak <F>       cumulative corruption rate at the last step (default 0.12)
    --burst          also flip half of every stored word at the midpoint
                     (a catastrophe that forces escalation and rollback)
    --targeted       spend the campaign budget on stored-word MSBs first
    --dim <N>        HDC dimensionality (default 4096)
    --seed <N>       pipeline/campaign seed (default 0)
    --json           emit the full JSON soak trace instead of a text report";

/// `robusthd soak` — closed-loop resilience soak with fault injection.
pub fn soak(argv: &[String]) -> Result<String, String> {
    let args = ParsedArgs::parse(
        argv,
        &[
            "train", "traffic", "steps", "peak", "burst", "targeted", "dim", "seed", "json", "help",
        ],
    )
    .map_err(|e| e.to_string())?;
    if args.flag("help") {
        return Ok(SOAK_HELP.to_owned());
    }
    let train = load_samples(args.require("train").map_err(|e| e.to_string())?)?;
    let traffic = load_samples(args.require("traffic").map_err(|e| e.to_string())?)?;
    let steps = args
        .get_parsed_or("steps", 8usize)
        .map_err(|e| e.to_string())?;
    if steps == 0 {
        return Err("--steps must be positive".to_owned());
    }
    let peak = args
        .get_parsed_or("peak", 0.12f64)
        .map_err(|e| e.to_string())?;
    if !(0.0..=1.0).contains(&peak) {
        return Err(format!("--peak {peak} outside [0, 1]"));
    }
    let dim = args
        .get_parsed_or("dim", 4096usize)
        .map_err(|e| e.to_string())?;
    let seed = args
        .get_parsed_or("seed", 0u64)
        .map_err(|e| e.to_string())?;
    let burst = args.flag("burst");
    let targeted = args.flag("targeted");

    let pipeline = train_pipeline(&train, &traffic, dim, seed)?;
    let features = train[0].features.len();
    let half = (pipeline.queries.len() / 2).max(1);
    let (canaries, served) = pipeline.queries.split_at(half);
    let served_labels = &pipeline.labels[half..];
    if served.is_empty() {
        return Err("traffic file too small to split into canaries and served queries".to_owned());
    }

    let base = RecoveryConfig::builder()
        .confidence_threshold(0.45)
        .substitution_rate(0.5)
        .substitution(SubstitutionMode::MajorityCounter { saturation: 3 })
        .seed(seed ^ 0x50AC)
        .build()
        .map_err(|e| e.to_string())?;
    let policy = SupervisorConfig::builder()
        .window(served.len())
        .sensitivity(0.9)
        .build()
        .map_err(|e| e.to_string())?;
    let mut supervisor = ResilienceSupervisor::new(&pipeline.config, base, policy, features);
    let mut model = pipeline.model.clone();
    supervisor.calibrate(&model, canaries);

    let model_bits = model.num_classes() * model.dim();
    let schedule = ErrorRateSchedule::from_cumulative(
        (1..=steps)
            .map(|i| peak * i as f64 / steps as f64)
            .collect(),
    );
    let mut campaign = AttackCampaign::new(schedule, model_bits, seed ^ 0xCA);
    let burst_at = steps / 2;
    let report = run_soak(
        &mut supervisor,
        &mut model,
        served,
        served_labels,
        |model, step| {
            let mut image = model.to_memory_image();
            let flipped = if burst && step == burst_at {
                for word in image.words_mut() {
                    *word ^= 0xAAAA_AAAA_AAAA_AAAA;
                }
                model_bits / 2
            } else if targeted {
                campaign.advance_targeted(image.words_mut(), 64)?
            } else {
                campaign.advance(image.words_mut())?
            };
            image.mask_tail();
            model.load_memory_image(&image);
            Some(flipped)
        },
    );

    if args.flag("json") {
        return Ok(report.to_json());
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "calibrated on {} canaries, serving {} queries per batch",
        canaries.len(),
        served.len()
    );
    for s in &report.steps {
        let _ = writeln!(
            out,
            "step {}: +{} flips ({:.1}% cumulative), accuracy {:.2}%, level {}{}{}{}",
            s.step,
            s.bits_flipped,
            s.cumulative_error_rate * 100.0,
            s.accuracy * 100.0,
            s.report.level,
            if s.report.escalated {
                ", ESCALATED"
            } else {
                ""
            },
            if s.report.rolled_back {
                ", ROLLED BACK"
            } else {
                ""
            },
            if s.report.checkpointed {
                ", checkpointed"
            } else {
                ""
            },
        );
    }
    let _ = write!(
        out,
        "soak: clean {:.2}% -> final {:.2}% at {:.1}% peak corruption, \
         {} escalations, {} rollbacks",
        report.clean_accuracy * 100.0,
        report.final_accuracy() * 100.0,
        report.peak_error_rate() * 100.0,
        report.escalations(),
        report.rollbacks()
    );
    Ok(out)
}

const ADVSOAK_HELP: &str = "\
robusthd advsoak — joint memory + input adversarial soak

Trains a pipeline, calibrates the resilience supervisor on the first half
of the traffic (canaries), then serves the second half while an attack
campaign corrupts stored memory AND a blackbox margin-guided attacker
perturbs a fraction of the queries inside a hard Hamming budget. Reports
whether the confidence gate detects the adversarial queries. Also hunts a
disagreement corpus across model variants (one-shot vs retrained vs
memory-attacked) that can be persisted and later replayed bit-exactly.

OPTIONS:
    --train <PATH>     training CSV (required)
    --traffic <PATH>   traffic CSV (labels used only to report accuracy) (required)
    --steps <N>        attack-campaign steps (default 6)
    --peak <F>         cumulative memory corruption at the last step (default 0.08)
    --tcam             derive the memory-corruption schedule from the FeFET/TCAM
                       retention model (Vth drift) instead of the linear ramp
    --horizon <F>      TCAM retention horizon in seconds (default 1e8)
    --radius <N>       input-attack Hamming budget per query (default 64)
    --candidates <N>   candidate bits scored per attack round
                       (default: ROBUSTHD_ADV_CANDIDATES)
    --attack-frac <F>  fraction of served queries attacked per step (default 0.15)
    --trust <F>        confidence trust threshold T_C (default 0.45)
    --corpus <PATH>    persist the disagreement corpus (ADVC1 text) here
    --replay <PATH>    replay a saved corpus against the rebuilt pipeline and
                       report exactness instead of running the soak
    --dim <N>          HDC dimensionality (default 4096)
    --seed <N>         pipeline/attack seed (default: ROBUSTHD_ADV_SEED)
    --json             emit the full JSON report instead of a text report";

/// Rebuilds the hunt's model variants deterministically from a pipeline:
/// the one-shot model, a 2-epoch retrained refinement, and a 5%
/// memory-attacked copy.
fn adv_variants(
    pipeline: &TrainedPipeline,
    train: &[Sample],
    seed: u64,
) -> (TrainedModel, TrainedModel) {
    let train_rows: Vec<&[f64]> = train.iter().map(|s| s.features.as_slice()).collect();
    let encoded_train = pipeline.encoder.encode_batch_refs(&train_rows);
    let train_labels: Vec<_> = train.iter().map(|s| s.label).collect();
    let classes = pipeline.model.num_classes();
    let mut refined = pipeline.config.clone();
    refined.retrain_epochs = 2;
    let retrained = TrainedModel::train(&encoded_train, &train_labels, classes, &refined);
    let attacked = attack_model(&pipeline.model, 0.05, seed ^ 0xBAD);
    (retrained, attacked)
}

/// `robusthd advsoak` — adversarial scenario soak (input + memory attacks).
pub fn advsoak(argv: &[String]) -> Result<String, String> {
    let args = ParsedArgs::parse(
        argv,
        &[
            "train",
            "traffic",
            "steps",
            "peak",
            "tcam",
            "horizon",
            "radius",
            "candidates",
            "attack-frac",
            "trust",
            "corpus",
            "replay",
            "dim",
            "seed",
            "json",
            "help",
        ],
    )
    .map_err(|e| e.to_string())?;
    if args.flag("help") {
        return Ok(ADVSOAK_HELP.to_owned());
    }
    let train = load_samples(args.require("train").map_err(|e| e.to_string())?)?;
    let traffic = load_samples(args.require("traffic").map_err(|e| e.to_string())?)?;
    let steps = args
        .get_parsed_or("steps", 6usize)
        .map_err(|e| e.to_string())?;
    if steps == 0 {
        return Err("--steps must be positive".to_owned());
    }
    let peak = args
        .get_parsed_or("peak", 0.08f64)
        .map_err(|e| e.to_string())?;
    if !(0.0..=1.0).contains(&peak) {
        return Err(format!("--peak {peak} outside [0, 1]"));
    }
    let horizon = args
        .get_parsed_or("horizon", 1e8f64)
        .map_err(|e| e.to_string())?;
    let adv = AdvConfig::from_env();
    let radius = args
        .get_parsed_or("radius", 64usize)
        .map_err(|e| e.to_string())?;
    let candidates = args
        .get_parsed_or("candidates", adv.candidates)
        .map_err(|e| e.to_string())?;
    let attack_frac = args
        .get_parsed_or("attack-frac", 0.15f64)
        .map_err(|e| e.to_string())?;
    if !(0.0..=1.0).contains(&attack_frac) {
        return Err(format!("--attack-frac {attack_frac} outside [0, 1]"));
    }
    let trust = args
        .get_parsed_or("trust", 0.45f64)
        .map_err(|e| e.to_string())?;
    let dim = args
        .get_parsed_or("dim", 4096usize)
        .map_err(|e| e.to_string())?;
    let seed = args
        .get_parsed_or("seed", adv.seed)
        .map_err(|e| e.to_string())?;

    let pipeline = train_pipeline(&train, &traffic, dim, seed)?;
    let features = train[0].features.len();
    let engine = BatchEngine::from_env();
    let beta = pipeline.config.softmax_beta;
    let (retrained, attacked) = adv_variants(&pipeline, &train, seed);
    let variants = [
        ("one-shot", &pipeline.model),
        ("retrained", &retrained),
        ("attacked", &attacked),
    ];

    // Replay mode: verify a previously persisted corpus bit-exactly
    // against the rebuilt pipeline, then stop.
    if let Some(path) = args.get("replay") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let corpus = DisagreementCorpus::from_text(&text).map_err(|e| format!("{path}: {e}"))?;
        let fast =
            RecordEncoder::with_encode_config(&pipeline.config, features, EncodeConfig::fast());
        let reference = RecordEncoder::with_encode_config(
            &pipeline.config,
            features,
            EncodeConfig::reference(),
        );
        let report = corpus.replay(&engine, &fast, &reference, &variants, beta);
        if args.flag("json") {
            return Ok(format!(
                "{{\"cases\":{},\"encode_mismatches\":{},\"score_mismatches\":{},\
                 \"verdict_mismatches\":{},\"clean\":{}}}",
                report.cases,
                report.encode_mismatches,
                report.score_mismatches,
                report.verdict_mismatches,
                report.is_clean()
            ));
        }
        return Ok(format!(
            "replayed {} cases: {} encode, {} score, {} verdict mismatches — {}",
            report.cases,
            report.encode_mismatches,
            report.score_mismatches,
            report.verdict_mismatches,
            if report.is_clean() {
                "bit-exact"
            } else {
                "NOT REPRODUCIBLE"
            }
        ));
    }

    // Disagreement hunt over the traffic's raw feature rows.
    let hunt_rows: Vec<Vec<f64>> = traffic
        .iter()
        .take(32)
        .map(|s| s.features.clone())
        .collect();
    let hunter = DisagreementHunter::new(HuntBudget::new(6, 12).with_seed(seed));
    let corpus = hunter.hunt(&engine, &pipeline.encoder, &variants, &hunt_rows, beta);
    let mut corpus_note = format!("{} disagreements", corpus.cases.len());
    if let Some(path) = args.get("corpus") {
        std::fs::write(path, corpus.to_text()).map_err(|e| format!("cannot write {path}: {e}"))?;
        let _ = write!(corpus_note, " (persisted to {path})");
    }

    // Joint soak: memory campaign + input attacks through the closed loop.
    let half = (pipeline.queries.len() / 2).max(1);
    let (canaries, served) = pipeline.queries.split_at(half);
    let served_labels = &pipeline.labels[half..];
    if served.is_empty() {
        return Err("traffic file too small to split into canaries and served queries".to_owned());
    }
    let base = RecoveryConfig::builder()
        .confidence_threshold(0.45)
        .substitution_rate(0.5)
        .substitution(SubstitutionMode::MajorityCounter { saturation: 3 })
        .seed(seed ^ 0x50AC)
        .build()
        .map_err(|e| e.to_string())?;
    let policy = SupervisorConfig::builder()
        .window(served.len())
        .sensitivity(0.9)
        .build()
        .map_err(|e| e.to_string())?;
    let mut supervisor = ResilienceSupervisor::new(&pipeline.config, base, policy, features);
    let mut model = pipeline.model.clone();
    supervisor.calibrate(&model, canaries);

    let schedule = if args.flag("tcam") {
        if !(horizon.is_finite() && horizon >= 0.0) {
            return Err(format!(
                "--horizon {horizon} must be non-negative and finite"
            ));
        }
        ErrorRateSchedule::from_cumulative(
            pimsim::TcamBerModel::default().cumulative_rates(steps, horizon),
        )
    } else {
        ErrorRateSchedule::from_cumulative(
            (1..=steps)
                .map(|i| peak * i as f64 / steps as f64)
                .collect(),
        )
    };
    let config = AdvSoakConfig {
        schedule,
        budget: AttackBudget::new(radius)
            .with_candidates(candidates)
            .with_seed(seed ^ 0xADF0),
        attack_fraction: attack_frac,
        trust_threshold: trust,
    };
    let report = run_adv_soak(&mut supervisor, &mut model, served, served_labels, &config);

    if args.flag("json") {
        return Ok(format!(
            "{{\"corpus_cases\":{},\"radius\":{},\"soak\":{}}}",
            corpus.cases.len(),
            radius,
            report.to_json()
        ));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "calibrated on {} canaries, serving {} queries per step",
        canaries.len(),
        served.len()
    );
    let _ = writeln!(out, "hunt: {corpus_note}");
    for s in &report.steps {
        let _ = writeln!(
            out,
            "step {}: +{} memory flips ({:.1}% cumulative), {}/{} attacks succeeded \
             ({} caught), {} false alarms, accuracy {:.2}%, level {}{}{}",
            s.step,
            s.memory_bits_flipped,
            s.cumulative_error_rate * 100.0,
            s.attack_successes,
            s.attacked,
            s.detected_successes,
            s.clean_false_alarms,
            s.accuracy * 100.0,
            s.level,
            if s.escalated { ", ESCALATED" } else { "" },
            if s.rolled_back { ", ROLLED BACK" } else { "" },
        );
    }
    let _ = write!(
        out,
        "advsoak: clean {:.2}% -> final {:.2}%, attack success {:.1}%, \
         detection {:.1}%, false alarms {:.1}%",
        report.clean_accuracy * 100.0,
        report.final_accuracy() * 100.0,
        report.attack_success_rate() * 100.0,
        report.detection_rate() * 100.0,
        report.false_alarm_rate() * 100.0
    );
    Ok(out)
}

const FLAGS_HELP: &str = "\
robusthd flags — print the ROBUSTHD_* environment-flag registry as JSON

Every runtime flag the suite reads is registered centrally in
robusthd::FlagRegistry; this command dumps that registry, so the output
is definitionally complete: a flag that does not appear here does not
exist (the repo lints fail any environment read that bypasses the
registry). Per flag: the variable name, the config struct that parses
it, its default, whether it is currently set, the raw value, and the
effective parsed value.

OPTIONS:
    --help             show this help";

/// Escapes a string for embedding inside a JSON string literal.
fn json_escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// `robusthd flags` — the flag registry as one JSON object.
pub fn flags(argv: &[String]) -> Result<String, String> {
    let args = ParsedArgs::parse(argv, &["help"]).map_err(|e| e.to_string())?;
    if args.flag("help") {
        return Ok(FLAGS_HELP.to_owned());
    }
    let mut entries = String::new();
    for (idx, flag) in robusthd::FlagRegistry::flags().iter().enumerate() {
        if idx > 0 {
            entries.push_str(",\n");
        }
        let raw = match &flag.raw {
            Some(value) => format!("\"{}\"", json_escape(value)),
            None => "null".to_owned(),
        };
        let _ = write!(
            entries,
            "    {{\"name\": \"{}\", \"owner\": \"{}\", \"default\": \"{}\", \
             \"set\": {}, \"raw\": {raw}, \"effective\": \"{}\", \"doc\": \"{}\"}}",
            json_escape(flag.name),
            json_escape(flag.owner),
            json_escape(flag.default),
            flag.raw.is_some(),
            json_escape(&flag.effective),
            json_escape(flag.doc),
        );
    }
    Ok(format!("{{\n  \"flags\": [\n{entries}\n  ]\n}}"))
}

const THROUGHPUT_HELP: &str = "\
robusthd throughput — measure serving throughput by phase (queries/sec)

Synthesizes a dataset in-process, trains an HDC pipeline, then times the
parallel batch engine at each requested thread count, reporting three
rates per point:

    encode_qps       raw feature rows -> hypervectors
    score_qps        pre-encoded hypervectors -> predictions
    end_to_end_qps   raw rows -> predictions, fused (no intermediate batch)

Before timing, the encoder is cross-checked against the scalar reference
path and the engine's predictions against the sequential path at every
thread count, so the reported rates always describe the bit-exact engine.
Set ROBUSTHD_ENCODE_FAST=0 to time the reference encoder instead. Emits
one JSON object to stdout.

OPTIONS:
    --dataset <NAME>   mnist | ucihar | isolet | face | pamap | pecan (default ucihar)
    --queries <N>      queries per timed batch (default 2000)
    --dim <N>          HDC dimensionality (default 4096)
    --threads <LIST>   comma-separated thread counts (default 1,2,4,8)
    --shard <N>        shard size in queries (default 32)
    --repeats <N>      timed repetitions per thread count; best rate wins (default 3)
    --seed <N>         pipeline seed (default 0)";

/// `robusthd throughput` — queries/sec sweep over thread counts.
pub fn throughput(argv: &[String]) -> Result<String, String> {
    let args = ParsedArgs::parse(
        argv,
        &[
            "dataset", "queries", "dim", "threads", "shard", "repeats", "seed", "help",
        ],
    )
    .map_err(|e| e.to_string())?;
    if args.flag("help") {
        return Ok(THROUGHPUT_HELP.to_owned());
    }
    let name = args.get("dataset").unwrap_or("ucihar").to_lowercase();
    let spec = match name.as_str() {
        "mnist" => DatasetSpec::mnist(),
        "ucihar" | "uci-har" | "har" => DatasetSpec::ucihar(),
        "isolet" => DatasetSpec::isolet(),
        "face" => DatasetSpec::face(),
        "pamap" => DatasetSpec::pamap(),
        "pecan" => DatasetSpec::pecan(),
        other => return Err(format!("unknown dataset `{other}`")),
    };
    let queries = args
        .get_parsed_or("queries", 2000usize)
        .map_err(|e| e.to_string())?;
    if queries == 0 {
        return Err("--queries must be positive".to_owned());
    }
    let dim = args
        .get_parsed_or("dim", 4096usize)
        .map_err(|e| e.to_string())?;
    let shard = args
        .get_parsed_or("shard", 32usize)
        .map_err(|e| e.to_string())?;
    let repeats = args
        .get_parsed_or("repeats", 3usize)
        .map_err(|e| e.to_string())?;
    if shard == 0 || repeats == 0 {
        return Err("--shard and --repeats must be positive".to_owned());
    }
    let seed = args
        .get_parsed_or("seed", 0u64)
        .map_err(|e| e.to_string())?;
    let threads: Vec<usize> = args
        .get("threads")
        .unwrap_or("1,2,4,8")
        .split(',')
        .map(|t| {
            t.trim()
                .parse::<usize>()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| format!("--threads entry `{t}` is not a positive integer"))
        })
        .collect::<Result<_, _>>()?;
    if threads.is_empty() {
        return Err("--threads list must not be empty".to_owned());
    }

    let spec = spec.with_sizes(400, queries);
    let data = GeneratorConfig::new(seed).generate(&spec);
    let pipeline = train_pipeline(&data.train, &data.test, dim, seed)?;
    let rows: Vec<&[f64]> = data.test.iter().map(|s| s.features.as_slice()).collect();
    let sequential: Vec<usize> = pipeline
        .queries
        .iter()
        .map(|q| pipeline.model.predict(q))
        .collect();

    // Cross-check the serving encoder against the explicit scalar
    // reference before timing anything.
    let reference_encoder = robusthd::RecordEncoder::with_encode_config(
        &pipeline.config,
        rows[0].len(),
        robusthd::EncodeConfig::reference(),
    );
    for (row, encoded) in rows.iter().zip(&pipeline.queries) {
        if reference_encoder.encode(row) != *encoded {
            return Err(
                "bit-exactness violated: fast-path encoding diverges from the scalar reference"
                    .to_owned(),
            );
        }
    }

    /// Best items-per-second over `repeats` runs of `f`.
    fn best_rate<T>(items: usize, repeats: usize, mut f: impl FnMut() -> T) -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..repeats {
            let start = std::time::Instant::now();
            let _out = f();
            best = best.min(start.elapsed().as_secs_f64());
        }
        items as f64 / best
    }

    let mut engine = BatchEngine::from_env();
    let mut entries = String::new();
    let mut baseline_rate = None;
    for (idx, &t) in threads.iter().enumerate() {
        engine.set_config(
            BatchConfig::builder()
                .threads(t)
                .shard_size(shard)
                .build()
                .map_err(|e| e.to_string())?,
        );
        let batched = engine.predict_batch(&pipeline.model, &pipeline.queries);
        if batched != sequential {
            return Err(format!(
                "bit-exactness violated: batched predictions at {t} threads diverge \
                 from the sequential path"
            ));
        }
        let fused = engine.predict_raw_batch(&pipeline.encoder, &pipeline.model, &rows);
        if fused != sequential {
            return Err(format!(
                "bit-exactness violated: fused raw predictions at {t} threads diverge \
                 from the sequential path"
            ));
        }

        let encode_qps = best_rate(rows.len(), repeats, || {
            engine.encode_batch(&pipeline.encoder, &rows)
        });
        let score_qps = best_rate(rows.len(), repeats, || {
            engine.predict_batch(&pipeline.model, &pipeline.queries)
        });
        let end_to_end_qps = best_rate(rows.len(), repeats, || {
            engine.predict_raw_batch(&pipeline.encoder, &pipeline.model, &rows)
        });
        let baseline = *baseline_rate.get_or_insert(end_to_end_qps);
        if idx > 0 {
            entries.push_str(",\n");
        }
        let _ = write!(
            entries,
            "    {{\"threads\": {t}, \"encode_qps\": {encode_qps:.1}, \
             \"score_qps\": {score_qps:.1}, \"end_to_end_qps\": {end_to_end_qps:.1}, \
             \"speedup\": {:.3}}}",
            end_to_end_qps / baseline
        );
    }

    Ok(format!(
        "{{\n  \"dataset\": \"{name}\", \"dim\": {dim}, \"queries\": {queries}, \
         \"shard_size\": {shard}, \"repeats\": {repeats}, \"seed\": {seed},\n  \
         \"encode_fast\": {},\n  \"bit_exact\": true,\n  \"sweep\": [\n{entries}\n  ]\n}}",
        pipeline.encoder.fast_path()
    ))
}

const TRAINBENCH_HELP: &str = "\
robusthd trainbench — measure training throughput by phase (samples/sec)

Synthesizes a dataset in-process, encodes its training split, then times
the bit-sliced training engine at each requested thread count, reporting
three figures per point:

    bundle_qps       samples bundled/sec (one-shot carry-save bundling)
    retrain_qps      sample-updates/sec across the retraining epochs
    fit_seconds      full fit wall-clock (bundle + retrain)

Before timing, the fast training path is cross-checked against the
sequential scalar reference at every thread count — raw accumulator
counts included — so the reported rates always describe the bit-exact
engine. Set ROBUSTHD_TRAIN_FAST=0 to time the reference path instead.
Emits one JSON object to stdout.

OPTIONS:
    --dataset <NAME>   mnist | ucihar | isolet | face | pamap | pecan (default ucihar)
    --samples <N>      training samples per fit (default 400)
    --dim <N>          HDC dimensionality (default 4096)
    --epochs <N>       retraining epoch budget (default 2)
    --threads <LIST>   comma-separated thread counts (default 1,2,4,8)
    --shard <N>        shard size in samples (default 32)
    --repeats <N>      timed repetitions per thread count; best time wins (default 3)
    --seed <N>         pipeline seed (default 0)";

/// `robusthd trainbench` — training samples/sec sweep over thread counts.
pub fn trainbench(argv: &[String]) -> Result<String, String> {
    let args = ParsedArgs::parse(
        argv,
        &[
            "dataset", "samples", "dim", "epochs", "threads", "shard", "repeats", "seed", "help",
        ],
    )
    .map_err(|e| e.to_string())?;
    if args.flag("help") {
        return Ok(TRAINBENCH_HELP.to_owned());
    }
    let name = args.get("dataset").unwrap_or("ucihar").to_lowercase();
    let spec = match name.as_str() {
        "mnist" => DatasetSpec::mnist(),
        "ucihar" | "uci-har" | "har" => DatasetSpec::ucihar(),
        "isolet" => DatasetSpec::isolet(),
        "face" => DatasetSpec::face(),
        "pamap" => DatasetSpec::pamap(),
        "pecan" => DatasetSpec::pecan(),
        other => return Err(format!("unknown dataset `{other}`")),
    };
    let samples = args
        .get_parsed_or("samples", 400usize)
        .map_err(|e| e.to_string())?;
    if samples == 0 {
        return Err("--samples must be positive".to_owned());
    }
    let dim = args
        .get_parsed_or("dim", 4096usize)
        .map_err(|e| e.to_string())?;
    let epochs = args
        .get_parsed_or("epochs", 2usize)
        .map_err(|e| e.to_string())?;
    let shard = args
        .get_parsed_or("shard", 32usize)
        .map_err(|e| e.to_string())?;
    let repeats = args
        .get_parsed_or("repeats", 3usize)
        .map_err(|e| e.to_string())?;
    if shard == 0 || repeats == 0 {
        return Err("--shard and --repeats must be positive".to_owned());
    }
    let seed = args
        .get_parsed_or("seed", 0u64)
        .map_err(|e| e.to_string())?;
    let threads: Vec<usize> = args
        .get("threads")
        .unwrap_or("1,2,4,8")
        .split(',')
        .map(|t| {
            t.trim()
                .parse::<usize>()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| format!("--threads entry `{t}` is not a positive integer"))
        })
        .collect::<Result<_, _>>()?;
    if threads.is_empty() {
        return Err("--threads list must not be empty".to_owned());
    }

    let spec = spec.with_sizes(samples, 1);
    let data = GeneratorConfig::new(seed).generate(&spec);
    let classes = spec.classes;
    let cfg_fit = HdcConfig::builder()
        .dimension(dim)
        .retrain_epochs(epochs)
        .seed(seed)
        .build()
        .map_err(|e| e.to_string())?;
    let mut cfg_bundle = cfg_fit.clone();
    cfg_bundle.retrain_epochs = 0;
    let encoder = RecordEncoder::new(&cfg_fit, spec.features);
    let mut engine = BatchEngine::from_env();
    let batch_config = |t: usize| {
        BatchConfig::builder()
            .threads(t)
            .shard_size(shard)
            .build()
            .map_err(|e| e.to_string())
    };
    engine.set_config(batch_config(1)?);
    let rows: Vec<&[f64]> = data.train.iter().map(|s| s.features.as_slice()).collect();
    let encoded = engine.encode_batch(&encoder, &rows);
    let labels: Vec<usize> = data.train.iter().map(|s| s.label).collect();

    // Cross-check the fast path against one sequential scalar-reference
    // fit at every swept thread count — raw accumulator counts included —
    // before timing anything.
    let reference = train_accumulators(
        &encoded,
        &labels,
        classes,
        &cfg_fit,
        &TrainConfig::reference(),
        &engine,
    );
    for &t in &threads {
        engine.set_config(batch_config(t)?);
        let fast = train_accumulators(
            &encoded,
            &labels,
            classes,
            &cfg_fit,
            &TrainConfig::fast(),
            &engine,
        );
        if fast != reference {
            return Err(format!(
                "bit-exactness violated: fast-path training at {t} threads diverges \
                 from the sequential scalar reference"
            ));
        }
    }

    /// Best wall-clock seconds over `repeats` runs of `f`.
    fn best_seconds<T>(repeats: usize, mut f: impl FnMut() -> T) -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..repeats {
            let start = std::time::Instant::now();
            let _out = f();
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    }

    // Time whatever path ROBUSTHD_TRAIN_FAST selected — proven bit-exact
    // above.
    let train = TrainConfig::from_env();
    let mut entries = String::new();
    let mut baseline_rate = None;
    for (idx, &t) in threads.iter().enumerate() {
        engine.set_config(batch_config(t)?);
        let bundle_seconds = best_seconds(repeats, || {
            train_accumulators(&encoded, &labels, classes, &cfg_bundle, &train, &engine)
        });
        let fit_seconds = best_seconds(repeats, || {
            TrainedModel::from_accumulators(&train_accumulators(
                &encoded, &labels, classes, &cfg_fit, &train, &engine,
            ))
        });
        let bundle_qps = encoded.len() as f64 / bundle_seconds;
        let retrain_seconds = fit_seconds - bundle_seconds;
        let retrain_qps = if epochs == 0 || retrain_seconds <= 0.0 {
            0.0
        } else {
            (encoded.len() * epochs) as f64 / retrain_seconds
        };
        let baseline = *baseline_rate.get_or_insert(bundle_qps);
        if idx > 0 {
            entries.push_str(",\n");
        }
        let _ = write!(
            entries,
            "    {{\"threads\": {t}, \"bundle_qps\": {bundle_qps:.1}, \
             \"retrain_qps\": {retrain_qps:.1}, \"fit_seconds\": {fit_seconds:.4}, \
             \"speedup\": {:.3}}}",
            bundle_qps / baseline
        );
    }

    Ok(format!(
        "{{\n  \"dataset\": \"{name}\", \"dim\": {dim}, \"samples\": {}, \"classes\": {classes}, \
         \"epochs\": {epochs}, \"shard_size\": {shard}, \"repeats\": {repeats}, \
         \"seed\": {seed},\n  \"train_fast\": {},\n  \"bit_exact\": true,\n  \
         \"sweep\": [\n{entries}\n  ]\n}}",
        encoded.len(),
        train.fast_path
    ))
}

const KERNELBENCH_HELP: &str = "\
robusthd kernelbench — measure execution-tier kernel throughput (GiB/s)

Synthesizes a dataset in-process, trains a model, then times every kernel
family the execution tiers re-route — pairwise and masked-range Hamming
distance, class-major scoring, the carry-save majority ripple, bipolar
count extraction, threshold extraction, and the bound-pair codebook XOR —
on BOTH tiers (reference scalar and wide lane-parallel), reporting GiB/s
of operand traffic per tier and the wide/reference speedup. The tiers are
timed tier-explicitly, so the ratios are reported no matter which tier
ROBUSTHD_KERNEL_TIER installed; only the end-to-end predict_qps row runs
through the installed tier (and honours ROBUSTHD_THREADS).

Before timing, every kernel is cross-checked bit-exact across tiers —
integer counts exactly, similarity floats down to f64::to_bits — and a
divergence fails the command. Emits one JSON object to stdout.

OPTIONS:
    --dataset <NAME>   mnist | ucihar | isolet | face | pamap | pecan (default ucihar)
    --dim <N>          HDC dimensionality (default 8192)
    --queries <N>      end-to-end query batch size (default 400)
    --repeats <N>      timed repetitions per kernel per tier; best time wins (default 3)
    --seed <N>         pipeline seed (default 0)";

/// `robusthd kernelbench` — execution-tier kernel GiB/s sweep
/// (reference vs wide), bit-exactness gated.
pub fn kernelbench(argv: &[String]) -> Result<String, String> {
    use hypervector::tier::{self, KernelTier};

    let args = ParsedArgs::parse(
        argv,
        &["dataset", "dim", "queries", "repeats", "seed", "help"],
    )
    .map_err(|e| e.to_string())?;
    if args.flag("help") {
        return Ok(KERNELBENCH_HELP.to_owned());
    }
    let name = args.get("dataset").unwrap_or("ucihar").to_lowercase();
    let spec = dataset_spec(&name)?;
    let dim = args
        .get_parsed_or("dim", 8192usize)
        .map_err(|e| e.to_string())?;
    let queries_n = args
        .get_parsed_or("queries", 400usize)
        .map_err(|e| e.to_string())?;
    let repeats = args
        .get_parsed_or("repeats", 3usize)
        .map_err(|e| e.to_string())?;
    if dim == 0 || queries_n == 0 || repeats == 0 {
        return Err("--dim, --queries and --repeats must be positive".to_owned());
    }
    let seed = args
        .get_parsed_or("seed", 0u64)
        .map_err(|e| e.to_string())?;

    // Workload: a trained model plus an encoded query batch. Constructing
    // the engine first installs the process-wide kernel tier from
    // ROBUSTHD_KERNEL_TIER, so every dispatching call below runs on it.
    let engine = BatchEngine::from_env();
    let spec = spec.with_sizes(300, queries_n);
    let data = GeneratorConfig::new(seed).generate(&spec);
    let config = HdcConfig::builder()
        .dimension(dim)
        .seed(seed)
        .build()
        .map_err(|e| e.to_string())?;
    let encoder = RecordEncoder::new(&config, spec.features);
    let train_rows: Vec<&[f64]> = data.train.iter().map(|s| s.features.as_slice()).collect();
    let encoded = engine.encode_batch(&encoder, &train_rows);
    let labels: Vec<usize> = data.train.iter().map(|s| s.label).collect();
    let model = TrainedModel::train(&encoded, &labels, spec.classes, &config);
    let test_rows: Vec<&[f64]> = data.test.iter().map(|s| s.features.as_slice()).collect();
    let queries = engine.encode_batch(&encoder, &test_rows);
    let words = dim.div_ceil(64);
    let classes = model.num_classes();
    let packed = model.packed();
    const TIE_PARITY: u64 = 0x5555_5555_5555_5555;

    // ---- Bit-exactness gate: every kernel family, both tiers, before any
    // timing. A divergence fails the command instead of reporting rates.
    let reference_dist = |a: &hypervector::BinaryHypervector,
                          b: &hypervector::BinaryHypervector| {
        tier::hamming_words(KernelTier::Reference, a.bits().words(), b.bits().words())
    };
    for query in queries.iter().take(8) {
        let fused = packed.hamming_all(query);
        for c in 0..classes {
            let d = reference_dist(model.class(c), query);
            if fused[c] != d {
                return Err(format!(
                    "bit-exactness violated: hamming_all class {c} disagrees with \
                     the reference tier ({} vs {d})",
                    fused[c]
                ));
            }
            let sim = 1.0 - fused[c] as f64 / dim as f64;
            let expected = 1.0 - d as f64 / dim as f64;
            if sim.to_bits() != expected.to_bits() {
                return Err(format!(
                    "bit-exactness violated: similarity float for class {c} diverges"
                ));
            }
        }
    }
    for pair in queries.windows(2).take(8) {
        let (aw, bw) = (pair[0].bits().words(), pair[1].bits().words());
        let d_ref = tier::hamming_words(KernelTier::Reference, aw, bw);
        if tier::hamming_words(KernelTier::Wide, aw, bw) != d_ref {
            return Err("bit-exactness violated: wide hamming diverges from reference".to_owned());
        }
        let mut total = 0usize;
        for i in 0..8usize {
            let (s, e) = (i * dim / 8, (i + 1) * dim / 8);
            let r = tier::hamming_range_words(KernelTier::Reference, aw, bw, s, e);
            if tier::hamming_range_words(KernelTier::Wide, aw, bw, s, e) != r {
                return Err(format!(
                    "bit-exactness violated: wide range kernel diverges on chunk {i}"
                ));
            }
            total += r;
        }
        if total != d_ref {
            return Err("bit-exactness violated: range kernel does not sum to hamming".to_owned());
        }
        let mut x_ref = vec![0u64; words];
        let mut x_wide = vec![0u64; words];
        tier::xor_words_into(KernelTier::Reference, &mut x_ref, aw, bw);
        tier::xor_words_into(KernelTier::Wide, &mut x_wide, aw, bw);
        if x_ref != x_wide {
            return Err("bit-exactness violated: wide codebook xor diverges".to_owned());
        }
    }
    let bundle_pool: Vec<_> = queries.iter().take(16).collect();
    let mut planes_ref = vec![vec![0u64; words]; 8];
    let mut planes_wide = vec![vec![0u64; words]; 8];
    for hv in &bundle_pool {
        tier::ripple_add(KernelTier::Reference, &mut planes_ref, hv.bits().words());
        tier::ripple_add(KernelTier::Wide, &mut planes_wide, hv.bits().words());
    }
    if planes_ref != planes_wide {
        return Err("bit-exactness violated: wide majority ripple diverges".to_owned());
    }
    let added = bundle_pool.len() as i64;
    let mut counts_ref = vec![0i64; dim];
    let mut counts_wide = vec![0i64; dim];
    tier::bipolar_accumulate(KernelTier::Reference, &planes_ref, added, &mut counts_ref);
    tier::bipolar_accumulate(KernelTier::Wide, &planes_ref, added, &mut counts_wide);
    if counts_ref != counts_wide {
        return Err("bit-exactness violated: wide bipolar extraction diverges".to_owned());
    }
    let half = bundle_pool.len() as u64 / 2;
    let mut thr_ref = vec![0u64; words];
    let mut thr_wide = vec![0u64; words];
    tier::threshold_words(
        KernelTier::Reference,
        &planes_ref,
        half,
        TIE_PARITY,
        &mut thr_ref,
    );
    tier::threshold_words(
        KernelTier::Wide,
        &planes_ref,
        half,
        TIE_PARITY,
        &mut thr_wide,
    );
    if thr_ref != thr_wide {
        return Err("bit-exactness violated: wide threshold extraction diverges".to_owned());
    }
    // End-to-end gate: batched predictions through the installed tier must
    // equal the reference tier's per-query argmin (first-wins ties).
    let batched = engine.predict_batch(&model, &queries);
    for (q, (query, &got)) in queries.iter().zip(&batched).enumerate() {
        let mut best = usize::MAX;
        let mut best_class = 0usize;
        for c in 0..classes {
            let d = reference_dist(model.class(c), query);
            if d < best {
                best = d;
                best_class = c;
            }
        }
        if got != best_class {
            return Err(format!(
                "bit-exactness violated: batched prediction diverges from the \
                 reference tier at query {q}"
            ));
        }
    }

    /// Best wall-clock seconds over `repeats` runs of `f`.
    fn best_seconds<T>(repeats: usize, mut f: impl FnMut() -> T) -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..repeats {
            let start = std::time::Instant::now();
            let _out = f();
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    }

    // ---- Timed rows: both tiers, tier-explicitly, ~64 MiB of operand
    // traffic per pass so each repeat is milliseconds.
    const TARGET_BYTES: usize = 64 * 1024 * 1024;
    let mut entries = String::new();
    let mut row = |kernel: &str, bytes: usize, pass: &mut dyn FnMut(KernelTier) -> u64| {
        let gib = bytes as f64 / (1024.0 * 1024.0 * 1024.0);
        let ref_s = best_seconds(repeats, || {
            std::hint::black_box(pass(KernelTier::Reference))
        });
        let wide_s = best_seconds(repeats, || std::hint::black_box(pass(KernelTier::Wide)));
        let reference_gib_s = gib / ref_s;
        let wide_gib_s = gib / wide_s;
        let speedup = wide_gib_s / reference_gib_s;
        // Parity-by-design marker: chunked_hamming's sub-64-word chunk
        // spans route to the scalar loop inside the wide kernel, so tier
        // parity (speedup ~1) is the intended outcome, not a regression.
        let parity_expected = kernel == "chunked_hamming";
        if !entries.is_empty() {
            entries.push_str(",\n");
        }
        let _ = write!(
            entries,
            "    {{\"kernel\": \"{kernel}\", \"bytes\": {bytes}, \
             \"reference_gib_s\": {reference_gib_s:.2}, \"wide_gib_s\": {wide_gib_s:.2}, \
             \"speedup\": {speedup:.3}, \"parity_expected\": {parity_expected}}}"
        );
        speedup
    };

    let pair_bytes = 2 * words * 8;
    let npairs = queries.len().saturating_sub(1).max(1);
    let sweeps = (TARGET_BYTES / (pair_bytes * npairs)).max(1);
    row("hamming", sweeps * npairs * pair_bytes, &mut |t| {
        let mut acc = 0u64;
        for _ in 0..sweeps {
            for pair in queries.windows(2) {
                acc = acc.wrapping_add(tier::hamming_words(
                    t,
                    pair[0].bits().words(),
                    pair[1].bits().words(),
                ) as u64);
            }
        }
        acc
    });
    row("chunked_hamming", sweeps * npairs * pair_bytes, &mut |t| {
        let mut acc = 0u64;
        for _ in 0..sweeps {
            for pair in queries.windows(2) {
                for i in 0..8usize {
                    let (s, e) = (i * dim / 8, (i + 1) * dim / 8);
                    acc = acc.wrapping_add(tier::hamming_range_words(
                        t,
                        pair[0].bits().words(),
                        pair[1].bits().words(),
                        s,
                        e,
                    ) as u64);
                }
            }
        }
        acc
    });
    let score_bytes = (classes + 1) * words * 8;
    let score_sweeps = (TARGET_BYTES / (score_bytes * queries.len())).max(1);
    let mut scratch = Vec::with_capacity(classes);
    let scoring_speedup = row(
        "hamming_all",
        score_sweeps * queries.len() * score_bytes,
        &mut |t| {
            let mut acc = 0u64;
            for _ in 0..score_sweeps {
                for query in &queries {
                    tier::hamming_all_into_words(
                        t,
                        packed.words(),
                        packed.words_per_class(),
                        classes,
                        query.bits().words(),
                        &mut scratch,
                    );
                    acc = acc.wrapping_add(scratch[0] as u64);
                }
            }
            acc
        },
    );
    let bundle_bytes = bundle_pool.len() * words * 8;
    let bundle_sweeps = (TARGET_BYTES / (4 * bundle_bytes)).max(1);
    row("majority_ripple", bundle_sweeps * bundle_bytes, &mut |t| {
        let mut acc = 0u64;
        for _ in 0..bundle_sweeps {
            let mut planes = vec![vec![0u64; words]; 8];
            for hv in &bundle_pool {
                tier::ripple_add(t, &mut planes, hv.bits().words());
            }
            acc = acc.wrapping_add(planes[0][0]);
        }
        acc
    });
    let plane_bytes = planes_ref.len() * words * 8;
    let bip_sweeps = (TARGET_BYTES / (8 * plane_bytes)).max(1);
    let mut counts = vec![0i64; dim];
    row("bipolar_counts", bip_sweeps * plane_bytes, &mut |t| {
        let mut acc = 0u64;
        for _ in 0..bip_sweeps {
            tier::bipolar_accumulate(t, &planes_ref, added, &mut counts);
            acc = acc.wrapping_add(counts[0].unsigned_abs());
        }
        acc
    });
    let thr_sweeps = (TARGET_BYTES / plane_bytes).max(1);
    let mut thr = vec![0u64; words];
    row("threshold", thr_sweeps * plane_bytes, &mut |t| {
        let mut acc = 0u64;
        for _ in 0..thr_sweeps {
            tier::threshold_words(t, &planes_ref, half, TIE_PARITY, &mut thr);
            acc = acc.wrapping_add(thr[0]);
        }
        acc
    });
    let xor_bytes = 3 * words * 8;
    let xor_sweeps = (TARGET_BYTES / (xor_bytes * npairs)).max(1);
    let mut bound = vec![0u64; words];
    row("codebook_xor", xor_sweeps * npairs * xor_bytes, &mut |t| {
        let mut acc = 0u64;
        for _ in 0..xor_sweeps {
            for pair in queries.windows(2) {
                tier::xor_words_into(
                    t,
                    &mut bound,
                    pair[0].bits().words(),
                    pair[1].bits().words(),
                );
                acc = acc.wrapping_add(bound[0]);
            }
        }
        acc
    });

    let predict_seconds = best_seconds(repeats, || engine.predict_batch(&model, &queries));
    let predict_qps = queries.len() as f64 / predict_seconds;

    Ok(format!(
        "{{\n  \"dataset\": \"{name}\", \"dim\": {dim}, \"classes\": {classes}, \
         \"queries\": {}, \"repeats\": {repeats}, \"seed\": {seed},\n  \
         \"kernel_tier\": \"{}\", \"threads\": {},\n  \"bit_exact\": true,\n  \
         \"kernels\": [\n{entries}\n  ],\n  \"scoring_speedup\": {scoring_speedup:.3},\n  \
         \"predict_qps\": {predict_qps:.1}\n}}",
        queries.len(),
        tier::active().name(),
        engine.config().threads
    ))
}

/// Resolves a dataset name to its synthetic spec (shared by the serving
/// subcommands; `throughput`/`trainbench` predate it and inline the same
/// match).
fn dataset_spec(name: &str) -> Result<DatasetSpec, String> {
    match name {
        "mnist" => Ok(DatasetSpec::mnist()),
        "ucihar" | "uci-har" | "har" => Ok(DatasetSpec::ucihar()),
        "isolet" => Ok(DatasetSpec::isolet()),
        "face" => Ok(DatasetSpec::face()),
        "pamap" => Ok(DatasetSpec::pamap()),
        "pecan" => Ok(DatasetSpec::pecan()),
        other => Err(format!("unknown dataset `{other}`")),
    }
}

/// The daemon tuning shared by `serve` and `servebench`: each knob starts
/// from its `ROBUSTHD_SERVE_*` environment value (via
/// [`robusthd::ServeConfig::from_env`]) and may be overridden on the
/// command line.
fn serve_config_from(args: &ParsedArgs) -> Result<robusthd::ServeConfig, String> {
    let env = robusthd::ServeConfig::from_env();
    let window_us = args
        .get_parsed_or("window-us", env.window_us)
        .map_err(|e| e.to_string())?;
    let max_batch = args
        .get_parsed_or("max-batch", env.max_batch)
        .map_err(|e| e.to_string())?;
    let queue_depth = args
        .get_parsed_or("queue-depth", env.queue_depth)
        .map_err(|e| e.to_string())?;
    robusthd::ServeConfig::builder()
        .window_us(window_us)
        .max_batch(max_batch)
        .queue_depth(queue_depth)
        .build()
        .map_err(|e| e.to_string())
}

/// Renders the daemon's counter snapshot as the serve/loadgen report body.
fn stats_lines(stats: &robusthd_serve::StatsSnapshot) -> String {
    let mean_batch = if stats.batches == 0 {
        0.0
    } else {
        stats.coalesced as f64 / stats.batches as f64
    };
    format!(
        "connections {}, results {}, overloaded {}, errors {}\n\
         batches {}, mean batch {:.2}, max batch {}, final level {}, quarantined {}",
        stats.connections,
        stats.results,
        stats.overloaded,
        stats.errors,
        stats.batches,
        mean_batch,
        stats.max_batch,
        stats.level,
        stats.quarantined,
    )
}

const SERVE_HELP: &str = "\
robusthd serve — run robusthdd, the network serving daemon

Trains a pipeline from CSV, calibrates the resilience supervisor on the
traffic file (its rows become the retained canaries), then listens for
newline-delimited JSON requests. Concurrent classify requests coalesce
into micro-batches that drain through the fused batch engine under the
supervisor — bit-exact with in-process serving. The daemon announces its
address on stderr, blocks until a client sends {\"type\":\"shutdown\"},
drains gracefully (every accepted query is answered), and prints the
final counters.

Protocol (one JSON object per line, unknown fields ignored):
    {\"type\":\"classify\",\"id\":1,\"features\":[...]}  -> result | overloaded
    {\"type\":\"stats\"} | {\"type\":\"health\"} | {\"type\":\"ping\"} | {\"type\":\"shutdown\"}

OPTIONS:
    --train <PATH>        training CSV (required)
    --traffic <PATH>      calibration/canary CSV (required)
    --addr <ADDR>         listen address (default 127.0.0.1:7878)
    --dim <N>             HDC dimensionality (default 4096)
    --seed <N>            pipeline seed (default 0)
    --window-us <N>       coalescing window, µs (default ROBUSTHD_SERVE_WINDOW_US or 1000)
    --max-batch <N>       micro-batch ceiling (default ROBUSTHD_SERVE_MAX_BATCH or 64)
    --queue-depth <N>     admission queue bound (default ROBUSTHD_SERVE_QUEUE_DEPTH or 1024)
    --monitor-window <N>  supervisor verdict window in queries (default 64)
    --checkpoint <N>      checkpoint every N healthy batches (default 16)
    --threads <N>         batch-engine worker threads (default ROBUSTHD_THREADS)
    --shard <N>           batch-engine shard size (default 32)";

/// `robusthd serve` — run the serving daemon until a protocol shutdown.
pub fn serve(argv: &[String]) -> Result<String, String> {
    let args = ParsedArgs::parse(
        argv,
        &[
            "train",
            "traffic",
            "addr",
            "dim",
            "seed",
            "window-us",
            "max-batch",
            "queue-depth",
            "monitor-window",
            "checkpoint",
            "threads",
            "shard",
            "help",
        ],
    )
    .map_err(|e| e.to_string())?;
    if args.flag("help") {
        return Ok(SERVE_HELP.to_owned());
    }
    let train = load_samples(args.require("train").map_err(|e| e.to_string())?)?;
    let traffic = load_samples(args.require("traffic").map_err(|e| e.to_string())?)?;
    let addr = args.get("addr").unwrap_or("127.0.0.1:7878").to_owned();
    let dim = args
        .get_parsed_or("dim", 4096usize)
        .map_err(|e| e.to_string())?;
    let seed = args
        .get_parsed_or("seed", 0u64)
        .map_err(|e| e.to_string())?;
    let monitor_window = args
        .get_parsed_or("monitor-window", 64usize)
        .map_err(|e| e.to_string())?;
    let checkpoint = args
        .get_parsed_or("checkpoint", 16usize)
        .map_err(|e| e.to_string())?;
    let config = serve_config_from(&args)?;

    let pipeline = train_pipeline(&train, &traffic, dim, seed)?;
    let features = train[0].features.len();
    let engine = build_serve_engine(
        &pipeline,
        features,
        seed,
        monitor_window,
        checkpoint,
        batch_config_from(&args)?,
    )?;

    let handle = robusthd_serve::serve(addr.as_str(), config, engine)
        .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    // The banner goes to stderr while the daemon runs; the returned report
    // (stdout) only exists once the drain completes.
    eprintln!(
        "robusthdd listening on {} ({} features, {} classes, dim {}, window {}us, \
         max batch {}, queue {})",
        handle.addr(),
        features,
        pipeline.model.num_classes(),
        dim,
        config.window_us,
        config.max_batch,
        config.queue_depth,
    );
    let (engine, stats) = handle.wait();
    let level = engine.map_or_else(
        || "unknown (drain thread panicked)".to_owned(),
        |e| e.level().to_string(),
    );
    Ok(format!(
        "robusthdd drained: clean accuracy {:.2}%, final level {level}\n{}",
        pipeline.clean_accuracy * 100.0,
        stats_lines(&stats)
    ))
}

/// Optional `--threads`/`--shard` overrides on top of the environment's
/// batch-engine tuning.
fn batch_config_from(args: &ParsedArgs) -> Result<Option<BatchConfig>, String> {
    if args.get("threads").is_none() && args.get("shard").is_none() {
        return Ok(None);
    }
    let env = BatchConfig::from_env();
    let threads = args
        .get_parsed_or("threads", env.threads)
        .map_err(|e| e.to_string())?;
    let shard = args
        .get_parsed_or("shard", env.shard_size)
        .map_err(|e| e.to_string())?;
    BatchConfig::builder()
        .threads(threads)
        .shard_size(shard)
        .build()
        .map(Some)
        .map_err(|e| e.to_string())
}

/// Builds one calibrated [`robusthd_serve::ServeEngine`] deployment from a
/// trained pipeline: fresh supervisor, recovery policy at the soak
/// defaults, canaries = the pipeline's (traffic) queries.
fn build_serve_engine(
    pipeline: &TrainedPipeline,
    features: usize,
    seed: u64,
    monitor_window: usize,
    checkpoint: usize,
    batch: Option<BatchConfig>,
) -> Result<robusthd_serve::ServeEngine, String> {
    let base = RecoveryConfig::builder()
        .confidence_threshold(0.45)
        .substitution_rate(0.5)
        .substitution(SubstitutionMode::MajorityCounter { saturation: 3 })
        .seed(seed ^ 0x5EE4)
        .build()
        .map_err(|e| e.to_string())?;
    let policy = SupervisorConfig::builder()
        .window(monitor_window)
        .checkpoint_interval(checkpoint)
        .build()
        .map_err(|e| e.to_string())?;
    let mut supervisor = ResilienceSupervisor::new(&pipeline.config, base, policy, features);
    let model = pipeline.model.clone();
    supervisor.calibrate(&model, &pipeline.queries);
    let mut engine = robusthd_serve::ServeEngine::new(pipeline.encoder.clone(), model, supervisor);
    if let Some(batch) = batch {
        engine.set_batch_config(batch);
    }
    Ok(engine)
}

const LOADGEN_HELP: &str = "\
robusthd loadgen — drive concurrent classify load at a running robusthdd

Connects --clients concurrent NDJSON connections to the daemon, each
sending --requests classify requests (cycling through the traffic CSV's
feature rows) with up to --pipeline in flight, and reports latency
percentiles and throughput. overloaded responses are tallied, not fatal.

OPTIONS:
    --addr <ADDR>      daemon address (required)
    --traffic <PATH>   CSV whose feature rows become query payloads (required)
    --clients <N>      concurrent connections (default 8)
    --requests <N>     classify requests per connection (default 64)
    --pipeline <N>     max requests in flight per connection (default 4)
    --json             emit one JSON object instead of text";

/// `robusthd loadgen` — pipelined load against a running daemon.
pub fn loadgen(argv: &[String]) -> Result<String, String> {
    let args = ParsedArgs::parse(
        argv,
        &[
            "addr", "traffic", "clients", "requests", "pipeline", "json", "help",
        ],
    )
    .map_err(|e| e.to_string())?;
    if args.flag("help") {
        return Ok(LOADGEN_HELP.to_owned());
    }
    let addr_raw = args.require("addr").map_err(|e| e.to_string())?;
    let addr = std::net::ToSocketAddrs::to_socket_addrs(addr_raw)
        .map_err(|e| format!("cannot resolve {addr_raw}: {e}"))?
        .next()
        .ok_or_else(|| format!("{addr_raw} resolves to no address"))?;
    let traffic = load_samples(args.require("traffic").map_err(|e| e.to_string())?)?;
    let clients = args
        .get_parsed_or("clients", 8usize)
        .map_err(|e| e.to_string())?;
    let requests = args
        .get_parsed_or("requests", 64usize)
        .map_err(|e| e.to_string())?;
    let pipeline = args
        .get_parsed_or("pipeline", 4usize)
        .map_err(|e| e.to_string())?;
    if clients == 0 || requests == 0 || pipeline == 0 {
        return Err("--clients, --requests, and --pipeline must be positive".to_owned());
    }
    let rows: Vec<Vec<f64>> = traffic.iter().map(|s| s.features.clone()).collect();
    let report = robusthd_serve::run_loadgen(
        addr,
        &rows,
        robusthd_serve::LoadOptions {
            clients,
            requests_per_client: requests,
            pipeline,
        },
    )
    .map_err(|e| format!("loadgen against {addr}: {e}"))?;
    if args.flag("json") {
        return Ok(format!(
            "{{\"clients\": {clients}, \"requests_per_client\": {requests}, \
             \"pipeline\": {pipeline}, \"sent\": {}, \"results\": {}, \
             \"overloaded\": {}, \"errors\": {}, \"elapsed_s\": {:.4}, \
             \"qps\": {:.1}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \
             \"p99_ms\": {:.3}, \"mean_ms\": {:.3}, \"max_ms\": {:.3}}}",
            report.sent,
            report.results,
            report.overloaded,
            report.errors,
            report.elapsed_s,
            report.qps,
            report.p50_ms,
            report.p95_ms,
            report.p99_ms,
            report.mean_ms,
            report.max_ms,
        ));
    }
    Ok(format!(
        "{} clients x {} requests (pipeline {}): {} results, {} overloaded, {} errors\n\
         {:.1} q/s over {:.2}s; latency p50 {:.2}ms p95 {:.2}ms p99 {:.2}ms mean {:.2}ms max {:.2}ms",
        clients,
        requests,
        pipeline,
        report.results,
        report.overloaded,
        report.errors,
        report.qps,
        report.elapsed_s,
        report.p50_ms,
        report.p95_ms,
        report.p99_ms,
        report.mean_ms,
        report.max_ms,
    ))
}

const SERVEBENCH_HELP: &str = "\
robusthd servebench — coalesced vs sequential serving benchmark (JSON)

Synthesizes a dataset in-process, trains a pipeline, then runs three
phases against fresh identically-calibrated daemons on loopback:

    1. bit-exactness  every row served over the wire must match the
                      reference engine label-for-label and confidence
                      bit-for-bit (f64::to_bits through the JSON roundtrip)
    2. sequential     one lockstep client, concurrency*requests queries:
                      every query pays the canary probe and checkpoint
                      cadence alone
    3. coalesced      --concurrency pipelined clients; the coalescer
                      amortises that per-batch overhead

Emits one JSON object (the BENCH_serve.json body); `speedup` is
coalesced qps over sequential qps.

OPTIONS:
    --dataset <NAME>      mnist | ucihar | isolet | face | pamap | pecan (default ucihar)
    --queries <N>         distinct benchmark rows (default 256)
    --dim <N>             HDC dimensionality (default 2048)
    --seed <N>            pipeline seed (default 0)
    --concurrency <N>     clients in the coalesced phase (default 32)
    --requests <N>        requests per client in the coalesced phase (default 32)
    --pipeline <N>        max in flight per client (default 4)
    --window-us <N>       coalescing window, µs (default ROBUSTHD_SERVE_WINDOW_US or 1000)
    --max-batch <N>       micro-batch ceiling (default ROBUSTHD_SERVE_MAX_BATCH or 64)
    --queue-depth <N>     admission queue bound (default ROBUSTHD_SERVE_QUEUE_DEPTH or 1024)
    --monitor-window <N>  supervisor verdict window (default 64)
    --checkpoint <N>      checkpoint every N healthy batches (default 16)
    --canaries <N>        retained canary queries (default 128)
    --threads <N>         batch-engine worker threads (default ROBUSTHD_THREADS)
    --shard <N>           batch-engine shard size (default 32)";

/// `robusthd servebench` — the three-phase serving benchmark.
pub fn servebench(argv: &[String]) -> Result<String, String> {
    let args = ParsedArgs::parse(
        argv,
        &[
            "dataset",
            "queries",
            "dim",
            "seed",
            "concurrency",
            "requests",
            "pipeline",
            "window-us",
            "max-batch",
            "queue-depth",
            "monitor-window",
            "checkpoint",
            "canaries",
            "threads",
            "shard",
            "help",
        ],
    )
    .map_err(|e| e.to_string())?;
    if args.flag("help") {
        return Ok(SERVEBENCH_HELP.to_owned());
    }
    let name = args.get("dataset").unwrap_or("ucihar").to_lowercase();
    let spec = dataset_spec(&name)?;
    let queries = args
        .get_parsed_or("queries", 256usize)
        .map_err(|e| e.to_string())?;
    let dim = args
        .get_parsed_or("dim", 2048usize)
        .map_err(|e| e.to_string())?;
    let seed = args
        .get_parsed_or("seed", 0u64)
        .map_err(|e| e.to_string())?;
    let concurrency = args
        .get_parsed_or("concurrency", 32usize)
        .map_err(|e| e.to_string())?;
    let requests = args
        .get_parsed_or("requests", 32usize)
        .map_err(|e| e.to_string())?;
    let pipeline_depth = args
        .get_parsed_or("pipeline", 4usize)
        .map_err(|e| e.to_string())?;
    let monitor_window = args
        .get_parsed_or("monitor-window", 64usize)
        .map_err(|e| e.to_string())?;
    let checkpoint = args
        .get_parsed_or("checkpoint", 16usize)
        .map_err(|e| e.to_string())?;
    let canaries = args
        .get_parsed_or("canaries", 128usize)
        .map_err(|e| e.to_string())?;
    if queries == 0 || concurrency == 0 || requests == 0 || pipeline_depth == 0 || canaries == 0 {
        return Err(
            "--queries, --concurrency, --requests, --pipeline, and --canaries must be positive"
                .to_owned(),
        );
    }
    let config = serve_config_from(&args)?;
    let batch = batch_config_from(&args)?;

    // The canaries ride along as extra test rows so the benchmark rows
    // themselves are never also calibration data.
    let spec = spec.with_sizes(400, queries + canaries);
    let data = GeneratorConfig::new(seed).generate(&spec);
    let pipeline = train_pipeline(&data.train, &data.test, dim, seed)?;
    let features = data.train[0].features.len();
    let canary_queries: Vec<hypervector::BinaryHypervector> = pipeline.queries[queries..].to_vec();
    let rows: Vec<Vec<f64>> = data.test[..queries]
        .iter()
        .map(|s| s.features.clone())
        .collect();

    let threads_label = batch.clone().unwrap_or_else(BatchConfig::from_env).threads;
    let mk_engine = || -> robusthd_serve::ServeEngine {
        let calibration = TrainedPipeline {
            model: pipeline.model.clone(),
            encoder: pipeline.encoder.clone(),
            queries: canary_queries.clone(),
            labels: Vec::new(),
            config: pipeline.config.clone(),
            clean_accuracy: pipeline.clean_accuracy,
        };
        build_serve_engine(
            &calibration,
            features,
            seed,
            monitor_window,
            checkpoint,
            batch.clone(),
        )
        .expect("engine construction is deterministic and already validated")
    };

    let outcome = robusthd_serve::run_servebench(
        &mk_engine,
        &rows,
        &robusthd_serve::BenchOptions {
            dataset: name,
            concurrency,
            requests_per_client: requests,
            pipeline: pipeline_depth,
            config,
            threads: threads_label,
        },
    )
    .map_err(|e| e.to_string())?;
    Ok(outcome.to_json())
}

const FLEETBENCH_HELP: &str = "\
robusthd fleetbench — multi-tenant fleet serving benchmark (JSON)

Builds a synthetic fleet of per-tenant models in-process and runs four
phases against a memory-budgeted model registry:

    1. bit-exactness  a mixed-tenant stream under eviction churn must
                      match per-tenant solo serving label-for-label and
                      confidence bit-for-bit (f64::to_bits)
    2. capacity       a robusthdd fleet daemon serves Zipf-mixed classify
                      traffic over every model id inside the budget
    3. loghd          accuracy of the full models vs their LogHD
                      class-axis compression (C -> ceil(log2 C))
    4. routing        grouped cross-model batches vs one query at a time

Emits one JSON object (the BENCH_fleet.json body).

OPTIONS:
    --models <N>          tenants to register (default 120)
    --cohorts <N>         encoder cohorts sharing codebooks (default 8)
    --dim <N>             HDC dimensionality (default 2048)
    --features <N>        features per query (default 16)
    --classes <N>         classes per tenant model (default 6)
    --rows <N>            rows per class per tenant (default 8)
    --budget-models <N>   memory budget in resident models (default 16)
    --seed <N>            workload seed (default 0)
    --clients <N>         wire-phase clients (default 16)
    --requests <N>        requests per wire client (default 64)
    --pipeline <N>        max in flight per client (default 4)
    --zipf <S>            tenant-mix Zipf exponent (default 1.0)
    --window-us <N>       coalescing window, µs (default ROBUSTHD_SERVE_WINDOW_US or 1000)
    --max-batch <N>       micro-batch ceiling (default ROBUSTHD_SERVE_MAX_BATCH or 64)
    --queue-depth <N>     admission queue bound (default ROBUSTHD_SERVE_QUEUE_DEPTH or 1024)
    --threads <N>         batch-engine worker threads (default ROBUSTHD_THREADS)
    --shard <N>           batch-engine shard size (default 32)";

/// `robusthd fleetbench` — the four-phase fleet serving benchmark.
pub fn fleetbench(argv: &[String]) -> Result<String, String> {
    let args = ParsedArgs::parse(
        argv,
        &[
            "models",
            "cohorts",
            "dim",
            "features",
            "classes",
            "rows",
            "budget-models",
            "seed",
            "clients",
            "requests",
            "pipeline",
            "zipf",
            "window-us",
            "max-batch",
            "queue-depth",
            "threads",
            "shard",
            "help",
        ],
    )
    .map_err(|e| e.to_string())?;
    if args.flag("help") {
        return Ok(FLEETBENCH_HELP.to_owned());
    }
    let defaults = robusthd_serve::FleetBenchOptions::default();
    let opts = robusthd_serve::FleetBenchOptions {
        models: args
            .get_parsed_or("models", defaults.models)
            .map_err(|e| e.to_string())?,
        cohorts: args
            .get_parsed_or("cohorts", defaults.cohorts)
            .map_err(|e| e.to_string())?,
        dim: args
            .get_parsed_or("dim", defaults.dim)
            .map_err(|e| e.to_string())?,
        features: args
            .get_parsed_or("features", defaults.features)
            .map_err(|e| e.to_string())?,
        classes: args
            .get_parsed_or("classes", defaults.classes)
            .map_err(|e| e.to_string())?,
        rows_per_class: args
            .get_parsed_or("rows", defaults.rows_per_class)
            .map_err(|e| e.to_string())?,
        budget_models: args
            .get_parsed_or("budget-models", defaults.budget_models)
            .map_err(|e| e.to_string())?,
        seed: args
            .get_parsed_or("seed", defaults.seed)
            .map_err(|e| e.to_string())?,
        config: serve_config_from(&args)?,
        batch: batch_config_from(&args)?.unwrap_or_else(BatchConfig::from_env),
        clients: args
            .get_parsed_or("clients", defaults.clients)
            .map_err(|e| e.to_string())?,
        requests_per_client: args
            .get_parsed_or("requests", defaults.requests_per_client)
            .map_err(|e| e.to_string())?,
        pipeline: args
            .get_parsed_or("pipeline", defaults.pipeline)
            .map_err(|e| e.to_string())?,
        zipf_exponent: args
            .get_parsed_or("zipf", defaults.zipf_exponent)
            .map_err(|e| e.to_string())?,
    };
    if opts.models == 0
        || opts.dim == 0
        || opts.features == 0
        || opts.classes == 0
        || opts.rows_per_class == 0
        || opts.budget_models == 0
        || opts.clients == 0
        || opts.requests_per_client == 0
        || opts.pipeline == 0
    {
        return Err("fleetbench counts must all be positive".to_owned());
    }
    let outcome = robusthd_serve::run_fleetbench(&opts).map_err(|e| e.to_string())?;
    Ok(outcome.to_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    fn temp_dir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("robusthd-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn generate_then_evaluate_roundtrip() {
        let dir = temp_dir();
        let train = dir.join("train.csv");
        let test = dir.join("test.csv");
        let report = generate(&argv(&[
            "--dataset",
            "pecan",
            "--train",
            train.to_str().expect("utf8"),
            "--test",
            test.to_str().expect("utf8"),
            "--train-size",
            "150",
            "--test-size",
            "60",
            "--seed",
            "5",
        ]))
        .expect("generate succeeds");
        assert!(report.contains("150 samples"));

        let report = evaluate(&argv(&[
            "--train",
            train.to_str().expect("utf8"),
            "--test",
            test.to_str().expect("utf8"),
            "--dim",
            "2048",
        ]))
        .expect("evaluate succeeds");
        assert!(report.contains("accuracy"), "report: {report}");
    }

    #[test]
    fn flags_prints_every_registered_flag() {
        let report = flags(&argv(&[])).expect("flags succeeds");
        for flag in robusthd::FlagRegistry::flags() {
            assert!(
                report.contains(&format!("\"name\": \"{}\"", flag.name)),
                "registry flag {} missing from `robusthd flags` output: {report}",
                flag.name
            );
            assert!(
                report.contains(&format!("\"owner\": \"{}\"", flag.owner)),
                "owner {} missing: {report}",
                flag.owner
            );
        }
        assert!(report.contains("\"effective\""));
    }

    #[test]
    fn flags_help_and_option_validation() {
        let help = flags(&argv(&["--help"])).expect("help");
        assert!(help.contains("FlagRegistry"));
        assert!(flags(&argv(&["--bogus", "1"])).is_err());
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("line\nbreak\t"), "line\\nbreak\\t");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn recover_runs_end_to_end() {
        let dir = temp_dir();
        let train = dir.join("rec_train.csv");
        let test = dir.join("rec_test.csv");
        generate(&argv(&[
            "--dataset",
            "pecan",
            "--train",
            train.to_str().expect("utf8"),
            "--test",
            test.to_str().expect("utf8"),
            "--train-size",
            "150",
            "--test-size",
            "90",
        ]))
        .expect("generate succeeds");
        let report = recover(&argv(&[
            "--train",
            train.to_str().expect("utf8"),
            "--test",
            test.to_str().expect("utf8"),
            "--dim",
            "2048",
            "--rate",
            "0.08",
            "--passes",
            "6",
        ]))
        .expect("recover succeeds");
        assert!(report.contains("after recovery"), "report: {report}");
    }

    #[test]
    fn train_then_infer_roundtrip() {
        let dir = temp_dir();
        let train_csv = dir.join("ti_train.csv");
        let test_csv = dir.join("ti_test.csv");
        let model_path = dir.join("model.rhd");
        generate(&argv(&[
            "--dataset",
            "pecan",
            "--train",
            train_csv.to_str().expect("utf8"),
            "--test",
            test_csv.to_str().expect("utf8"),
            "--train-size",
            "150",
            "--test-size",
            "60",
        ]))
        .expect("generate succeeds");
        let report = train(&argv(&[
            "--train",
            train_csv.to_str().expect("utf8"),
            "--model",
            model_path.to_str().expect("utf8"),
            "--dim",
            "2048",
        ]))
        .expect("train succeeds");
        assert!(report.contains("saved to"), "report: {report}");
        let report = infer(&argv(&[
            "--model",
            model_path.to_str().expect("utf8"),
            "--input",
            test_csv.to_str().expect("utf8"),
        ]))
        .expect("infer succeeds");
        assert!(report.contains("accuracy"), "report: {report}");
    }

    #[test]
    fn monitor_reports_verdicts() {
        let dir = temp_dir();
        let train_csv = dir.join("mon_train.csv");
        let traffic_csv = dir.join("mon_traffic.csv");
        generate(&argv(&[
            "--dataset",
            "pecan",
            "--train",
            train_csv.to_str().expect("utf8"),
            "--test",
            traffic_csv.to_str().expect("utf8"),
            "--train-size",
            "150",
            "--test-size",
            "90",
        ]))
        .expect("generate succeeds");
        let report = monitor(&argv(&[
            "--train",
            train_csv.to_str().expect("utf8"),
            "--traffic",
            traffic_csv.to_str().expect("utf8"),
            "--dim",
            "2048",
            "--rate",
            "0.1",
            "--steps",
            "4",
        ]))
        .expect("monitor succeeds");
        assert!(report.contains("step 4"), "report: {report}");
        assert!(
            report.contains("healthy") || report.contains("DEGRADED"),
            "report: {report}"
        );
    }

    #[test]
    fn soak_reports_summary_and_json_trace() {
        let dir = temp_dir();
        let train_csv = dir.join("soak_train.csv");
        let traffic_csv = dir.join("soak_traffic.csv");
        generate(&argv(&[
            "--dataset",
            "pecan",
            "--train",
            train_csv.to_str().expect("utf8"),
            "--test",
            traffic_csv.to_str().expect("utf8"),
            "--train-size",
            "150",
            "--test-size",
            "90",
        ]))
        .expect("generate succeeds");
        let base = [
            "--train",
            train_csv.to_str().expect("utf8"),
            "--traffic",
            traffic_csv.to_str().expect("utf8"),
            "--dim",
            "2048",
            "--steps",
            "3",
            "--peak",
            "0.06",
        ];
        let report = soak(&argv(&base)).expect("soak succeeds");
        assert!(report.contains("step 3"), "report: {report}");
        assert!(report.contains("rollbacks"), "report: {report}");

        let mut json_args = base.to_vec();
        json_args.push("--json");
        let trace = soak(&argv(&json_args)).expect("soak --json succeeds");
        assert!(trace.starts_with('{'), "trace: {trace}");
        assert!(trace.contains("\"verdict\""), "trace: {trace}");
    }

    #[test]
    fn soak_json_trace_is_deterministic() {
        let dir = temp_dir();
        let train_csv = dir.join("det_train.csv");
        let traffic_csv = dir.join("det_traffic.csv");
        generate(&argv(&[
            "--dataset",
            "pecan",
            "--train",
            train_csv.to_str().expect("utf8"),
            "--test",
            traffic_csv.to_str().expect("utf8"),
            "--train-size",
            "150",
            "--test-size",
            "90",
        ]))
        .expect("generate succeeds");
        let soak_args = argv(&[
            "--train",
            train_csv.to_str().expect("utf8"),
            "--traffic",
            traffic_csv.to_str().expect("utf8"),
            "--dim",
            "2048",
            "--steps",
            "3",
            "--peak",
            "0.06",
            "--seed",
            "17",
            "--json",
        ]);
        let first = soak(&soak_args).expect("first soak succeeds");
        let second = soak(&soak_args).expect("second soak succeeds");
        assert_eq!(
            first, second,
            "same-seed soak traces must be byte-identical"
        );
    }

    #[test]
    fn throughput_emits_bit_exact_sweep_json() {
        let report = throughput(&argv(&[
            "--dataset",
            "pecan",
            "--queries",
            "120",
            "--dim",
            "2048",
            "--threads",
            "1,2",
            "--repeats",
            "1",
        ]))
        .expect("throughput succeeds");
        assert!(report.starts_with('{'), "report: {report}");
        assert!(report.contains("\"bit_exact\": true"), "report: {report}");
        assert!(report.contains("\"encode_fast\": "), "report: {report}");
        assert!(report.contains("\"threads\": 2"), "report: {report}");
        assert!(report.contains("encode_qps"), "report: {report}");
        assert!(report.contains("score_qps"), "report: {report}");
        assert!(report.contains("end_to_end_qps"), "report: {report}");
    }

    #[test]
    fn throughput_rejects_bad_thread_list() {
        let err = throughput(&argv(&["--threads", "1,zero"])).unwrap_err();
        assert!(err.contains("not a positive integer"), "err: {err}");
    }

    #[test]
    fn trainbench_emits_bit_exact_sweep_json() {
        let report = trainbench(&argv(&[
            "--dataset",
            "pecan",
            "--samples",
            "90",
            "--dim",
            "2048",
            "--epochs",
            "1",
            "--threads",
            "1,2",
            "--repeats",
            "1",
        ]))
        .expect("trainbench succeeds");
        assert!(report.starts_with('{'), "report: {report}");
        assert!(report.contains("\"bit_exact\": true"), "report: {report}");
        assert!(report.contains("\"train_fast\": "), "report: {report}");
        assert!(report.contains("\"threads\": 2"), "report: {report}");
        assert!(report.contains("bundle_qps"), "report: {report}");
        assert!(report.contains("retrain_qps"), "report: {report}");
        assert!(report.contains("fit_seconds"), "report: {report}");
    }

    #[test]
    fn trainbench_rejects_bad_thread_list() {
        let err = trainbench(&argv(&["--threads", "1,zero"])).unwrap_err();
        assert!(err.contains("not a positive integer"), "err: {err}");
    }

    #[test]
    fn help_flags_short_circuit() {
        for cmd in [
            generate, evaluate, attack, recover, train, infer, monitor, soak, throughput,
            trainbench,
        ] {
            let text = cmd(&argv(&["--help"])).expect("help is ok");
            assert!(text.contains("OPTIONS"));
        }
    }

    #[test]
    fn missing_files_are_reported() {
        let err = evaluate(&argv(&[
            "--train",
            "/nonexistent/t.csv",
            "--test",
            "/nonexistent/e.csv",
        ]))
        .unwrap_err();
        assert!(err.contains("cannot open"));
    }

    #[test]
    fn invalid_rate_is_rejected() {
        let dir = temp_dir();
        let train = dir.join("r_train.csv");
        let test = dir.join("r_test.csv");
        generate(&argv(&[
            "--train",
            train.to_str().expect("utf8"),
            "--test",
            test.to_str().expect("utf8"),
            "--dataset",
            "pecan",
            "--train-size",
            "30",
            "--test-size",
            "9",
        ]))
        .expect("generate succeeds");
        let err = attack(&argv(&[
            "--train",
            train.to_str().expect("utf8"),
            "--test",
            test.to_str().expect("utf8"),
            "--rate",
            "1.5",
        ]))
        .unwrap_err();
        assert!(err.contains("outside [0, 1]"));
    }

    #[test]
    fn unknown_dataset_is_rejected() {
        let err = generate(&argv(&[
            "--dataset",
            "imagenet",
            "--train",
            "/tmp/x.csv",
            "--test",
            "/tmp/y.csv",
        ]))
        .unwrap_err();
        assert!(err.contains("unknown dataset"));
    }
}
