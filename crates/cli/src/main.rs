//! The `robusthd` binary: parse `std::env::args`, dispatch, print.

#![forbid(unsafe_code)]

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match robusthd_cli::run(&argv) {
        Ok(report) => println!("{report}"),
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(1);
        }
    }
}
