//! Library half of the `robusthd` command-line tool.
//!
//! Each subcommand is a pure function from parsed options to a text report,
//! so the whole tool is unit-testable without spawning processes. The
//! binary (`src/main.rs`) only parses `std::env::args` and prints.
//!
//! Datasets move through the CSV convention of [`synthdata::csv`]: features
//! first, integer label last, optional header.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod args;
pub mod commands;

pub use args::{ArgError, ParsedArgs};

/// Top-level usage text.
pub const USAGE: &str = "\
robusthd — RobustHD (DAC 2022) pipeline on CSV datasets

USAGE:
    robusthd <COMMAND> [OPTIONS]

COMMANDS:
    generate    Write a synthetic stand-in dataset to CSV
    evaluate    Train an HDC classifier and report test accuracy
    train       Train an HDC pipeline and save it to a model file
    infer       Classify CSV samples with a saved model file
    attack      Compare HDC and an 8-bit DNN under bit-flip attack
    recover     Attack an HDC model, then repair it from unlabeled traffic
    monitor     Judge a model's health from unlabeled traffic as it corrupts
    soak        Chaos-soak the self-healing serving runtime under an attack campaign
    advsoak     Joint memory + input adversarial soak with disagreement hunting
    serve       Run robusthdd, the coalescing NDJSON serving daemon
    loadgen     Drive concurrent classify load at a running robusthdd
    servebench  Benchmark coalesced vs sequential daemon serving (JSON)
    fleetbench  Benchmark multi-tenant fleet serving under a memory budget (JSON)
    throughput  Benchmark batched inference across thread counts (JSON)
    trainbench  Benchmark bit-sliced training (bundle/retrain) across thread counts (JSON)
    kernelbench Benchmark execution-tier kernels (reference vs wide GiB/s) (JSON)
    flags       Print the ROBUSTHD_* environment-flag registry (JSON)

Run `robusthd <COMMAND> --help` for per-command options.";

/// Dispatches a full argument vector (excluding the program name) to the
/// matching subcommand, returning the report to print.
///
/// # Errors
///
/// Returns a human-readable error string for unknown commands, bad
/// arguments, unreadable files, or malformed CSV.
pub fn run(argv: &[String]) -> Result<String, String> {
    let Some((command, rest)) = argv.split_first() else {
        return Err(USAGE.to_owned());
    };
    match command.as_str() {
        "generate" => commands::generate(rest),
        "evaluate" => commands::evaluate(rest),
        "train" => commands::train(rest),
        "infer" => commands::infer(rest),
        "attack" => commands::attack(rest),
        "recover" => commands::recover(rest),
        "monitor" => commands::monitor(rest),
        "soak" => commands::soak(rest),
        "advsoak" => commands::advsoak(rest),
        "serve" => commands::serve(rest),
        "loadgen" => commands::loadgen(rest),
        "servebench" => commands::servebench(rest),
        "fleetbench" => commands::fleetbench(rest),
        "throughput" => commands::throughput(rest),
        "trainbench" => commands::trainbench(rest),
        "kernelbench" => commands::kernelbench(rest),
        "flags" => commands::flags(rest),
        "--help" | "-h" | "help" => Ok(USAGE.to_owned()),
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    }
}
