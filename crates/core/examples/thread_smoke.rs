//! Thread smoke binary for the sanitizer CI lane: drives the real
//! `BatchEngine` (scoped workers + `AtomicUsize` shard claiming) across
//! several thread counts and verifies against the sequential path, so a
//! ThreadSanitizer build has genuine cross-thread traffic to observe.
//!
//! Run under TSan with nightly:
//! `RUSTFLAGS="-Zsanitizer=thread" cargo +nightly run -Zbuild-std
//!  --target x86_64-unknown-linux-gnu -p robusthd --example thread_smoke`
//!
//! Exits nonzero (panics) on any divergence, so the lane fails on either
//! a sanitizer report or a wrong answer.

use hypervector::random::HypervectorSampler;
use hypervector::BinaryHypervector;
use robusthd::{BatchConfig, BatchEngine, TrainedModel};

const DIM: usize = 2048;
const CLASSES: usize = 6;
const QUERIES: usize = 96;

fn setup(seed: u64) -> (TrainedModel, Vec<BinaryHypervector>) {
    let mut sampler = HypervectorSampler::seed_from(seed);
    let protos: Vec<_> = (0..CLASSES).map(|_| sampler.binary(DIM)).collect();
    let queries = (0..QUERIES)
        .map(|i| sampler.flip_noise(&protos[i % CLASSES], 0.25))
        .collect();
    (TrainedModel::from_classes(protos), queries)
}

fn main() {
    let (model, queries) = setup(0xC0FFEE);
    let sequential: Vec<usize> = queries.iter().map(|q| model.predict(q)).collect();
    for threads in [1, 2, 3, 4, 8] {
        for shard_size in [1, 7, 32] {
            let mut engine = BatchEngine::from_env();
            engine.set_config(
                BatchConfig::builder()
                    .threads(threads)
                    .shard_size(shard_size)
                    .build()
                    .expect("valid tuning"),
            );
            let parallel = engine.predict_batch(&model, &queries);
            assert_eq!(
                parallel, sequential,
                "predictions diverge at threads={threads} shard_size={shard_size}"
            );
            let scores = engine.evaluate_batch(&model, &queries, 128.0);
            let scored: Vec<usize> = scores.iter().map(|s| s.predicted).collect();
            assert_eq!(
                scored, sequential,
                "evaluate_batch diverges at threads={threads} shard_size={shard_size}"
            );
            // Exercise the fold path (per-worker accumulation) too.
            let counts =
                engine.fold_shards(&queries, || 0usize, |count, shard| *count += shard.len());
            let total: usize = counts.into_iter().sum();
            assert_eq!(
                total, QUERIES,
                "fold_shards lost queries at threads={threads}"
            );
        }
    }
    println!(
        "thread_smoke: OK ({QUERIES} queries x {CLASSES} classes, threads 1-8, bit-identical)"
    );
}
