//! Accuracy and quality-loss metrics used by every experiment.

use crate::model::TrainedModel;
use hypervector::BinaryHypervector;

/// Classification accuracy of `model` over encoded queries with known
/// labels.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
///
/// # Example
///
/// ```
/// use hypervector::random::HypervectorSampler;
/// use robusthd::{accuracy, HdcConfig, TrainedModel};
///
/// # fn main() -> Result<(), robusthd::ConfigError> {
/// let mut sampler = HypervectorSampler::seed_from(0);
/// let protos = [sampler.binary(2048), sampler.binary(2048)];
/// let queries: Vec<_> = (0..20)
///     .map(|i| sampler.flip_noise(&protos[i % 2], 0.1))
///     .collect();
/// let labels: Vec<_> = (0..20).map(|i| i % 2).collect();
/// let config = HdcConfig::builder().dimension(2048).build()?;
/// let model = TrainedModel::train(&queries, &labels, 2, &config);
/// assert_eq!(accuracy(&model, &queries, &labels), 1.0);
/// # Ok(())
/// # }
/// ```
pub fn accuracy(model: &TrainedModel, queries: &[BinaryHypervector], labels: &[usize]) -> f64 {
    assert_eq!(queries.len(), labels.len(), "queries and labels must align");
    assert!(!queries.is_empty(), "cannot score an empty evaluation set");
    let correct = queries
        .iter()
        .zip(labels)
        .filter(|(q, &l)| model.predict(q) == l)
        .count();
    correct as f64 / queries.len() as f64
}

/// Quality loss as reported throughout the paper's tables: the accuracy of
/// the clean model minus the accuracy of the faulty model, floored at zero
/// (a faulty model that happens to score higher reports zero loss).
///
/// # Example
///
/// ```
/// use robusthd::quality_loss;
///
/// assert!((quality_loss(0.95, 0.92) - 0.03).abs() < 1e-12);
/// assert_eq!(quality_loss(0.95, 0.96), 0.0);
/// ```
pub fn quality_loss(clean_accuracy: f64, faulty_accuracy: f64) -> f64 {
    (clean_accuracy - faulty_accuracy).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HdcConfig;
    use hypervector::random::HypervectorSampler;

    #[test]
    fn accuracy_counts_correct_fraction() {
        let mut sampler = HypervectorSampler::seed_from(1);
        let protos = [sampler.binary(1024), sampler.binary(1024)];
        let model = TrainedModel::from_classes(protos.to_vec());
        let queries = vec![
            sampler.flip_noise(&protos[0], 0.05),
            sampler.flip_noise(&protos[1], 0.05),
        ];
        assert_eq!(accuracy(&model, &queries, &[0, 1]), 1.0);
        assert_eq!(accuracy(&model, &queries, &[1, 0]), 0.0);
        assert_eq!(accuracy(&model, &queries, &[0, 0]), 0.5);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_lengths_panic() {
        let model = TrainedModel::from_classes(vec![BinaryHypervector::zeros(8)]);
        accuracy(&model, &[BinaryHypervector::zeros(8)], &[]);
    }

    #[test]
    #[should_panic(expected = "empty evaluation set")]
    fn empty_set_panics() {
        let model = TrainedModel::from_classes(vec![BinaryHypervector::zeros(8)]);
        accuracy(&model, &[], &[]);
    }

    #[test]
    fn quality_loss_floors_at_zero() {
        assert_eq!(quality_loss(0.9, 0.95), 0.0);
        assert!((quality_loss(0.9, 0.85) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn trained_model_has_low_loss_under_mild_attack() {
        // Miniature version of the paper's core claim wired through the
        // metrics: a binary HDC model barely degrades at 5% bit flips.
        let mut sampler = HypervectorSampler::seed_from(2);
        let protos: Vec<_> = (0..4).map(|_| sampler.binary(8192)).collect();
        let mut queries = Vec::new();
        let mut labels = Vec::new();
        for i in 0..80 {
            queries.push(sampler.flip_noise(&protos[i % 4], 0.15));
            labels.push(i % 4);
        }
        let cfg = HdcConfig::builder().dimension(8192).build().expect("valid");
        let mut model = TrainedModel::train(&queries, &labels, 4, &cfg);
        let clean = accuracy(&model, &queries, &labels);
        for c in 0..4 {
            let noisy = sampler.flip_noise(model.class(c), 0.05);
            *model.class_mut(c) = noisy;
        }
        let faulty = accuracy(&model, &queries, &labels);
        assert!(quality_loss(clean, faulty) < 0.05);
    }
}

/// A `k × k` confusion matrix: `counts[truth][predicted]`.
///
/// # Example
///
/// ```
/// use robusthd::metrics::ConfusionMatrix;
///
/// let mut matrix = ConfusionMatrix::new(2);
/// matrix.record(0, 0);
/// matrix.record(0, 1);
/// matrix.record(1, 1);
/// assert_eq!(matrix.count(0, 1), 1);
/// assert!((matrix.accuracy() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix over `classes` classes.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is zero.
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0, "need at least one class");
        Self {
            classes,
            counts: vec![0; classes * classes],
        }
    }

    /// Builds the matrix by evaluating `model` over labelled queries.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or a label is out of range.
    pub fn evaluate(model: &TrainedModel, queries: &[BinaryHypervector], labels: &[usize]) -> Self {
        assert_eq!(queries.len(), labels.len(), "queries and labels must align");
        let mut matrix = Self::new(model.num_classes());
        for (query, &label) in queries.iter().zip(labels) {
            matrix.record(label, model.predict(query));
        }
        matrix
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Records one `(truth, predicted)` observation.
    ///
    /// # Panics
    ///
    /// Panics if either label is out of range.
    pub fn record(&mut self, truth: usize, predicted: usize) {
        assert!(truth < self.classes, "truth label {truth} out of range");
        assert!(
            predicted < self.classes,
            "predicted label {predicted} out of range"
        );
        self.counts[truth * self.classes + predicted] += 1; // audit:allow(panic): labels asserted in range above
    }

    /// Observations with the given truth and prediction.
    ///
    /// # Panics
    ///
    /// Panics if either label is out of range.
    pub fn count(&self, truth: usize, predicted: usize) -> u64 {
        assert!(
            truth < self.classes && predicted < self.classes,
            "label out of range"
        );
        self.counts[truth * self.classes + predicted] // audit:allow(panic): labels asserted in range above
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy (0 when empty).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.classes).map(|c| self.count(c, c)).sum();
        correct as f64 / total as f64
    }

    /// Recall of one class: correct / actual (0 when the class never
    /// occurred).
    ///
    /// # Panics
    ///
    /// Panics if the class is out of range.
    pub fn recall(&self, class: usize) -> f64 {
        assert!(class < self.classes, "class out of range");
        let actual: u64 = (0..self.classes).map(|p| self.count(class, p)).sum();
        if actual == 0 {
            0.0
        } else {
            self.count(class, class) as f64 / actual as f64
        }
    }

    /// Precision of one class: correct / predicted (0 when the class was
    /// never predicted).
    ///
    /// # Panics
    ///
    /// Panics if the class is out of range.
    pub fn precision(&self, class: usize) -> f64 {
        assert!(class < self.classes, "class out of range");
        let predicted: u64 = (0..self.classes).map(|t| self.count(t, class)).sum();
        if predicted == 0 {
            0.0
        } else {
            self.count(class, class) as f64 / predicted as f64
        }
    }

    /// F1 score of one class (harmonic mean of precision and recall).
    ///
    /// # Panics
    ///
    /// Panics if the class is out of range.
    pub fn f1(&self, class: usize) -> f64 {
        let p = self.precision(class);
        let r = self.recall(class);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Unweighted mean F1 over all classes.
    pub fn macro_f1(&self) -> f64 {
        (0..self.classes).map(|c| self.f1(c)).sum::<f64>() / self.classes as f64
    }
}

#[cfg(test)]
mod confusion_tests {
    use super::*;

    fn toy_matrix() -> ConfusionMatrix {
        // truth 0: 8 correct, 2 predicted as 1.
        // truth 1: 5 correct, 5 predicted as 0.
        let mut m = ConfusionMatrix::new(2);
        for _ in 0..8 {
            m.record(0, 0);
        }
        for _ in 0..2 {
            m.record(0, 1);
        }
        for _ in 0..5 {
            m.record(1, 1);
        }
        for _ in 0..5 {
            m.record(1, 0);
        }
        m
    }

    #[test]
    fn accuracy_and_totals() {
        let m = toy_matrix();
        assert_eq!(m.total(), 20);
        assert!((m.accuracy() - 13.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn recall_precision_f1() {
        let m = toy_matrix();
        assert!((m.recall(0) - 0.8).abs() < 1e-12);
        assert!((m.recall(1) - 0.5).abs() < 1e-12);
        assert!((m.precision(0) - 8.0 / 13.0).abs() < 1e-12);
        assert!((m.precision(1) - 5.0 / 7.0).abs() < 1e-12);
        let f1_0 = 2.0 * (8.0 / 13.0) * 0.8 / (8.0 / 13.0 + 0.8);
        assert!((m.f1(0) - f1_0).abs() < 1e-12);
        assert!(m.macro_f1() > 0.0 && m.macro_f1() < 1.0);
    }

    #[test]
    fn degenerate_classes_score_zero() {
        let m = ConfusionMatrix::new(3); // empty
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.recall(2), 0.0);
        assert_eq!(m.precision(2), 0.0);
        assert_eq!(m.f1(2), 0.0);
    }

    #[test]
    fn evaluate_agrees_with_accuracy_metric() {
        use crate::config::HdcConfig;
        use hypervector::random::HypervectorSampler;
        let mut sampler = HypervectorSampler::seed_from(12);
        let protos = [sampler.binary(2048), sampler.binary(2048)];
        let queries: Vec<_> = (0..40)
            .map(|i| sampler.flip_noise(&protos[i % 2], 0.2))
            .collect();
        let labels: Vec<_> = (0..40).map(|i| i % 2).collect();
        let cfg = HdcConfig::builder().dimension(2048).build().expect("valid");
        let model = TrainedModel::train(&queries, &labels, 2, &cfg);
        let matrix = ConfusionMatrix::evaluate(&model, &queries, &labels);
        assert!((matrix.accuracy() - accuracy(&model, &queries, &labels)).abs() < 1e-12);
        assert_eq!(matrix.total(), 40);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_record_panics() {
        ConfusionMatrix::new(2).record(2, 0);
    }
}
