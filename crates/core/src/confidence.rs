//! Prediction confidence (§4.1 of the paper).
//!
//! RobustHD passes the per-class Hamming similarities through a sharpened
//! softmax. The resulting top probability reflects both how similar the
//! query is to the winning class *and* its margin over the runner-up — a
//! query equally close to two classes gets low confidence even if both
//! similarities are high. Only predictions whose confidence clears the
//! threshold `T_C` are trusted as pseudo-labels for recovery.

use crate::model::TrainedModel;
use hypervector::similarity::softmax_with_temperature;
use hypervector::BinaryHypervector;
use serde::{Deserialize, Serialize};

/// The confidence assessment of one prediction.
///
/// # Example
///
/// ```
/// use robusthd::Confidence;
///
/// // A clear winner vs an ambiguous pair, at inverse temperature 64.
/// let clear = Confidence::from_similarities(&[0.75, 0.52, 0.50], 64.0);
/// let ambiguous = Confidence::from_similarities(&[0.62, 0.61, 0.50], 64.0);
/// assert_eq!(clear.label, 0);
/// assert!(clear.confidence > ambiguous.confidence);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Confidence {
    /// Predicted label (argmax similarity).
    pub label: usize,
    /// Softmax probability of the predicted label — the confidence value
    /// compared against `T_C`.
    pub confidence: f64,
    /// Margin between the top similarity and the runner-up similarity (raw,
    /// pre-softmax). Zero for single-class models.
    pub margin: f64,
    /// Full softmax distribution over classes.
    pub probabilities: Vec<f64>,
}

impl Confidence {
    /// Computes prediction confidence from raw per-class similarities.
    ///
    /// # Panics
    ///
    /// Panics if `similarities` is empty or `beta` is not positive and
    /// finite.
    pub fn from_similarities(similarities: &[f64], beta: f64) -> Self {
        assert!(!similarities.is_empty(), "need at least one class");
        assert!(
            beta.is_finite() && beta > 0.0,
            "softmax beta {beta} must be positive and finite"
        );
        let probabilities = softmax_with_temperature(similarities, beta);
        let label = probabilities
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("nonempty"); // audit:allow(panic): similarities asserted non-empty at entry
        let mut sorted = similarities.to_vec();
        sorted.sort_by(|a, b| b.total_cmp(a));
        let margin = if sorted.len() >= 2 {
            sorted[0] - sorted[1] // audit:allow(panic): guarded by the len >= 2 branch
        } else {
            0.0
        };
        Self {
            label,
            confidence: probabilities[label], // audit:allow(panic): label indexes the same-length probabilities
            margin,
            probabilities,
        }
    }

    /// Evaluates a query against a model and scores the prediction.
    ///
    /// # Panics
    ///
    /// Panics if the query dimension differs from the model's or `beta` is
    /// invalid.
    pub fn evaluate(model: &TrainedModel, query: &BinaryHypervector, beta: f64) -> Self {
        Self::from_similarities(&model.similarities(query), beta)
    }

    /// Whether this prediction clears the trust threshold `T_C`.
    pub fn is_trusted(&self, threshold: f64) -> bool {
        self.confidence >= threshold
    }

    /// The runner-up label: the class with the second-highest softmax
    /// probability, or `None` for single-class models.
    ///
    /// The margin-guided attack search uses this as the natural flip
    /// target — the rival the query is already closest to — so the search
    /// needs only blackbox probabilities, never model internals.
    pub fn runner_up(&self) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, &p) in self.probabilities.iter().enumerate() {
            if i == self.label {
                continue;
            }
            match best {
                Some((_, bp)) if p <= bp => {}
                _ => best = Some((i, p)),
            }
        }
        best.map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HdcConfig;
    use crate::model::TrainedModel;
    use hypervector::random::HypervectorSampler;

    #[test]
    fn probabilities_sum_to_one() {
        let c = Confidence::from_similarities(&[0.6, 0.5, 0.55, 0.52], 64.0);
        let sum: f64 = c.probabilities.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn label_is_argmax_similarity() {
        let c = Confidence::from_similarities(&[0.50, 0.71, 0.60], 64.0);
        assert_eq!(c.label, 1);
        assert!((c.margin - 0.11).abs() < 1e-12);
    }

    #[test]
    fn larger_margin_gives_higher_confidence() {
        let wide = Confidence::from_similarities(&[0.8, 0.5], 64.0);
        let narrow = Confidence::from_similarities(&[0.8, 0.78], 64.0);
        assert!(wide.confidence > narrow.confidence);
    }

    #[test]
    fn single_class_has_full_confidence_and_zero_margin() {
        let c = Confidence::from_similarities(&[0.9], 64.0);
        assert_eq!(c.label, 0);
        assert!((c.confidence - 1.0).abs() < 1e-12);
        assert_eq!(c.margin, 0.0);
    }

    #[test]
    fn trust_threshold_is_inclusive() {
        let c = Confidence::from_similarities(&[0.9], 64.0);
        assert!(c.is_trusted(1.0));
        assert!(!c.is_trusted(1.0 + 1e-9));
    }

    #[test]
    fn runner_up_is_second_best_class() {
        let c = Confidence::from_similarities(&[0.50, 0.71, 0.60], 64.0);
        assert_eq!(c.label, 1);
        assert_eq!(c.runner_up(), Some(2));
        let single = Confidence::from_similarities(&[0.9], 64.0);
        assert_eq!(single.runner_up(), None);
        let pair = Confidence::from_similarities(&[0.55, 0.72], 64.0);
        assert_eq!(pair.runner_up(), Some(0));
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn empty_similarities_panic() {
        Confidence::from_similarities(&[], 64.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_beta_panics() {
        Confidence::from_similarities(&[0.5], 0.0);
    }

    #[test]
    fn evaluate_agrees_with_model_predict() {
        let mut sampler = HypervectorSampler::seed_from(10);
        let protos = [sampler.binary(2048), sampler.binary(2048)];
        let mut encoded = Vec::new();
        let mut labels = Vec::new();
        for i in 0..30 {
            encoded.push(sampler.flip_noise(&protos[i % 2], 0.2));
            labels.push(i % 2);
        }
        let cfg = HdcConfig::builder().dimension(2048).build().expect("valid");
        let model = TrainedModel::train(&encoded, &labels, 2, &cfg);
        for hv in encoded.iter().take(10) {
            let c = Confidence::evaluate(&model, hv, cfg.softmax_beta);
            assert_eq!(c.label, model.predict(hv));
        }
    }

    #[test]
    fn in_cluster_queries_are_more_confident_than_random() {
        let mut sampler = HypervectorSampler::seed_from(11);
        let protos = [sampler.binary(4096), sampler.binary(4096)];
        let mut encoded = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            encoded.push(sampler.flip_noise(&protos[i % 2], 0.15));
            labels.push(i % 2);
        }
        let cfg = HdcConfig::builder().dimension(4096).build().expect("valid");
        let model = TrainedModel::train(&encoded, &labels, 2, &cfg);
        let member = Confidence::evaluate(&model, &encoded[0], cfg.softmax_beta);
        let stranger = Confidence::evaluate(&model, &sampler.binary(4096), cfg.softmax_beta);
        assert!(member.confidence > stranger.confidence);
    }
}
