use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Error returned when an [`HdcConfig`] or [`RecoveryConfig`] builder is
/// given an invalid parameter combination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.message)
    }
}

impl Error for ConfigError {}

/// How substitution writes trusted-query bits into a faulty chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SubstitutionMode {
    /// The paper's §4.3 operator: the class bit is *overwritten* by the
    /// query bit. Arithmetic-free, but the repaired bits inherit the
    /// query's disagreement with the clean class, so the repair floor
    /// equals the trusted-query error rate — effective against
    /// concentrated corruption (dead rows, bursts), neutral against
    /// diffuse corruption at or below that floor.
    Overwrite,
    /// Reproduction extension (documented in DESIGN.md): a small saturating
    /// counter per dimension accumulates the trusted queries' votes and the
    /// class bit follows the counter's sign — an unsupervised re-bundling
    /// of the faulty dimensions from inference traffic. Repairs diffuse
    /// corruption to near-zero residual error because the majority of
    /// several trusted queries is far more accurate than any single one.
    MajorityCounter {
        /// Counter saturation magnitude (e.g. 3 for a 3-bit up/down
        /// counter).
        saturation: u8,
    },
}

/// Hyperparameters of the HDC learning pipeline.
///
/// Construct through [`HdcConfig::builder`]; defaults follow the paper
/// (`D = 10_000`, binary model, a small number of retraining epochs).
///
/// # Example
///
/// ```
/// use robusthd::HdcConfig;
///
/// let config = HdcConfig::builder()
///     .dimension(4_096)
///     .levels(32)
///     .retrain_epochs(3)
///     .seed(11)
///     .build()?;
/// assert_eq!(config.dimension, 4_096);
/// # Ok::<(), robusthd::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HdcConfig {
    /// Hypervector dimensionality `D` (the paper uses 4k–10k).
    pub dimension: usize,
    /// Number of quantization levels for scalar features.
    pub levels: usize,
    /// Correlation length of the level codebook, in levels: values within
    /// this many levels stay similar in hyperspace, values further apart
    /// are near-orthogonal. Small values decorrelate classes more.
    pub level_correlation: usize,
    /// Retraining passes after the initial one-shot bundling.
    pub retrain_epochs: usize,
    /// Seed controlling base/level hypervector generation and retraining
    /// order.
    pub seed: u64,
    /// Inverse temperature of the confidence softmax (larger sharpens; see
    /// [`crate::confidence`]).
    pub softmax_beta: f64,
}

impl HdcConfig {
    /// Starts a builder pre-loaded with the paper's defaults.
    pub fn builder() -> HdcConfigBuilder {
        HdcConfigBuilder::new()
    }
}

impl Default for HdcConfig {
    fn default() -> Self {
        Self::builder().build().expect("defaults are valid") // audit:allow(panic): builder defaults are statically valid
    }
}

/// Builder for [`HdcConfig`].
#[derive(Debug, Clone)]
pub struct HdcConfigBuilder {
    dimension: usize,
    levels: usize,
    level_correlation: usize,
    retrain_epochs: usize,
    seed: u64,
    softmax_beta: f64,
}

impl HdcConfigBuilder {
    fn new() -> Self {
        Self {
            dimension: 10_000,
            levels: 64,
            level_correlation: 4,
            retrain_epochs: 0,
            seed: 0,
            softmax_beta: 128.0,
        }
    }

    /// Sets hypervector dimensionality `D`.
    pub fn dimension(mut self, dimension: usize) -> Self {
        self.dimension = dimension;
        self
    }

    /// Sets the number of feature quantization levels.
    pub fn levels(mut self, levels: usize) -> Self {
        self.levels = levels;
        self
    }

    /// Sets the level-codebook correlation length (in levels).
    pub fn level_correlation(mut self, level_correlation: usize) -> Self {
        self.level_correlation = level_correlation;
        self
    }

    /// Sets the number of retraining epochs.
    pub fn retrain_epochs(mut self, retrain_epochs: usize) -> Self {
        self.retrain_epochs = retrain_epochs;
        self
    }

    /// Sets the generation seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the softmax inverse temperature used for confidence.
    pub fn softmax_beta(mut self, softmax_beta: f64) -> Self {
        self.softmax_beta = softmax_beta;
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the dimension or level count is zero, or
    /// the softmax temperature is not positive and finite.
    pub fn build(self) -> Result<HdcConfig, ConfigError> {
        if self.dimension == 0 {
            return Err(ConfigError::new("dimension must be positive"));
        }
        if self.levels == 0 {
            return Err(ConfigError::new("levels must be positive"));
        }
        if self.level_correlation == 0 {
            return Err(ConfigError::new("level_correlation must be positive"));
        }
        if !(self.softmax_beta.is_finite() && self.softmax_beta > 0.0) {
            return Err(ConfigError::new("softmax_beta must be positive and finite"));
        }
        Ok(HdcConfig {
            dimension: self.dimension,
            levels: self.levels,
            level_correlation: self.level_correlation,
            retrain_epochs: self.retrain_epochs,
            seed: self.seed,
            softmax_beta: self.softmax_beta,
        })
    }
}

/// Hyperparameters of the adaptive recovery framework (§4 of the paper).
///
/// # Example
///
/// ```
/// use robusthd::RecoveryConfig;
///
/// let config = RecoveryConfig::builder()
///     .chunks(20)
///     .confidence_threshold(0.6)
///     .substitution_rate(0.3)
///     .build()?;
/// assert_eq!(config.chunks, 20);
/// # Ok::<(), robusthd::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryConfig {
    /// Number of chunks `m` the hypervectors are split into (`d = D / m`
    /// dimensions per chunk).
    pub chunks: usize,
    /// Confidence threshold `T_C`: only predictions whose softmax confidence
    /// exceeds this are trusted as pseudo-labels.
    pub confidence_threshold: f64,
    /// Substitution rate `S`: probability that a class-vector bit inside a
    /// faulty chunk is replaced by the query bit.
    pub substitution_rate: f64,
    /// How substitution writes query bits into faulty chunks.
    pub substitution: SubstitutionMode,
    /// Statistical margin (in units of `sqrt(d)` for chunk size `d`)
    /// a competing class must win by before a chunk is flagged faulty.
    /// Hamming distances over a chunk fluctuate with standard deviation
    /// `O(sqrt(d))`; requiring a deficit beyond that keeps the false-positive
    /// rate low so healthy chunks are not churned by substitution.
    pub fault_margin: f64,
    /// When `true` (paper behaviour) substitution is restricted to chunks
    /// that voted against the trusted prediction; when `false` the whole
    /// class vector is eligible (the `pQ|(1-p)C` form of §4.3, used by the
    /// chunking ablation).
    pub faulty_chunks_only: bool,
    /// Seed for the stochastic substitution.
    pub seed: u64,
}

impl RecoveryConfig {
    /// Starts a builder pre-loaded with defaults matching the paper's
    /// operating point.
    pub fn builder() -> RecoveryConfigBuilder {
        RecoveryConfigBuilder::new()
    }
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        Self::builder().build().expect("defaults are valid") // audit:allow(panic): builder defaults are statically valid
    }
}

/// Builder for [`RecoveryConfig`].
#[derive(Debug, Clone)]
pub struct RecoveryConfigBuilder {
    chunks: usize,
    confidence_threshold: f64,
    substitution_rate: f64,
    substitution: SubstitutionMode,
    fault_margin: f64,
    faulty_chunks_only: bool,
    seed: u64,
}

impl RecoveryConfigBuilder {
    fn new() -> Self {
        Self {
            chunks: 20,
            confidence_threshold: 0.85,
            substitution_rate: 0.25,
            substitution: SubstitutionMode::Overwrite,
            fault_margin: 1.0,
            faulty_chunks_only: true,
            seed: 0,
        }
    }

    /// Sets the chunk count `m`.
    pub fn chunks(mut self, chunks: usize) -> Self {
        self.chunks = chunks;
        self
    }

    /// Sets the confidence threshold `T_C`.
    pub fn confidence_threshold(mut self, confidence_threshold: f64) -> Self {
        self.confidence_threshold = confidence_threshold;
        self
    }

    /// Sets the substitution rate `S`.
    pub fn substitution_rate(mut self, substitution_rate: f64) -> Self {
        self.substitution_rate = substitution_rate;
        self
    }

    /// Sets the statistical fault-detection margin (in units of `sqrt(d)`).
    pub fn fault_margin(mut self, fault_margin: f64) -> Self {
        self.fault_margin = fault_margin;
        self
    }

    /// Chooses the substitution operator (paper-literal overwrite, or the
    /// majority-counter extension).
    pub fn substitution(mut self, substitution: SubstitutionMode) -> Self {
        self.substitution = substitution;
        self
    }

    /// Chooses between per-chunk substitution (paper behaviour, `true`) and
    /// whole-vector substitution (`false`).
    pub fn faulty_chunks_only(mut self, faulty_chunks_only: bool) -> Self {
        self.faulty_chunks_only = faulty_chunks_only;
        self
    }

    /// Sets the substitution RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `chunks` is zero, or either rate parameter
    /// lies outside `[0, 1]`.
    pub fn build(self) -> Result<RecoveryConfig, ConfigError> {
        if self.chunks == 0 {
            return Err(ConfigError::new("chunks must be positive"));
        }
        if !(0.0..=1.0).contains(&self.confidence_threshold) {
            return Err(ConfigError::new("confidence_threshold must lie in [0, 1]"));
        }
        if !(0.0..=1.0).contains(&self.substitution_rate) {
            return Err(ConfigError::new("substitution_rate must lie in [0, 1]"));
        }
        if !(self.fault_margin.is_finite() && self.fault_margin >= 0.0) {
            return Err(ConfigError::new(
                "fault_margin must be non-negative and finite",
            ));
        }
        if let SubstitutionMode::MajorityCounter { saturation } = self.substitution {
            if saturation == 0 {
                return Err(ConfigError::new("counter saturation must be positive"));
            }
        }
        Ok(RecoveryConfig {
            chunks: self.chunks,
            confidence_threshold: self.confidence_threshold,
            substitution_rate: self.substitution_rate,
            substitution: self.substitution,
            fault_margin: self.fault_margin,
            faulty_chunks_only: self.faulty_chunks_only,
            seed: self.seed,
        })
    }
}

/// One rung of the resilience supervisor's escalation ladder: the recovery
/// operating point used while the model is degraded at that escalation
/// level.
///
/// Escalating raises the repair aggressiveness — more substitution, finer
/// chunking, more passes — and, at the deepest rungs, *temporarily* lowers
/// the trust threshold `T_C` so a heavily damaged class that produces no
/// high-confidence traffic can still attract repair. The supervisor bounds
/// how far `T_C` may fall via [`SupervisorConfig::threshold_floor`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EscalationLevel {
    /// Substitution rate `S` at this level.
    pub substitution_rate: f64,
    /// Chunk count `m` at this level.
    pub chunks: usize,
    /// Trust threshold `T_C` at this level (never below the configured
    /// floor).
    pub confidence_threshold: f64,
    /// Recovery passes over the degraded batch at this level — the bounded
    /// backoff: deeper levels retry harder, but never unboundedly.
    pub rounds: usize,
}

impl EscalationLevel {
    /// Builds the default four-rung ladder from a base recovery
    /// configuration: the base operating point, then raised `S` and doubled
    /// `m`, then a half-way `T_C` cut, then `T_C` at `floor`.
    pub fn default_ladder(base: &RecoveryConfig, floor: f64) -> Vec<EscalationLevel> {
        let t = base.confidence_threshold.max(floor);
        vec![
            EscalationLevel {
                substitution_rate: base.substitution_rate,
                chunks: base.chunks,
                confidence_threshold: t,
                rounds: 1,
            },
            EscalationLevel {
                substitution_rate: (base.substitution_rate * 1.5).min(1.0),
                chunks: base.chunks * 2,
                confidence_threshold: t,
                rounds: 2,
            },
            EscalationLevel {
                substitution_rate: (base.substitution_rate * 2.0).min(1.0),
                chunks: base.chunks * 2,
                confidence_threshold: floor + (t - floor) / 2.0,
                rounds: 3,
            },
            EscalationLevel {
                substitution_rate: (base.substitution_rate * 2.0).min(1.0),
                chunks: base.chunks * 2,
                confidence_threshold: floor,
                rounds: 4,
            },
        ]
    }
}

/// Policy of the closed-loop resilience supervisor
/// ([`crate::supervisor::ResilienceSupervisor`]).
///
/// # Example
///
/// ```
/// use robusthd::SupervisorConfig;
///
/// let config = SupervisorConfig::builder()
///     .window(48)
///     .rollback_after(2)
///     .build()?;
/// assert_eq!(config.window, 48);
/// # Ok::<(), robusthd::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SupervisorConfig {
    /// Sliding-window size of the health monitor.
    pub window: usize,
    /// Monitor alarm sensitivity (see [`crate::diagnostics::HealthMonitor`]).
    pub sensitivity: f64,
    /// Escalation ladder, mildest first. Empty means: derive
    /// [`EscalationLevel::default_ladder`] from the base recovery config at
    /// supervisor construction.
    pub ladder: Vec<EscalationLevel>,
    /// Hard floor under every temporary `T_C` cut in the ladder.
    pub threshold_floor: f64,
    /// Healthy batches between checkpoints.
    pub checkpoint_interval: usize,
    /// Consecutive failed recovery rounds before rolling back to the last
    /// healthy checkpoint.
    pub rollback_after: usize,
    /// Consecutive healthy batches required before de-escalating one level
    /// (hysteresis keeps the ladder from flapping at the alarm boundary).
    pub hysteresis: usize,
    /// Per-class chunk-fault rate above which the class hypervector is
    /// quarantined (its predictions reported unreliable).
    pub quarantine_fault_ceiling: f64,
    /// Minimum chunks inspected for a class before its quarantine state may
    /// change — below this, the fault-rate estimate is too noisy to act on.
    pub quarantine_min_chunks: usize,
    /// Minimum fraction of canary queries whose current prediction must
    /// match the answer recorded at calibration for the model to count as
    /// healthy. Margin statistics alone cannot tell a healthy model from
    /// one whose classes were rewritten into a confident label permutation
    /// (for example by a repair loop feeding on misrouted traffic); golden
    /// answers can.
    pub canary_agreement_floor: f64,
}

impl SupervisorConfig {
    /// Starts a builder pre-loaded with defaults.
    pub fn builder() -> SupervisorConfigBuilder {
        SupervisorConfigBuilder::new()
    }
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self::builder().build().expect("defaults are valid") // audit:allow(panic): builder defaults are statically valid
    }
}

/// Builder for [`SupervisorConfig`].
#[derive(Debug, Clone)]
pub struct SupervisorConfigBuilder {
    window: usize,
    sensitivity: f64,
    ladder: Vec<EscalationLevel>,
    threshold_floor: f64,
    checkpoint_interval: usize,
    rollback_after: usize,
    hysteresis: usize,
    quarantine_fault_ceiling: f64,
    quarantine_min_chunks: usize,
    canary_agreement_floor: f64,
}

impl SupervisorConfigBuilder {
    fn new() -> Self {
        Self {
            window: 64,
            sensitivity: 0.7,
            ladder: Vec::new(),
            threshold_floor: 0.4,
            checkpoint_interval: 1,
            rollback_after: 3,
            hysteresis: 2,
            quarantine_fault_ceiling: 0.5,
            quarantine_min_chunks: 40,
            canary_agreement_floor: 0.75,
        }
    }

    /// Sets the health-monitor window.
    pub fn window(mut self, window: usize) -> Self {
        self.window = window;
        self
    }

    /// Sets the monitor alarm sensitivity.
    pub fn sensitivity(mut self, sensitivity: f64) -> Self {
        self.sensitivity = sensitivity;
        self
    }

    /// Sets an explicit escalation ladder (mildest level first).
    pub fn ladder(mut self, ladder: Vec<EscalationLevel>) -> Self {
        self.ladder = ladder;
        self
    }

    /// Sets the `T_C` floor.
    pub fn threshold_floor(mut self, threshold_floor: f64) -> Self {
        self.threshold_floor = threshold_floor;
        self
    }

    /// Sets the healthy-batch checkpoint interval.
    pub fn checkpoint_interval(mut self, checkpoint_interval: usize) -> Self {
        self.checkpoint_interval = checkpoint_interval;
        self
    }

    /// Sets the failed-round count that triggers rollback.
    pub fn rollback_after(mut self, rollback_after: usize) -> Self {
        self.rollback_after = rollback_after;
        self
    }

    /// Sets the de-escalation hysteresis (in healthy batches).
    pub fn hysteresis(mut self, hysteresis: usize) -> Self {
        self.hysteresis = hysteresis;
        self
    }

    /// Sets the quarantine chunk-fault-rate ceiling.
    pub fn quarantine_fault_ceiling(mut self, ceiling: f64) -> Self {
        self.quarantine_fault_ceiling = ceiling;
        self
    }

    /// Sets the minimum inspected chunks before quarantine decisions.
    pub fn quarantine_min_chunks(mut self, min_chunks: usize) -> Self {
        self.quarantine_min_chunks = min_chunks;
        self
    }

    /// Sets the canary golden-answer agreement floor.
    pub fn canary_agreement_floor(mut self, floor: f64) -> Self {
        self.canary_agreement_floor = floor;
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any count is zero, a rate or threshold
    /// lies outside `[0, 1]`, or a ladder level's `T_C` undercuts the floor.
    pub fn build(self) -> Result<SupervisorConfig, ConfigError> {
        if self.window == 0 {
            return Err(ConfigError::new("window must be positive"));
        }
        if !(self.sensitivity > 0.0 && self.sensitivity <= 1.0) {
            return Err(ConfigError::new("sensitivity must lie in (0, 1]"));
        }
        if !(0.0..=1.0).contains(&self.threshold_floor) {
            return Err(ConfigError::new("threshold_floor must lie in [0, 1]"));
        }
        if self.checkpoint_interval == 0 {
            return Err(ConfigError::new("checkpoint_interval must be positive"));
        }
        if self.rollback_after == 0 {
            return Err(ConfigError::new("rollback_after must be positive"));
        }
        if self.hysteresis == 0 {
            return Err(ConfigError::new("hysteresis must be positive"));
        }
        if !(self.quarantine_fault_ceiling > 0.0 && self.quarantine_fault_ceiling <= 1.0) {
            return Err(ConfigError::new(
                "quarantine_fault_ceiling must lie in (0, 1]",
            ));
        }
        if self.quarantine_min_chunks == 0 {
            return Err(ConfigError::new("quarantine_min_chunks must be positive"));
        }
        if !(self.canary_agreement_floor > 0.0 && self.canary_agreement_floor <= 1.0) {
            return Err(ConfigError::new(
                "canary_agreement_floor must lie in (0, 1]",
            ));
        }
        for (i, level) in self.ladder.iter().enumerate() {
            if level.chunks == 0 {
                return Err(ConfigError::new(format!(
                    "ladder level {i}: chunks must be positive"
                )));
            }
            if level.rounds == 0 {
                return Err(ConfigError::new(format!(
                    "ladder level {i}: rounds must be positive"
                )));
            }
            if !(0.0..=1.0).contains(&level.substitution_rate) {
                return Err(ConfigError::new(format!(
                    "ladder level {i}: substitution_rate must lie in [0, 1]"
                )));
            }
            if !(self.threshold_floor..=1.0).contains(&level.confidence_threshold) {
                return Err(ConfigError::new(format!(
                    "ladder level {i}: confidence_threshold must lie in [threshold_floor, 1]"
                )));
            }
        }
        Ok(SupervisorConfig {
            window: self.window,
            sensitivity: self.sensitivity,
            ladder: self.ladder,
            threshold_floor: self.threshold_floor,
            checkpoint_interval: self.checkpoint_interval,
            rollback_after: self.rollback_after,
            hysteresis: self.hysteresis,
            quarantine_fault_ceiling: self.quarantine_fault_ceiling,
            quarantine_min_chunks: self.quarantine_min_chunks,
            canary_agreement_floor: self.canary_agreement_floor,
        })
    }
}

/// Environment variable read by [`BatchConfig::from_env`] for the worker
/// thread count of the batched inference engine.
pub const THREADS_ENV_VAR: &str = "ROBUSTHD_THREADS";

/// Environment variable read by [`EncodeConfig::from_env`]: set to `0`,
/// `false`, `off`, or `no` (case-insensitive) to disable the bit-sliced
/// encoding fast path and fall back to the scalar
/// [`hypervector::BundleAccumulator`] reference loop.
pub const ENCODE_FAST_ENV_VAR: &str = "ROBUSTHD_ENCODE_FAST";

/// Tuning of the record-encoder execution path
/// ([`crate::encoding::RecordEncoder`]).
///
/// Like [`BatchConfig`], this is a pure throughput knob: the fast path
/// (precomputed bound-pair codebook + bit-sliced carry-save majority) is
/// bit-identical to the scalar reference path — the same hypervector comes
/// out either way, which the differential suite
/// (`crates/core/tests/encode_differential.rs`) asserts to
/// `f64::to_bits` through the full pipeline. The switch exists so the
/// differential tests (and anyone chasing a miscompare) can pin either
/// implementation explicitly.
///
/// # Example
///
/// ```
/// use robusthd::EncodeConfig;
///
/// assert!(EncodeConfig::default().fast_path);
/// assert!(!EncodeConfig::reference().fast_path);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncodeConfig {
    /// When `true` (default) encode through the bound-pair codebook and the
    /// bit-sliced majority kernel; when `false` run the scalar
    /// bind-and-count reference loop.
    pub fast_path: bool,
}

impl EncodeConfig {
    /// The fast path: bound-pair codebook + carry-save majority.
    pub fn fast() -> Self {
        Self { fast_path: true }
    }

    /// The scalar reference path (per-feature bind into a
    /// [`hypervector::BundleAccumulator`]).
    pub fn reference() -> Self {
        Self { fast_path: false }
    }

    /// The default (fast) configuration, overridden by the
    /// `ROBUSTHD_ENCODE_FAST` environment variable: `0` / `false` / `off` /
    /// `no` (case-insensitive) select the reference path, anything else —
    /// including the variable being unset — selects the fast path.
    pub fn from_env() -> Self {
        Self {
            fast_path: parse_fast_flag(std::env::var(ENCODE_FAST_ENV_VAR).ok().as_deref()),
        }
    }
}

impl Default for EncodeConfig {
    fn default() -> Self {
        Self::fast()
    }
}

/// Parses a `ROBUSTHD_ENCODE_FAST` / `ROBUSTHD_TRAIN_FAST`-style value;
/// only an explicit opt-out disables the fast path.
///
/// This is the single sanctioned decoder for fast-path opt-out flags: the
/// repo-native lints (`cargo xtask lint`) fail any `ROBUSTHD_*`
/// environment read that bypasses this module, so every flag keeps one
/// parser, one default, and one [`FlagRegistry`] entry.
pub fn parse_fast_flag(raw: Option<&str>) -> bool {
    !matches!(
        raw.map(|v| v.trim().to_ascii_lowercase()).as_deref(),
        Some("0") | Some("false") | Some("off") | Some("no")
    )
}

/// Environment variable read by [`TrainConfig::from_env`]: set to `0`,
/// `false`, `off`, or `no` (case-insensitive) to disable the bit-sliced
/// parallel training engine and fall back to the sequential scalar
/// reference trainer.
pub const TRAIN_FAST_ENV_VAR: &str = "ROBUSTHD_TRAIN_FAST";

/// Tuning of the model-training execution path
/// ([`crate::train`], used by [`crate::TrainedModel::train`] and every
/// `fit` entry point).
///
/// Like [`EncodeConfig`], this is a pure throughput knob: the fast path
/// (sharded carry-save one-shot bundling + batch-scored retraining epochs)
/// is bit-identical to the sequential scalar reference trainer — identical
/// accumulator counts, identical mistakes, identical early-exit, at any
/// thread count — which the differential suite
/// (`crates/core/tests/train_differential.rs`) asserts down to the raw
/// `i64` counters. The switch exists so the differential tests (and anyone
/// chasing a miscompare) can pin either implementation explicitly.
///
/// # Example
///
/// ```
/// use robusthd::TrainConfig;
///
/// assert!(TrainConfig::default().fast_path);
/// assert!(!TrainConfig::reference().fast_path);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// When `true` (default) train through the sharded bit-sliced bundling
    /// kernel and batch-scored retraining; when `false` run the sequential
    /// scalar reference loop.
    pub fast_path: bool,
}

impl TrainConfig {
    /// The fast path: sharded carry-save bundling + batch-scored epochs.
    pub fn fast() -> Self {
        Self { fast_path: true }
    }

    /// The sequential scalar reference path (per-sample accumulator adds,
    /// per-sample snapshot predictions).
    pub fn reference() -> Self {
        Self { fast_path: false }
    }

    /// The default (fast) configuration, overridden by the
    /// `ROBUSTHD_TRAIN_FAST` environment variable: `0` / `false` / `off` /
    /// `no` (case-insensitive) select the reference path, anything else —
    /// including the variable being unset — selects the fast path.
    pub fn from_env() -> Self {
        Self {
            fast_path: parse_fast_flag(std::env::var(TRAIN_FAST_ENV_VAR).ok().as_deref()),
        }
    }
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self::fast()
    }
}

/// Environment variable read by [`KernelConfig::from_env`]: set to
/// `reference`, `ref`, or `scalar` (case-insensitive) to pin the
/// execution-tier kernels ([`hypervector::tier`]) to the scalar reference
/// tier; anything else — including the variable being unset — selects the
/// portable wide-lane tier.
pub const KERNEL_TIER_ENV_VAR: &str = "ROBUSTHD_KERNEL_TIER";

/// Selection of the execution-tier kernel implementation
/// ([`hypervector::tier`]): the scalar `Reference` tier or the portable
/// wide-lane `Wide` tier behind every Hamming, majority, and codebook-XOR
/// kernel.
///
/// Like [`EncodeConfig`] and [`TrainConfig`], this is a pure throughput
/// knob: both tiers compute exact integer popcounts and identical bit
/// patterns, which the differential suite
/// (`crates/core/tests/tier_differential.rs`) pins kernel by kernel — so
/// the flag can never change a prediction, a similarity, or a trained
/// model, only how fast they are produced.
///
/// The tier is installed process-wide (first install wins, see
/// [`hypervector::tier::install`]); [`crate::BatchEngine::from_env`]
/// installs it on construction so every engine-driven path respects the
/// flag without further plumbing.
///
/// # Example
///
/// ```
/// use hypervector::KernelTier;
/// use robusthd::KernelConfig;
///
/// assert_eq!(KernelConfig::default().tier, KernelTier::Wide);
/// assert_eq!(KernelConfig::reference().tier, KernelTier::Reference);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelConfig {
    /// The execution tier the kernels should dispatch to.
    pub tier: hypervector::KernelTier,
}

impl KernelConfig {
    /// The wide-lane tier (default): 8-word blocked loops with carry-save
    /// popcount compression.
    pub fn wide() -> Self {
        Self {
            tier: hypervector::KernelTier::Wide,
        }
    }

    /// The scalar reference tier: one-word-at-a-time loops, the semantic
    /// definition every other tier is pinned against.
    pub fn reference() -> Self {
        Self {
            tier: hypervector::KernelTier::Reference,
        }
    }

    /// The default (wide) configuration, overridden by the
    /// `ROBUSTHD_KERNEL_TIER` environment variable: `reference` / `ref` /
    /// `scalar` (case-insensitive) select the scalar tier, anything else —
    /// including the variable being unset — selects the wide tier.
    pub fn from_env() -> Self {
        Self {
            tier: parse_kernel_tier(std::env::var(KERNEL_TIER_ENV_VAR).ok().as_deref()),
        }
    }

    /// Installs this configuration's tier as the process-wide dispatch
    /// tier (first install wins), returning the tier actually active
    /// afterwards. Because the tiers are bit-identical, losing the race
    /// affects throughput only, never results.
    pub fn install(self) -> hypervector::KernelTier {
        hypervector::tier::install(self.tier)
    }
}

impl Default for KernelConfig {
    fn default() -> Self {
        Self::wide()
    }
}

/// Parses a `ROBUSTHD_KERNEL_TIER` value; only an explicit opt-out
/// (`reference` / `ref` / `scalar`, case-insensitive) selects the scalar
/// tier.
pub fn parse_kernel_tier(raw: Option<&str>) -> hypervector::KernelTier {
    match raw.map(|v| v.trim().to_ascii_lowercase()).as_deref() {
        Some("reference") | Some("ref") | Some("scalar") => hypervector::KernelTier::Reference,
        _ => hypervector::KernelTier::Wide,
    }
}

/// Tuning of the batched inference engine
/// ([`crate::batch::BatchEngine`]): worker thread count and shard size.
///
/// Neither knob can change any result — the engine computes the same exact
/// integer popcounts and the same float expressions as the sequential path
/// and writes per-query outputs by position — so both are pure throughput
/// parameters.
///
/// # Example
///
/// ```
/// use robusthd::BatchConfig;
///
/// let config = BatchConfig::builder().threads(4).shard_size(16).build()?;
/// assert_eq!(config.threads, 4);
/// # Ok::<(), robusthd::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchConfig {
    /// Worker threads sharing the batch. `1` runs inline on the caller's
    /// thread with no spawning at all.
    pub threads: usize,
    /// Queries per shard — the unit of work a thread claims at a time.
    /// Small shards balance better across threads; large shards amortize
    /// the (tiny) claim overhead.
    pub shard_size: usize,
}

impl BatchConfig {
    /// Starts a builder pre-loaded with defaults (threads = available
    /// hardware parallelism, shard size 32).
    pub fn builder() -> BatchConfigBuilder {
        BatchConfigBuilder::new()
    }

    /// Builds the default configuration with the thread count overridden by
    /// the `ROBUSTHD_THREADS` environment variable when it is set to a
    /// positive integer (anything else falls back to the hardware default).
    pub fn from_env() -> Self {
        let threads = parse_threads(std::env::var(THREADS_ENV_VAR).ok().as_deref())
            .unwrap_or_else(default_threads);
        Self::builder()
            .threads(threads)
            .build()
            .expect("env-derived batch config is valid") // audit:allow(panic): startup-time config build, not a serving-path failure
    }
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self::builder().build().expect("defaults are valid") // audit:allow(panic): builder defaults are statically valid
    }
}

/// Parses a `ROBUSTHD_THREADS`-style value; `None` when absent or not a
/// positive integer.
fn parse_threads(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&t| t > 0)
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Environment variable read by [`AdvConfig::from_env`]: candidate bit
/// flips scored per greedy search round of the adversarial query-space
/// attack engine (`advsim`). Must be a positive integer; anything else
/// falls back to the default.
pub const ADV_CANDIDATES_ENV_VAR: &str = "ROBUSTHD_ADV_CANDIDATES";

/// Environment variable read by [`AdvConfig::from_env`]: base seed of the
/// adversarial search (attack synthesis and disagreement hunting). Must
/// parse as a `u64`; anything else falls back to the default of 0.
pub const ADV_SEED_ENV_VAR: &str = "ROBUSTHD_ADV_SEED";

/// Tuning of the adversarial scenario engine (the `advsim` crate): the
/// candidate batch width of the greedy margin-guided search and the base
/// seed of every seeded mutation stream.
///
/// Unlike [`EncodeConfig`]/[`TrainConfig`] this is not a fast/reference
/// switch — both knobs change *which adversarial examples are found*, not
/// how a fixed computation is executed. What is pinned by the advsim
/// property suites instead: for a fixed `AdvConfig` the whole search is a
/// pure function of its inputs (bit-identical outcomes at any thread
/// count, because every candidate batch is scored through the
/// deterministic [`crate::batch::BatchEngine`]).
///
/// # Example
///
/// ```
/// use robusthd::AdvConfig;
///
/// let config = AdvConfig::default();
/// assert!(config.candidates > 0);
/// assert_eq!(config.seed, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdvConfig {
    /// Candidate bit flips scored per greedy search round (one batched
    /// engine pass per round). Wider searches find stronger attacks per
    /// round at proportional query cost.
    pub candidates: usize,
    /// Base seed for the adversarial search streams; per-query and
    /// per-step streams are derived from it deterministically.
    pub seed: u64,
}

impl AdvConfig {
    /// The default configuration overridden by the `ROBUSTHD_ADV_CANDIDATES`
    /// and `ROBUSTHD_ADV_SEED` environment variables (each falls back to
    /// its default when unset or unparsable).
    pub fn from_env() -> Self {
        let defaults = Self::default();
        Self {
            candidates: parse_threads(std::env::var(ADV_CANDIDATES_ENV_VAR).ok().as_deref())
                .unwrap_or(defaults.candidates),
            seed: std::env::var(ADV_SEED_ENV_VAR)
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
                .unwrap_or(defaults.seed),
        }
    }
}

impl Default for AdvConfig {
    fn default() -> Self {
        Self {
            candidates: 64,
            seed: 0,
        }
    }
}

/// Environment variable read by [`ServeConfig::from_env`]: coalescing
/// window of the serving daemon's request batcher, in microseconds. A
/// micro-batch drains as soon as it is full *or* this long after its first
/// query arrived, whichever comes first. `0` drains immediately (every
/// queued query still joins the drained batch). Must parse as a `u64`;
/// anything else falls back to the default.
pub const SERVE_WINDOW_ENV_VAR: &str = "ROBUSTHD_SERVE_WINDOW_US";

/// Environment variable read by [`ServeConfig::from_env`]: maximum queries
/// coalesced into one micro-batch (one fused engine pass) by the serving
/// daemon. Must be a positive integer; anything else falls back to the
/// default.
pub const SERVE_MAX_BATCH_ENV_VAR: &str = "ROBUSTHD_SERVE_MAX_BATCH";

/// Environment variable read by [`ServeConfig::from_env`]: admission-queue
/// depth of the serving daemon. A classify request arriving while this many
/// queries are already queued is refused with a structured `overloaded`
/// response instead of being buffered without bound. Must be a positive
/// integer; anything else falls back to the default.
pub const SERVE_QUEUE_DEPTH_ENV_VAR: &str = "ROBUSTHD_SERVE_QUEUE_DEPTH";

/// Environment variable read by [`FleetConfig::from_env`]: resident-memory
/// budget in bytes for the multi-tenant model registry's hot state (class
/// hypervectors plus the fused `PackedClasses` scoring arena per hydrated
/// model). When hydrating a model would exceed the budget, the registry
/// evicts least-recently-used models back to their RHD2 checkpoint bytes;
/// they rehydrate on the next query without retraining. Must be a positive
/// integer; anything else falls back to the default.
pub const FLEET_BUDGET_BYTES_ENV_VAR: &str = "ROBUSTHD_FLEET_BUDGET_BYTES";

/// Environment variable read by [`FleetConfig::from_env`]: set to
/// `1`/`true`/`on`/`yes` to opt the fleet registry into the LogHD
/// compressed model representation (O(log C) composite class vectors with
/// a decode-at-score path) for tenants served through the plain router.
/// LogHD is lossy — the fleet differential suite quantifies the accuracy
/// delta — so unlike every other fast path it is opt-in, not opt-out.
pub const FLEET_LOGHD_ENV_VAR: &str = "ROBUSTHD_FLEET_LOGHD";

/// Tuning of the multi-tenant model fleet registry ([`crate::fleet`]): the
/// resident-memory budget that bounds how many hydrated models (class
/// vectors + fused `PackedClasses` arenas) stay hot at once, and the
/// opt-in LogHD compressed representation.
///
/// The budget is a capacity knob, not a correctness knob: evicting a model
/// serializes any repairs back into its RHD2 image, and rehydrating
/// restores the exact same bits, so answers are `f64::to_bits`-identical
/// at any budget (pinned by `crates/core/tests/fleet_differential.rs`).
/// LogHD is the exception — it is lossy by construction and therefore
/// opt-in.
///
/// # Example
///
/// ```
/// use robusthd::FleetConfig;
///
/// let config = FleetConfig::builder()
///     .budget_bytes(8 * 1024 * 1024)
///     .build()?;
/// assert_eq!(config.budget_bytes, 8 * 1024 * 1024);
/// assert!(!config.loghd);
/// # Ok::<(), robusthd::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Resident-memory budget in bytes for hydrated models. A single model
    /// larger than the budget still hydrates (the fleet could not serve it
    /// otherwise) but becomes the first eviction candidate.
    pub budget_bytes: usize,
    /// Serve plain-routed queries through the LogHD compressed
    /// representation (O(log C) composite class vectors) instead of the
    /// full class set. Lossy; off by default.
    pub loghd: bool,
}

impl FleetConfig {
    /// Starts a builder pre-loaded with the defaults (64 MiB budget,
    /// LogHD off).
    pub fn builder() -> FleetConfigBuilder {
        FleetConfigBuilder::new()
    }

    /// The default configuration with each knob overridden by its
    /// environment variable (`ROBUSTHD_FLEET_BUDGET_BYTES`,
    /// `ROBUSTHD_FLEET_LOGHD`) when set to a value of the right shape;
    /// anything else falls back to the default.
    pub fn from_env() -> Self {
        let defaults = Self::default();
        let budget_bytes = parse_threads(std::env::var(FLEET_BUDGET_BYTES_ENV_VAR).ok().as_deref())
            .unwrap_or(defaults.budget_bytes);
        let loghd = parse_opt_in_flag(std::env::var(FLEET_LOGHD_ENV_VAR).ok().as_deref());
        Self::builder()
            .budget_bytes(budget_bytes)
            .loghd(loghd)
            .build()
            .expect("env-derived fleet config is valid") // audit:allow(panic): startup-time config build, not a serving-path failure
    }
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self::builder().build().expect("defaults are valid") // audit:allow(panic): builder defaults are statically valid
    }
}

/// Builder for [`FleetConfig`].
#[derive(Debug, Clone)]
pub struct FleetConfigBuilder {
    budget_bytes: usize,
    loghd: bool,
}

impl FleetConfigBuilder {
    fn new() -> Self {
        Self {
            budget_bytes: 64 * 1024 * 1024,
            loghd: false,
        }
    }

    /// Sets the resident-memory budget in bytes.
    pub fn budget_bytes(mut self, budget_bytes: usize) -> Self {
        self.budget_bytes = budget_bytes;
        self
    }

    /// Enables or disables the LogHD compressed representation.
    pub fn loghd(mut self, loghd: bool) -> Self {
        self.loghd = loghd;
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `budget_bytes` is zero.
    pub fn build(self) -> Result<FleetConfig, ConfigError> {
        if self.budget_bytes == 0 {
            return Err(ConfigError::new("budget_bytes must be positive"));
        }
        Ok(FleetConfig {
            budget_bytes: self.budget_bytes,
            loghd: self.loghd,
        })
    }
}

/// Parses an opt-in boolean flag: only `1`/`true`/`on`/`yes`
/// (case-insensitive, whitespace-trimmed) enable it; everything else —
/// including unset — stays off. The mirror image of [`parse_fast_flag`],
/// for behaviour that changes answers and therefore must be asked for.
fn parse_opt_in_flag(raw: Option<&str>) -> bool {
    match raw {
        Some(value) => matches!(
            value.trim().to_ascii_lowercase().as_str(),
            "1" | "true" | "on" | "yes"
        ),
        None => false,
    }
}

/// Tuning of the serving daemon's request coalescer (the `robusthd-serve`
/// crate): how long a micro-batch may wait for company, how large it may
/// grow, and how many queries the admission queue holds before shedding
/// load.
///
/// Like [`BatchConfig`], these are pure latency/throughput knobs — a query
/// served through a coalesced batch produces the same answer bits as the
/// same query served alone, which the serving differential suite
/// (`crates/serve/tests/serve_differential.rs`) pins to `f64::to_bits`
/// through the wire protocol. What the knobs trade is *when* answers
/// arrive: wider windows and deeper batches amortize the per-batch
/// supervisor overhead (canary probe, checkpointing) across more queries,
/// at up to one window of added queueing latency.
///
/// # Example
///
/// ```
/// use robusthd::ServeConfig;
///
/// let config = ServeConfig::builder()
///     .window_us(500)
///     .max_batch(128)
///     .queue_depth(2048)
///     .build()?;
/// assert_eq!(config.max_batch, 128);
/// # Ok::<(), robusthd::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Coalescing window in microseconds: how long the drain loop waits
    /// after a batch's first query for more to arrive. `0` drains
    /// immediately.
    pub window_us: u64,
    /// Maximum queries per coalesced micro-batch (one fused engine pass).
    pub max_batch: usize,
    /// Bounded admission-queue depth; arrivals beyond it are refused with
    /// an `overloaded` response (load shedding, never silent drops).
    pub queue_depth: usize,
}

impl ServeConfig {
    /// Starts a builder pre-loaded with the defaults (1 ms window, 64-query
    /// batches, 1024-query queue).
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder::new()
    }

    /// The default configuration with each knob overridden by its
    /// environment variable (`ROBUSTHD_SERVE_WINDOW_US`,
    /// `ROBUSTHD_SERVE_MAX_BATCH`, `ROBUSTHD_SERVE_QUEUE_DEPTH`) when set
    /// to a value of the right shape; anything else falls back to the
    /// default.
    pub fn from_env() -> Self {
        let defaults = Self::default();
        let window_us = std::env::var(SERVE_WINDOW_ENV_VAR)
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(defaults.window_us);
        let max_batch = parse_threads(std::env::var(SERVE_MAX_BATCH_ENV_VAR).ok().as_deref())
            .unwrap_or(defaults.max_batch);
        let queue_depth = parse_threads(std::env::var(SERVE_QUEUE_DEPTH_ENV_VAR).ok().as_deref())
            .unwrap_or(defaults.queue_depth);
        Self::builder()
            .window_us(window_us)
            .max_batch(max_batch)
            .queue_depth(queue_depth)
            .build()
            .expect("env-derived serve config is valid") // audit:allow(panic): startup-time config build, not a serving-path failure
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self::builder().build().expect("defaults are valid") // audit:allow(panic): builder defaults are statically valid
    }
}

/// Builder for [`ServeConfig`].
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    window_us: u64,
    max_batch: usize,
    queue_depth: usize,
}

impl ServeConfigBuilder {
    fn new() -> Self {
        Self {
            window_us: 1_000,
            max_batch: 64,
            queue_depth: 1_024,
        }
    }

    /// Sets the coalescing window in microseconds (`0` drains immediately).
    pub fn window_us(mut self, window_us: u64) -> Self {
        self.window_us = window_us;
        self
    }

    /// Sets the maximum queries per coalesced micro-batch.
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Sets the bounded admission-queue depth.
    pub fn queue_depth(mut self, queue_depth: usize) -> Self {
        self.queue_depth = queue_depth;
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `max_batch` or `queue_depth` is zero.
    pub fn build(self) -> Result<ServeConfig, ConfigError> {
        if self.max_batch == 0 {
            return Err(ConfigError::new("max_batch must be positive"));
        }
        if self.queue_depth == 0 {
            return Err(ConfigError::new("queue_depth must be positive"));
        }
        Ok(ServeConfig {
            window_us: self.window_us,
            max_batch: self.max_batch,
            queue_depth: self.queue_depth,
        })
    }
}

/// One registered `ROBUSTHD_*` environment flag: its name, owner, default,
/// the raw environment value (if set), and the value the owning config
/// actually parsed from it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlagInfo {
    /// Environment variable name (`ROBUSTHD_*`).
    pub name: &'static str,
    /// Config struct whose `from_env` reads the flag.
    pub owner: &'static str,
    /// Human-readable default when the variable is unset.
    pub default: &'static str,
    /// One-line semantics of the flag.
    pub doc: &'static str,
    /// The raw environment value, if the variable is currently set.
    pub raw: Option<String>,
    /// The effective parsed value the owning config resolves to right now.
    pub effective: String,
}

/// Central registry of every `ROBUSTHD_*` environment flag.
///
/// This is the one place a runtime flag may be born: each entry names the
/// variable, the config struct whose `from_env` consumes it, its default,
/// and its currently-effective parsed value. The repo-native lints
/// (`cargo xtask lint`) enforce that every `*_ENV_VAR` constant in this
/// module is registered here, that `README.md` documents exactly the
/// registered set, and that no other module reads a `ROBUSTHD_*` variable
/// directly — so the registry, the docs, and the `robusthd flags` CLI
/// output cannot drift apart in any direction.
///
/// # Example
///
/// ```
/// use robusthd::FlagRegistry;
///
/// let flags = FlagRegistry::flags();
/// assert!(flags.iter().any(|f| f.name == "ROBUSTHD_THREADS"));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FlagRegistry;

impl FlagRegistry {
    /// Every registered flag, with its current raw and effective values.
    pub fn flags() -> Vec<FlagInfo> {
        vec![
            FlagInfo {
                name: THREADS_ENV_VAR,
                owner: "BatchConfig",
                default: "available hardware parallelism",
                doc: "Worker thread count of the batched inference/training engine; \
                      a pure throughput knob, results are bit-identical at any value.",
                raw: std::env::var(THREADS_ENV_VAR).ok(),
                effective: BatchConfig::from_env().threads.to_string(),
            },
            FlagInfo {
                name: ENCODE_FAST_ENV_VAR,
                owner: "EncodeConfig",
                default: "fast",
                doc: "Set to 0/false/off/no to swap the bit-sliced encoding fast path \
                      for the scalar reference loop; both paths are bit-identical.",
                raw: std::env::var(ENCODE_FAST_ENV_VAR).ok(),
                effective: if EncodeConfig::from_env().fast_path {
                    "fast".to_owned()
                } else {
                    "reference".to_owned()
                },
            },
            FlagInfo {
                name: TRAIN_FAST_ENV_VAR,
                owner: "TrainConfig",
                default: "fast",
                doc: "Set to 0/false/off/no to swap the sharded bit-sliced training \
                      engine for the sequential scalar trainer; both paths are \
                      bit-identical.",
                raw: std::env::var(TRAIN_FAST_ENV_VAR).ok(),
                effective: if TrainConfig::from_env().fast_path {
                    "fast".to_owned()
                } else {
                    "reference".to_owned()
                },
            },
            FlagInfo {
                name: KERNEL_TIER_ENV_VAR,
                owner: "KernelConfig",
                default: "wide",
                doc: "Set to reference/ref/scalar to pin the execution-tier \
                      kernels (hamming, majority, codebook XOR) to the scalar \
                      reference tier instead of the wide-lane tier; both tiers \
                      are bit-identical.",
                raw: std::env::var(KERNEL_TIER_ENV_VAR).ok(),
                effective: KernelConfig::from_env().tier.name().to_owned(),
            },
            FlagInfo {
                name: ADV_CANDIDATES_ENV_VAR,
                owner: "AdvConfig",
                default: "64",
                doc: "Candidate bit flips scored per greedy round of the advsim \
                      query-space attack search; wider searches find stronger \
                      attacks at proportional blackbox query cost.",
                raw: std::env::var(ADV_CANDIDATES_ENV_VAR).ok(),
                effective: AdvConfig::from_env().candidates.to_string(),
            },
            FlagInfo {
                name: SERVE_WINDOW_ENV_VAR,
                owner: "ServeConfig",
                default: "1000",
                doc: "Coalescing window of the serving daemon in microseconds: a \
                      micro-batch drains when full or this long after its first \
                      query, whichever comes first; a pure latency/throughput \
                      knob, answers are bit-identical at any value.",
                raw: std::env::var(SERVE_WINDOW_ENV_VAR).ok(),
                effective: ServeConfig::from_env().window_us.to_string(),
            },
            FlagInfo {
                name: SERVE_MAX_BATCH_ENV_VAR,
                owner: "ServeConfig",
                default: "64",
                doc: "Maximum queries the serving daemon coalesces into one fused \
                      engine pass; deeper batches amortize per-batch supervisor \
                      overhead at up to one window of queueing latency.",
                raw: std::env::var(SERVE_MAX_BATCH_ENV_VAR).ok(),
                effective: ServeConfig::from_env().max_batch.to_string(),
            },
            FlagInfo {
                name: SERVE_QUEUE_DEPTH_ENV_VAR,
                owner: "ServeConfig",
                default: "1024",
                doc: "Admission-queue depth of the serving daemon; classify \
                      requests beyond it are refused with a structured \
                      `overloaded` response instead of buffering without bound.",
                raw: std::env::var(SERVE_QUEUE_DEPTH_ENV_VAR).ok(),
                effective: ServeConfig::from_env().queue_depth.to_string(),
            },
            FlagInfo {
                name: FLEET_BUDGET_BYTES_ENV_VAR,
                owner: "FleetConfig",
                default: "67108864",
                doc: "Resident-memory budget in bytes for the multi-tenant \
                      model registry's hydrated hot state (class vectors + \
                      fused PackedClasses arenas); over budget, \
                      least-recently-used models are evicted to their RHD2 \
                      bytes and rehydrate bit-exactly on the next query.",
                raw: std::env::var(FLEET_BUDGET_BYTES_ENV_VAR).ok(),
                effective: FleetConfig::from_env().budget_bytes.to_string(),
            },
            FlagInfo {
                name: FLEET_LOGHD_ENV_VAR,
                owner: "FleetConfig",
                default: "off",
                doc: "Set to 1/true/on/yes to serve plain-routed fleet \
                      queries through the LogHD compressed representation \
                      (O(log C) composite class vectors, decode-at-score). \
                      Lossy — opt-in, unlike the bit-identical fast paths.",
                raw: std::env::var(FLEET_LOGHD_ENV_VAR).ok(),
                effective: if FleetConfig::from_env().loghd {
                    "loghd".to_owned()
                } else {
                    "off".to_owned()
                },
            },
            FlagInfo {
                name: ADV_SEED_ENV_VAR,
                owner: "AdvConfig",
                default: "0",
                doc: "Base seed of the advsim attack-synthesis and \
                      disagreement-hunting streams; for a fixed seed the whole \
                      adversarial campaign is bit-reproducible at any thread \
                      count.",
                raw: std::env::var(ADV_SEED_ENV_VAR).ok(),
                effective: AdvConfig::from_env().seed.to_string(),
            },
        ]
    }
}

/// Builder for [`BatchConfig`].
#[derive(Debug, Clone)]
pub struct BatchConfigBuilder {
    threads: usize,
    shard_size: usize,
}

impl BatchConfigBuilder {
    fn new() -> Self {
        Self {
            threads: default_threads(),
            shard_size: 32,
        }
    }

    /// Sets the worker thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the shard size (queries claimed per unit of work).
    pub fn shard_size(mut self, shard_size: usize) -> Self {
        self.shard_size = shard_size;
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if either count is zero.
    pub fn build(self) -> Result<BatchConfig, ConfigError> {
        if self.threads == 0 {
            return Err(ConfigError::new("threads must be positive"));
        }
        if self.shard_size == 0 {
            return Err(ConfigError::new("shard_size must be positive"));
        }
        Ok(BatchConfig {
            threads: self.threads,
            shard_size: self.shard_size,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_hdc_config_matches_paper() {
        let c = HdcConfig::default();
        assert_eq!(c.dimension, 10_000);
        assert!(c.levels > 0);
    }

    #[test]
    fn builder_overrides_fields() {
        let c = HdcConfig::builder()
            .dimension(5_000)
            .levels(16)
            .retrain_epochs(0)
            .seed(9)
            .softmax_beta(32.0)
            .build()
            .expect("valid");
        assert_eq!(
            (c.dimension, c.levels, c.retrain_epochs, c.seed),
            (5_000, 16, 0, 9)
        );
        assert_eq!(c.softmax_beta, 32.0);
    }

    #[test]
    fn zero_dimension_rejected() {
        let err = HdcConfig::builder().dimension(0).build().unwrap_err();
        assert!(err.to_string().contains("dimension"));
    }

    #[test]
    fn zero_levels_rejected() {
        assert!(HdcConfig::builder().levels(0).build().is_err());
    }

    #[test]
    fn negative_beta_rejected() {
        assert!(HdcConfig::builder().softmax_beta(-1.0).build().is_err());
    }

    #[test]
    fn recovery_defaults_are_valid() {
        let c = RecoveryConfig::default();
        assert!(c.chunks > 0);
        assert!(c.faulty_chunks_only);
    }

    #[test]
    fn recovery_validation() {
        assert!(RecoveryConfig::builder().chunks(0).build().is_err());
        assert!(RecoveryConfig::builder()
            .confidence_threshold(1.2)
            .build()
            .is_err());
        assert!(RecoveryConfig::builder()
            .substitution_rate(-0.1)
            .build()
            .is_err());
    }

    #[test]
    fn supervisor_defaults_are_valid() {
        let c = SupervisorConfig::default();
        assert!(c.window > 0);
        assert!(
            c.ladder.is_empty(),
            "default ladder derives at construction"
        );
    }

    #[test]
    fn supervisor_validation() {
        assert!(SupervisorConfig::builder().window(0).build().is_err());
        assert!(SupervisorConfig::builder()
            .sensitivity(0.0)
            .build()
            .is_err());
        assert!(SupervisorConfig::builder()
            .rollback_after(0)
            .build()
            .is_err());
        assert!(SupervisorConfig::builder().hysteresis(0).build().is_err());
        assert!(SupervisorConfig::builder()
            .quarantine_fault_ceiling(1.5)
            .build()
            .is_err());
    }

    #[test]
    fn ladder_threshold_below_floor_rejected() {
        let mut ladder = EscalationLevel::default_ladder(&RecoveryConfig::default(), 0.4);
        ladder[3].confidence_threshold = 0.2;
        let err = SupervisorConfig::builder()
            .threshold_floor(0.4)
            .ladder(ladder)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("threshold_floor"));
    }

    #[test]
    fn default_ladder_escalates_monotonically() {
        let base = RecoveryConfig::default();
        let ladder = EscalationLevel::default_ladder(&base, 0.4);
        assert!(ladder.len() >= 2);
        for pair in ladder.windows(2) {
            assert!(pair[1].substitution_rate >= pair[0].substitution_rate);
            assert!(pair[1].chunks >= pair[0].chunks);
            assert!(pair[1].confidence_threshold <= pair[0].confidence_threshold);
            assert!(pair[1].rounds >= pair[0].rounds);
        }
        assert!(ladder.last().expect("non-empty").confidence_threshold >= 0.4 - 1e-12);
        let config = SupervisorConfig::builder()
            .ladder(ladder)
            .build()
            .expect("default ladder passes validation");
        assert_eq!(config.ladder.len(), 4);
    }

    #[test]
    fn batch_defaults_are_valid() {
        let c = BatchConfig::default();
        assert!(c.threads >= 1);
        assert!(c.shard_size >= 1);
    }

    #[test]
    fn batch_validation() {
        assert!(BatchConfig::builder().threads(0).build().is_err());
        assert!(BatchConfig::builder().shard_size(0).build().is_err());
        let c = BatchConfig::builder()
            .threads(8)
            .shard_size(4)
            .build()
            .expect("valid");
        assert_eq!((c.threads, c.shard_size), (8, 4));
    }

    #[test]
    fn thread_env_values_parse_or_fall_back() {
        assert_eq!(parse_threads(Some("4")), Some(4));
        assert_eq!(parse_threads(Some(" 2 ")), Some(2));
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("-3")), None);
        assert_eq!(parse_threads(Some("many")), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(None), None);
        // from_env always yields something buildable.
        assert!(BatchConfig::from_env().threads >= 1);
    }

    #[test]
    fn encode_config_defaults_fast() {
        assert!(EncodeConfig::default().fast_path);
        assert!(EncodeConfig::fast().fast_path);
        assert!(!EncodeConfig::reference().fast_path);
    }

    #[test]
    fn encode_env_values_parse_as_opt_out() {
        assert!(!parse_fast_flag(Some("0")));
        assert!(!parse_fast_flag(Some("false")));
        assert!(!parse_fast_flag(Some(" OFF ")));
        assert!(!parse_fast_flag(Some("no")));
        assert!(parse_fast_flag(Some("1")));
        assert!(parse_fast_flag(Some("true")));
        assert!(parse_fast_flag(Some("anything")));
        assert!(parse_fast_flag(None));
    }

    #[test]
    fn train_config_defaults_fast() {
        assert!(TrainConfig::default().fast_path);
        assert!(TrainConfig::fast().fast_path);
        assert!(!TrainConfig::reference().fast_path);
    }

    #[test]
    fn flag_registry_covers_every_env_var_const() {
        let flags = FlagRegistry::flags();
        let names: Vec<&str> = flags.iter().map(|f| f.name).collect();
        for expected in [
            THREADS_ENV_VAR,
            ENCODE_FAST_ENV_VAR,
            TRAIN_FAST_ENV_VAR,
            KERNEL_TIER_ENV_VAR,
            ADV_CANDIDATES_ENV_VAR,
            ADV_SEED_ENV_VAR,
            SERVE_WINDOW_ENV_VAR,
            SERVE_MAX_BATCH_ENV_VAR,
            SERVE_QUEUE_DEPTH_ENV_VAR,
            FLEET_BUDGET_BYTES_ENV_VAR,
            FLEET_LOGHD_ENV_VAR,
        ] {
            assert!(names.contains(&expected), "{expected} not registered");
        }
        assert_eq!(names.len(), 11, "new flags must be registered exactly once");
    }

    #[test]
    fn fleet_config_defaults_and_validation() {
        let c = FleetConfig::default();
        assert_eq!(c.budget_bytes, 64 * 1024 * 1024);
        assert!(!c.loghd);
        assert!(FleetConfig::builder().budget_bytes(0).build().is_err());
        // LogHD changes answers, so it must be strictly opt-in: garbage and
        // unset both stay off, unlike the opt-out fast-path flags.
        assert!(parse_opt_in_flag(Some("1")));
        assert!(parse_opt_in_flag(Some(" ON ")));
        assert!(parse_opt_in_flag(Some("yes")));
        assert!(!parse_opt_in_flag(Some("0")));
        assert!(!parse_opt_in_flag(Some("anything")));
        assert!(!parse_opt_in_flag(None));
    }

    #[test]
    fn kernel_tier_env_values_parse_as_opt_out() {
        use hypervector::KernelTier;
        assert_eq!(parse_kernel_tier(Some("reference")), KernelTier::Reference);
        assert_eq!(parse_kernel_tier(Some(" REF ")), KernelTier::Reference);
        assert_eq!(parse_kernel_tier(Some("scalar")), KernelTier::Reference);
        assert_eq!(parse_kernel_tier(Some("wide")), KernelTier::Wide);
        assert_eq!(parse_kernel_tier(Some("anything")), KernelTier::Wide);
        assert_eq!(parse_kernel_tier(None), KernelTier::Wide);
        assert_eq!(KernelConfig::default(), KernelConfig::wide());
        assert_eq!(KernelConfig::reference().tier, KernelTier::Reference);
    }

    #[test]
    fn adv_config_defaults_and_env_fallback() {
        let c = AdvConfig::default();
        assert_eq!((c.candidates, c.seed), (64, 0));
        // from_env falls back to defaults on unset/garbage values, so it
        // always yields a usable search width.
        assert!(AdvConfig::from_env().candidates > 0);
    }

    #[test]
    fn flag_registry_entries_are_well_formed() {
        for flag in FlagRegistry::flags() {
            assert!(flag.name.starts_with("ROBUSTHD_"), "{}", flag.name);
            assert!(flag.owner.ends_with("Config"), "{}", flag.owner);
            assert!(!flag.default.is_empty());
            assert!(!flag.doc.is_empty());
            assert!(!flag.effective.is_empty());
        }
    }

    #[test]
    fn serve_config_defaults_and_validation() {
        let c = ServeConfig::default();
        assert_eq!(
            (c.window_us, c.max_batch, c.queue_depth),
            (1_000, 64, 1_024)
        );
        assert!(ServeConfig::builder().max_batch(0).build().is_err());
        assert!(ServeConfig::builder().queue_depth(0).build().is_err());
        // A zero window is valid: it means "drain immediately".
        let zero = ServeConfig::builder().window_us(0).build().expect("valid");
        assert_eq!(zero.window_us, 0);
        // from_env always yields something buildable.
        assert!(ServeConfig::from_env().max_batch >= 1);
    }

    #[test]
    fn config_error_is_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync>() {}
        assert_error::<ConfigError>();
    }
}
