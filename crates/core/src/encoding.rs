//! Encoders mapping raw feature vectors into binary hyperspace.
//!
//! The paper's encoder (§3.1) is **record-based**: each feature position `k`
//! owns a random base hypervector `B_k`, each quantized feature value owns a
//! *level* hypervector `L(f_k)` from a correlated chain, and the encoding is
//! the majority bundle of the bound pairs `B_k ⊕ L(f_k)`. Nearby inputs map
//! to nearby hypervectors while the identity of each feature is preserved by
//! its (near-orthogonal) base vector.
//!
//! [`RandomProjectionEncoder`] is an alternative sign-of-projection encoder
//! used by the encoder ablation.
//!
//! # The encoding fast path
//!
//! Encoding dominated the raw-features→prediction cost once scoring went
//! word-parallel (DESIGN.md §11), so [`RecordEncoder`] ships two
//! bit-identical execution paths selected by [`EncodeConfig`]:
//!
//! * **fast** (default): a precomputed *bound-pair codebook*
//!   `P[k][v] = B_k ⊕ L_v` turns each feature into one packed-word lookup
//!   (no per-feature bind, no allocation), and bundling runs through the
//!   bit-sliced carry-save majority kernel
//!   ([`hypervector::CarrySaveMajority`]) — amortized `O(F)` word ops per
//!   64-dimension word instead of the scalar loop's `O(64·F)`.
//! * **reference**: the original per-feature bind into a scalar
//!   [`BundleAccumulator`], kept as the semantic definition the
//!   differential suite compares against.

use crate::config::{EncodeConfig, HdcConfig};
use hypervector::random::HypervectorSampler;
use hypervector::{BinaryHypervector, BundleAccumulator, CarrySaveMajority, PackedBits};

/// A mapping from raw features in `[0, 1]^n` to binary hypervectors.
///
/// Implementations must be deterministic: the same features always produce
/// the same hypervector (training and inference must agree).
pub trait Encoder {
    /// Hypervector dimensionality produced by this encoder.
    fn dim(&self) -> usize;

    /// Number of input features expected.
    fn features(&self) -> usize;

    /// Encodes one feature vector.
    ///
    /// # Panics
    ///
    /// Implementations panic if `features.len() != self.features()`.
    fn encode(&self, features: &[f64]) -> BinaryHypervector;

    /// Encodes a batch of borrowed feature slices — the allocation-friendly
    /// entry point: callers holding columnar or arena-backed features can
    /// pass views without materializing `Vec<Vec<f64>>`.
    fn encode_batch_refs(&self, batch: &[&[f64]]) -> Vec<BinaryHypervector> {
        batch.iter().map(|f| self.encode(f)).collect()
    }

    /// Encodes a batch of owned feature vectors (delegates to
    /// [`Encoder::encode_batch_refs`]).
    fn encode_batch(&self, batch: &[Vec<f64>]) -> Vec<BinaryHypervector> {
        let refs: Vec<&[f64]> = batch.iter().map(Vec::as_slice).collect();
        self.encode_batch_refs(&refs)
    }
}

/// The paper's record-based encoder: `H = majority_k( B_k ⊕ L(q(f_k)) )`.
///
/// # Example
///
/// ```
/// use robusthd::{Encoder, HdcConfig, RecordEncoder};
///
/// let config = HdcConfig::builder().dimension(2048).seed(3).build()?;
/// let encoder = RecordEncoder::new(&config, 4);
/// let a = encoder.encode(&[0.1, 0.5, 0.9, 0.0]);
/// let b = encoder.encode(&[0.1, 0.5, 0.9, 0.05]);
/// let c = encoder.encode(&[0.9, 0.0, 0.2, 1.0]);
/// // Similar inputs stay similar, dissimilar inputs decorrelate.
/// assert!(a.similarity(&b) > a.similarity(&c));
/// # Ok::<(), robusthd::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RecordEncoder {
    bases: Vec<BinaryHypervector>,
    levels: Vec<BinaryHypervector>,
    /// Bound-pair codebook `pairs[k * levels + v] = B_k ⊕ L_v`, built once
    /// at construction when the fast path is enabled. Costs
    /// `features × levels × D` bits of memory (e.g. 16 features × 64 levels
    /// × 8192 dims = 1 MiB) to make every encode a pure packed-word lookup
    /// with zero per-feature allocation.
    pairs: Option<Vec<BinaryHypervector>>,
    dim: usize,
}

impl RecordEncoder {
    /// Builds the encoder's base and level hypervector codebooks for
    /// `features` input features, using the default *locally correlated*
    /// level chain (distant values near-orthogonal — see DESIGN.md §8,
    /// finding 3). The execution path comes from [`EncodeConfig::from_env`]
    /// (fast unless `ROBUSTHD_ENCODE_FAST` opts out).
    ///
    /// # Panics
    ///
    /// Panics if `features` is zero.
    pub fn new(config: &HdcConfig, features: usize) -> Self {
        Self::with_encode_config(config, features, EncodeConfig::from_env())
    }

    /// Builds the encoder with an explicit execution-path choice (used by
    /// the differential suite to pin the fast or reference path).
    ///
    /// # Panics
    ///
    /// Panics if `features` is zero.
    pub fn with_encode_config(config: &HdcConfig, features: usize, encode: EncodeConfig) -> Self {
        assert!(features > 0, "encoder needs at least one feature");
        let mut sampler = HypervectorSampler::seed_from(config.seed);
        let bases = sampler.base_set(features, config.dimension);
        let levels = sampler.level_set(config.levels, config.dimension, config.level_correlation);
        Self::assemble(bases, levels, config.dimension, encode)
    }

    /// Builds the encoder with the classic *linear* (thermometer) level
    /// chain instead: distance between level hypervectors grows linearly
    /// with level separation and the extremes are orthogonal.
    ///
    /// Kept for the level-codebook ablation: the linear chain leaves a
    /// large ambient correlation between encodings of different classes,
    /// which destabilizes recovery (DESIGN.md §8, finding 3).
    ///
    /// # Panics
    ///
    /// Panics if `features` is zero.
    pub fn with_linear_levels(config: &HdcConfig, features: usize) -> Self {
        assert!(features > 0, "encoder needs at least one feature");
        let mut sampler = HypervectorSampler::seed_from(config.seed);
        let bases = sampler.base_set(features, config.dimension);
        let levels = sampler.level_set_linear(config.levels, config.dimension);
        Self::assemble(bases, levels, config.dimension, EncodeConfig::from_env())
    }

    fn assemble(
        bases: Vec<BinaryHypervector>,
        levels: Vec<BinaryHypervector>,
        dim: usize,
        encode: EncodeConfig,
    ) -> Self {
        let mut encoder = Self {
            bases,
            levels,
            pairs: None,
            dim,
        };
        encoder.set_fast_path(encode.fast_path);
        encoder
    }

    /// Enables or disables the bound-pair fast path. Enabling (re)builds
    /// the codebook from the base and level sets; disabling drops it and
    /// falls back to the scalar reference loop. Results are identical
    /// either way.
    pub fn set_fast_path(&mut self, enabled: bool) {
        if !enabled {
            self.pairs = None;
            return;
        }
        if self.pairs.is_some() {
            return;
        }
        let mut pairs = Vec::with_capacity(self.bases.len() * self.levels.len());
        let mut scratch = BinaryHypervector::zeros(self.dim);
        for base in &self.bases {
            for level in &self.levels {
                base.bind_into(level, &mut scratch);
                pairs.push(scratch.clone());
            }
        }
        self.pairs = Some(pairs);
    }

    /// Whether the bound-pair fast path is active.
    pub fn fast_path(&self) -> bool {
        self.pairs.is_some()
    }

    /// Quantizes a normalized feature into a level index.
    fn level_index(&self, value: f64) -> usize {
        let clamped = value.clamp(0.0, 1.0);
        ((clamped * self.levels.len() as f64) as usize).min(self.levels.len() - 1)
    }

    /// The level codebook (exposed for diagnostics and tests).
    pub fn level_codebook(&self) -> &[BinaryHypervector] {
        &self.levels
    }

    /// The per-feature base codebook.
    pub fn base_codebook(&self) -> &[BinaryHypervector] {
        &self.bases
    }
}

impl Encoder for RecordEncoder {
    fn dim(&self) -> usize {
        self.dim
    }

    fn features(&self) -> usize {
        self.bases.len()
    }

    // audit:allow(panic): level_index is clamped to the level table; k spans the asserted feature count
    fn encode(&self, features: &[f64]) -> BinaryHypervector {
        assert_eq!(
            features.len(),
            self.bases.len(),
            "expected {} features, got {}",
            self.bases.len(),
            features.len()
        );
        if let Some(pairs) = &self.pairs {
            // Fast path: one codebook lookup + carry-save word adds per
            // feature. No binds, no per-feature allocation.
            let mut acc = CarrySaveMajority::new(self.dim);
            let levels = self.levels.len();
            for (k, &value) in features.iter().enumerate() {
                let pair = &pairs[k * levels + self.level_index(value)];
                acc.add_words(pair.bits().words());
            }
            acc.to_binary()
        } else {
            // Reference path: scalar counters, scratch-reused bind.
            let mut acc = BundleAccumulator::new(self.dim);
            let mut bound = BinaryHypervector::zeros(self.dim);
            for (k, &value) in features.iter().enumerate() {
                let level = &self.levels[self.level_index(value)];
                self.bases[k].bind_into(level, &mut bound);
                acc.add(&bound);
            }
            acc.to_binary()
        }
    }
}

/// Sign-of-random-projection encoder: each output bit is the sign of a
/// sparse ±1 projection of the input.
///
/// Cheaper than the record encoder but loses the per-feature base-vector
/// structure; kept as the ablation comparator for DESIGN.md §5.
#[derive(Debug, Clone)]
pub struct RandomProjectionEncoder {
    /// For each output dimension, the list of (feature index, sign) taps.
    taps: Vec<Vec<(usize, f64)>>,
    features: usize,
    dim: usize,
}

impl RandomProjectionEncoder {
    /// Builds a projection with `taps_per_dim` random ±1 taps per output
    /// bit.
    ///
    /// # Panics
    ///
    /// Panics if `features` or `taps_per_dim` is zero.
    pub fn new(config: &HdcConfig, features: usize, taps_per_dim: usize) -> Self {
        use rand::Rng;
        assert!(features > 0, "encoder needs at least one feature");
        assert!(taps_per_dim > 0, "need at least one tap per dimension");
        let mut sampler = HypervectorSampler::seed_from(config.seed ^ 0x5f37_2a1b);
        let rng = sampler.rng_mut();
        let taps = (0..config.dimension)
            .map(|_| {
                (0..taps_per_dim)
                    .map(|_| {
                        let feature = rng.random_range(0..features);
                        let sign = if rng.random_bool(0.5) { 1.0 } else { -1.0 };
                        (feature, sign)
                    })
                    .collect()
            })
            .collect();
        Self {
            taps,
            features,
            dim: config.dimension,
        }
    }
}

impl Encoder for RandomProjectionEncoder {
    fn dim(&self) -> usize {
        self.dim
    }

    fn features(&self) -> usize {
        self.features
    }

    // audit:allow(panic): taps are built over the feature count at construction
    fn encode(&self, features: &[f64]) -> BinaryHypervector {
        assert_eq!(
            features.len(),
            self.features,
            "expected {} features, got {}",
            self.features,
            features.len()
        );
        // Build packed words directly instead of per-bit `from_fn`: one
        // 64-bit accumulator per word, committed in bulk.
        let mut bits = PackedBits::zeros(self.dim);
        for (word_idx, word) in bits.words_mut().iter_mut().enumerate() {
            let base = word_idx * 64;
            let span = 64.min(self.dim - base);
            let mut acc = 0u64;
            for (j, taps) in self.taps[base..base + span].iter().enumerate() {
                let sum: f64 = taps
                    .iter()
                    // Center features at zero so the signs are balanced.
                    .map(|&(f, sign)| sign * (features[f] - 0.5))
                    .sum();
                acc |= u64::from(sum > 0.0) << j;
            }
            *word = acc;
        }
        bits.mask_tail();
        BinaryHypervector::from_bits(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(dim: usize) -> HdcConfig {
        HdcConfig::builder()
            .dimension(dim)
            .seed(7)
            .build()
            .expect("valid")
    }

    #[test]
    fn record_encoding_is_deterministic() {
        let enc = RecordEncoder::new(&config(2048), 8);
        let f = vec![0.3; 8];
        assert_eq!(enc.encode(&f), enc.encode(&f));
    }

    #[test]
    fn record_encoding_preserves_locality() {
        let enc = RecordEncoder::new(&config(8192), 16);
        let base: Vec<f64> = (0..16).map(|i| i as f64 / 16.0).collect();
        let mut near = base.clone();
        near[0] += 0.02;
        let far: Vec<f64> = base.iter().map(|f| 1.0 - f).collect();
        let h = enc.encode(&base);
        assert!(h.similarity(&enc.encode(&near)) > h.similarity(&enc.encode(&far)));
        assert!(h.similarity(&enc.encode(&near)) > 0.9);
    }

    #[test]
    fn different_inputs_decorrelate() {
        let enc = RecordEncoder::new(&config(8192), 16);
        let a = enc.encode(&[0.1; 16]);
        let b = enc.encode(&[0.9; 16]);
        let sim = a.similarity(&b);
        assert!(sim < 0.75, "dissimilar inputs too similar: {sim}");
    }

    #[test]
    fn out_of_range_features_clamp() {
        let enc = RecordEncoder::new(&config(1024), 2);
        let clamped = enc.encode(&[-0.5, 1.5]);
        let edge = enc.encode(&[0.0, 1.0]);
        assert_eq!(clamped, edge);
    }

    #[test]
    #[should_panic(expected = "expected 4 features")]
    fn wrong_feature_count_panics() {
        RecordEncoder::new(&config(512), 4).encode(&[0.0; 3]);
    }

    #[test]
    fn level_index_spans_codebook() {
        let enc = RecordEncoder::new(&config(512), 1);
        assert_eq!(enc.level_index(0.0), 0);
        assert_eq!(enc.level_index(1.0), enc.level_codebook().len() - 1);
    }

    #[test]
    fn encode_batch_matches_single() {
        let enc = RecordEncoder::new(&config(512), 3);
        let batch = vec![vec![0.2, 0.4, 0.6], vec![0.9, 0.1, 0.5]];
        let encoded = enc.encode_batch(&batch);
        assert_eq!(encoded[0], enc.encode(&batch[0]));
        assert_eq!(encoded[1], enc.encode(&batch[1]));
    }

    #[test]
    fn projection_encoder_is_deterministic_and_local() {
        let cfg = config(4096);
        let enc = RandomProjectionEncoder::new(&cfg, 16, 8);
        let base: Vec<f64> = (0..16).map(|i| i as f64 / 15.0).collect();
        let mut near = base.clone();
        near[3] += 0.01;
        let far: Vec<f64> = base.iter().map(|f| 1.0 - f).collect();
        let h = enc.encode(&base);
        assert_eq!(h, enc.encode(&base));
        assert!(h.similarity(&enc.encode(&near)) > h.similarity(&enc.encode(&far)));
    }

    #[test]
    fn linear_levels_raise_ambient_similarity() {
        // The ablation's premise, at the encoder level: with the linear
        // thermometer chain, two *unrelated* inputs encode far more
        // similarly than with the locally-correlated chain.
        let cfg = config(4096);
        let local = RecordEncoder::new(&cfg, 32);
        let linear = RecordEncoder::with_linear_levels(&cfg, 32);
        let a: Vec<f64> = (0..32).map(|i| (i as f64 * 0.37) % 1.0).collect();
        let b: Vec<f64> = (0..32).map(|i| (i as f64 * 0.61 + 0.5) % 1.0).collect();
        let ambient_local = local.encode(&a).similarity(&local.encode(&b));
        let ambient_linear = linear.encode(&a).similarity(&linear.encode(&b));
        assert!(
            ambient_linear > ambient_local + 0.05,
            "linear {ambient_linear} should exceed local {ambient_local}"
        );
    }

    #[test]
    fn linear_encoder_still_preserves_locality() {
        let enc = RecordEncoder::with_linear_levels(&config(4096), 16);
        let base: Vec<f64> = (0..16).map(|i| i as f64 / 16.0).collect();
        let mut near = base.clone();
        near[0] += 0.02;
        let far: Vec<f64> = base.iter().map(|f| 1.0 - f).collect();
        let h = enc.encode(&base);
        assert!(h.similarity(&enc.encode(&near)) > h.similarity(&enc.encode(&far)));
    }

    #[test]
    fn fast_path_matches_reference_bit_for_bit() {
        // Non-multiple-of-64 dimension on purpose.
        let cfg = config(1000);
        let fast = RecordEncoder::with_encode_config(&cfg, 7, EncodeConfig::fast());
        let reference = RecordEncoder::with_encode_config(&cfg, 7, EncodeConfig::reference());
        assert!(fast.fast_path());
        assert!(!reference.fast_path());
        let inputs = [
            vec![0.0; 7],
            vec![1.0; 7],
            vec![0.5; 7],
            (0..7).map(|i| i as f64 / 6.0).collect::<Vec<_>>(),
            vec![-0.2, 1.3, 0.01, 0.99, 0.49, 0.51, 0.33],
        ];
        for f in &inputs {
            assert_eq!(fast.encode(f), reference.encode(f), "features {f:?}");
        }
    }

    #[test]
    fn toggling_fast_path_preserves_results() {
        let cfg = config(513);
        let mut enc = RecordEncoder::with_encode_config(&cfg, 4, EncodeConfig::fast());
        let f = [0.1, 0.7, 0.3, 0.9];
        let with_fast = enc.encode(&f);
        enc.set_fast_path(false);
        assert_eq!(enc.encode(&f), with_fast);
        enc.set_fast_path(true);
        assert_eq!(enc.encode(&f), with_fast);
    }

    #[test]
    fn encode_batch_refs_matches_owned_batch() {
        let enc = RecordEncoder::new(&config(512), 3);
        let batch = vec![vec![0.2, 0.4, 0.6], vec![0.9, 0.1, 0.5]];
        let refs: Vec<&[f64]> = batch.iter().map(Vec::as_slice).collect();
        assert_eq!(enc.encode_batch_refs(&refs), enc.encode_batch(&batch));
    }

    #[test]
    fn projection_encoder_even_feature_count_tie_cases() {
        // All-0.5 features make every projection sum exactly 0.0 — the
        // packed-word rewrite must keep the strict `> 0.0` threshold.
        let cfg = config(130);
        let enc = RandomProjectionEncoder::new(&cfg, 6, 4);
        let h = enc.encode(&[0.5; 6]);
        assert_eq!(h, BinaryHypervector::zeros(130));
    }

    #[test]
    fn codebook_dimensions_match_config() {
        let enc = RecordEncoder::new(&config(1000), 5);
        assert_eq!(enc.dim(), 1000);
        assert_eq!(enc.features(), 5);
        assert_eq!(enc.base_codebook().len(), 5);
        assert!(enc.base_codebook().iter().all(|b| b.dim() == 1000));
    }
}
