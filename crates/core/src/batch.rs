//! Parallel batched inference engine.
//!
//! RobustHD's serving hot path — Hamming distance of a query against every
//! class hypervector — is embarrassingly parallel across queries, classes,
//! and 64-bit words. [`BatchEngine`] exploits the query axis: a batch is
//! split into fixed-size shards and scoped `std::thread` workers claim
//! shards from a shared atomic counter, each computing its queries against
//! a class-major packed copy of the model
//! ([`hypervector::similarity::PackedClasses`]).
//!
//! **Results are bit-identical to the sequential path by construction**,
//! not by tolerance:
//!
//! * per-query work is read-only on the model and independent of every
//!   other query, so shard assignment cannot influence any result;
//! * each result is written at its query's position, so worker scheduling
//!   cannot influence output order;
//! * distances are exact integer popcounts over the same packed words, and
//!   the float pipeline (similarity → sharpened softmax → margin) evaluates
//!   the same expressions in the same order as
//!   [`TrainedModel::similarities`] + [`Confidence::from_similarities`].
//!
//! The differential suite (`tests/batch_differential.rs`) enforces this
//! across thread counts, shard sizes, and degraded model states.
//!
//! Anything RNG-driven — probabilistic substitution, majority voting —
//! stays strictly sequential in the [`crate::recovery::RecoveryEngine`];
//! only the read-only parts (prediction, confidence, chunk-fault
//! localization) route through the engine.

use crate::confidence::Confidence;
use crate::config::BatchConfig;
use crate::encoding::Encoder;
use crate::model::{argmin_first, TrainedModel};
use hypervector::similarity::{chunked_hamming, chunked_hamming_into};
use hypervector::BinaryHypervector;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Everything the serving loop needs about one query, computed from a
/// single pass over the class distances.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchScore {
    /// Predicted label, with [`TrainedModel::predict`]'s tie-break (ties
    /// resolve to the lowest label).
    pub predicted: usize,
    /// The confidence assessment, bit-identical to
    /// [`Confidence::evaluate`] on the same query.
    pub confidence: Confidence,
}

/// Result of chunk-fault localization for one query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultScan {
    /// Indices of chunks where another class beats the predicted class by
    /// more than the statistical margin.
    pub faulty: Vec<usize>,
    /// Number of non-empty chunks examined.
    pub inspected: usize,
}

/// Bit range `[start, end)` of chunk `index` when a `dim`-bit vector is
/// split into `chunks` spans, splitting as evenly as integer arithmetic
/// allows. More chunks than dimensions yields empty ranges.
pub fn chunk_bounds(dim: usize, chunks: usize, index: usize) -> (usize, usize) {
    (index * dim / chunks, (index + 1) * dim / chunks)
}

/// Chunk-fault localization (§4.2 of the paper): a chunk is faulty when
/// some other class beats the predicted class on that chunk by more than
/// `fault_margin * sqrt(d)` bits.
///
/// This is the read-only core the [`crate::recovery::RecoveryEngine`]
/// shares with [`BatchEngine::scan_faults_batch`]: all per-chunk distances
/// come from the fused
/// [`chunked_hamming`](hypervector::similarity::chunked_hamming) kernel
/// (one XOR pass per class instead of one per class×chunk), and the flag
/// decision is exact integer arithmetic — bit-identical to the former
/// per-range scan.
///
/// # Panics
///
/// Panics if the query dimension differs from the model's, `predicted` is
/// out of range, or `chunks` is zero.
pub fn scan_chunk_faults(
    model: &TrainedModel,
    query: &BinaryHypervector,
    predicted: usize,
    chunks: usize,
    fault_margin: f64,
) -> FaultScan {
    assert!(chunks > 0, "need at least one chunk");
    let dim = model.dim();
    let predicted_dists = chunked_hamming(model.class(predicted), query, chunks);
    // Stream the rivals through one reused scratch buffer, folding them
    // into the per-chunk best (minimum) rival distance: "some rival beats
    // the predicted class by more than the margin" depends only on the
    // closest rival, so this is decision-identical to keeping every
    // rival's distances — without the per-rival Vec the old
    // `Vec<Vec<usize>>` collect allocated.
    let mut rival_best = vec![usize::MAX; chunks];
    let mut scratch = Vec::with_capacity(chunks);
    for c in (0..model.num_classes()).filter(|&c| c != predicted) {
        chunked_hamming_into(model.class(c), query, chunks, &mut scratch);
        for (best, &d) in rival_best.iter_mut().zip(&scratch) {
            *best = (*best).min(d);
        }
    }
    let mut faulty = Vec::new();
    let mut inspected = 0usize;
    for chunk in 0..chunks {
        let (start, end) = chunk_bounds(dim, chunks, chunk);
        if start == end {
            continue;
        }
        inspected += 1;
        let d = end - start;
        let margin_bits = hypervector::cast::round_to_usize(fault_margin * (d as f64).sqrt());
        let predicted_dist = predicted_dists[chunk]; // audit:allow(panic): predicted_dists has one entry per chunk
                                                     // `saturating_add` keeps the usize::MAX sentinel of a rival-less
                                                     // (single-class) model out of overflow; real distances are at most
                                                     // `dim`, far from saturation.
                                                     // audit:allow(panic): rival_best has one entry per chunk
        if rival_best[chunk].saturating_add(margin_bits) < predicted_dist {
            faulty.push(chunk);
        }
    }
    FaultScan { faulty, inspected }
}

/// Similarities derived from Hamming distances exactly as
/// [`hypervector::BinaryHypervector::similarity`] computes them, in class
/// order — the float inputs [`Confidence::from_similarities`] expects.
fn similarities_from_distances(distances: &[usize], dim: usize) -> Vec<f64> {
    distances
        .iter()
        .map(|&d| {
            if dim == 0 {
                1.0
            } else {
                1.0 - d as f64 / dim as f64
            }
        })
        .collect()
}

/// The parallel batched inference engine.
///
/// # Example
///
/// ```
/// use hypervector::random::HypervectorSampler;
/// use robusthd::{BatchConfig, BatchEngine, TrainedModel};
///
/// let mut sampler = HypervectorSampler::seed_from(3);
/// let classes: Vec<_> = (0..4).map(|_| sampler.binary(2048)).collect();
/// let queries: Vec<_> = (0..100)
///     .map(|i| sampler.flip_noise(&classes[i % 4], 0.2))
///     .collect();
/// let model = TrainedModel::from_classes(classes);
///
/// let engine = BatchEngine::new(BatchConfig::builder().threads(4).build()?);
/// let batched = engine.predict_batch(&model, &queries);
/// let sequential: Vec<_> = queries.iter().map(|q| model.predict(q)).collect();
/// assert_eq!(batched, sequential);
/// # Ok::<(), robusthd::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BatchEngine {
    config: BatchConfig,
}

impl BatchEngine {
    /// Creates an engine with the given tuning.
    pub fn new(config: BatchConfig) -> Self {
        Self { config }
    }

    /// Creates an engine tuned from the environment
    /// ([`BatchConfig::from_env`], honouring `ROBUSTHD_THREADS`), and
    /// installs the process-wide kernel tier from `ROBUSTHD_KERNEL_TIER`
    /// ([`crate::config::KernelConfig::from_env`]). Tier installation is
    /// first-caller-wins and results are bit-identical across tiers, so the
    /// ordering relative to other engines is immaterial.
    pub fn from_env() -> Self {
        crate::config::KernelConfig::from_env().install();
        Self::new(BatchConfig::from_env())
    }

    /// The engine's tuning.
    pub fn config(&self) -> &BatchConfig {
        &self.config
    }

    /// Replaces the engine's tuning (results are unaffected; see the module
    /// docs).
    pub fn set_config(&mut self, config: BatchConfig) {
        self.config = config;
    }

    /// Applies a pure per-shard function to `inputs`, fanned out across the
    /// configured worker threads, and returns the per-item results in input
    /// order.
    ///
    /// `f` maps one shard (a slice of consecutive inputs) to its results
    /// and may keep per-shard scratch. Workers claim shard indices from an
    /// atomic counter; each shard's results are placed by shard index, so
    /// scheduling cannot reorder or alter anything. With one thread (or one
    /// shard's worth of work) everything runs inline on the caller's
    /// thread.
    fn map_shards<Q, R, F>(&self, inputs: &[Q], f: F) -> Vec<R>
    where
        Q: Sync,
        R: Send,
        F: Fn(&[Q]) -> Vec<R> + Sync,
    {
        let shard_size = self.config.shard_size;
        let num_shards = inputs.len().div_ceil(shard_size);
        let threads = self.config.threads.min(num_shards);
        if threads <= 1 {
            let mut out = Vec::with_capacity(inputs.len());
            for shard in inputs.chunks(shard_size) {
                out.extend(f(shard));
            }
            return out;
        }

        let next = AtomicUsize::new(0);
        let mut by_shard: Vec<(usize, Vec<R>)> = Vec::with_capacity(num_shards);
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let shard = next.fetch_add(1, Ordering::Relaxed);
                            if shard >= num_shards {
                                break;
                            }
                            let lo = shard * shard_size;
                            let hi = (lo + shard_size).min(inputs.len());
                            local.push((shard, f(&inputs[lo..hi]))); // audit:allow(panic): hi is clamped to inputs.len()
                        }
                        local
                    })
                })
                .collect();
            for worker in workers {
                // Re-raise a worker panic on the caller's thread instead of
                // `expect`ing: the original payload and message survive.
                by_shard.extend(
                    worker
                        .join()
                        .unwrap_or_else(|payload| std::panic::resume_unwind(payload)),
                );
            }
        });
        by_shard.sort_unstable_by_key(|(shard, _)| *shard);
        by_shard
            .into_iter()
            .flat_map(|(_, results)| results)
            .collect()
    }

    /// Folds `inputs` into per-worker partial states, fanned out across the
    /// configured worker threads, and returns the states in worker-index
    /// order.
    ///
    /// Each worker starts from `init()` and calls `fold(&mut state, shard)`
    /// for every shard it claims from the shared atomic counter. Which
    /// shards land in which state is scheduling-dependent, so this is only
    /// deterministic for *commutative, associative* folds (integer
    /// accumulation, counting) whose merged total is independent of the
    /// partition — exactly the shape of one-shot bundling in
    /// [`crate::train`]. With one thread (or at most one shard of work)
    /// everything runs inline and a single state is returned.
    pub fn fold_shards<Q, S, I, F>(&self, inputs: &[Q], init: I, fold: F) -> Vec<S>
    where
        Q: Sync,
        S: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, &[Q]) + Sync,
    {
        let shard_size = self.config.shard_size;
        let num_shards = inputs.len().div_ceil(shard_size);
        let threads = self.config.threads.min(num_shards);
        if threads <= 1 {
            let mut state = init();
            for shard in inputs.chunks(shard_size) {
                fold(&mut state, shard);
            }
            return vec![state];
        }

        let next = AtomicUsize::new(0);
        let mut states: Vec<S> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut state = init();
                        loop {
                            let shard = next.fetch_add(1, Ordering::Relaxed);
                            if shard >= num_shards {
                                break;
                            }
                            let lo = shard * shard_size;
                            let hi = (lo + shard_size).min(inputs.len());
                            fold(&mut state, &inputs[lo..hi]);
                        }
                        state
                    })
                })
                .collect();
            for worker in workers {
                states.push(
                    worker
                        .join()
                        .unwrap_or_else(|payload| std::panic::resume_unwind(payload)),
                );
            }
        });
        states
    }

    /// Predicted label for every query, bit-identical to calling
    /// [`TrainedModel::predict`] per query (ties resolve to the lowest
    /// label).
    ///
    /// # Panics
    ///
    /// Panics if any query dimension differs from the model's.
    pub fn predict_batch(&self, model: &TrainedModel, queries: &[BinaryHypervector]) -> Vec<usize> {
        let packed = model.packed();
        self.map_shards(queries, |shard| {
            let mut distances = Vec::new();
            shard
                .iter()
                .map(|query| {
                    packed.hamming_all_into(query, &mut distances);
                    argmin_first(&distances)
                })
                .collect()
        })
    }

    /// Prediction plus confidence for every query: `predicted` is
    /// bit-identical to [`TrainedModel::predict`], `confidence` to
    /// [`Confidence::evaluate`], both computed from one distance pass per
    /// query.
    ///
    /// # Panics
    ///
    /// Panics if any query dimension differs from the model's, or `beta` is
    /// not positive and finite.
    pub fn evaluate_batch(
        &self,
        model: &TrainedModel,
        queries: &[BinaryHypervector],
        beta: f64,
    ) -> Vec<BatchScore> {
        let packed = model.packed();
        let dim = model.dim();
        self.map_shards(queries, |shard| {
            let mut distances = Vec::new();
            shard
                .iter()
                .map(|query| {
                    packed.hamming_all_into(query, &mut distances);
                    let similarities = similarities_from_distances(&distances, dim);
                    BatchScore {
                        predicted: argmin_first(&distances),
                        confidence: Confidence::from_similarities(&similarities, beta),
                    }
                })
                .collect()
        })
    }

    /// Encodes a batch of feature slices, sharded across the worker
    /// threads with index-stable placement — bit-identical to calling
    /// [`Encoder::encode`] per row, in row order.
    ///
    /// Encoding is deterministic and read-only on the encoder, so the
    /// bit-exactness argument in the module docs applies unchanged.
    ///
    /// # Panics
    ///
    /// Panics if any row's length differs from `encoder.features()`.
    pub fn encode_batch<E: Encoder + Sync + ?Sized>(
        &self,
        encoder: &E,
        batch: &[&[f64]],
    ) -> Vec<BinaryHypervector> {
        self.map_shards(batch, |shard| encoder.encode_batch_refs(shard))
    }

    /// Fused encode→predict over arbitrary inputs: each worker maps an
    /// input through `encode` and immediately scores it against the packed
    /// model, so no batch-wide `Vec<BinaryHypervector>` is ever
    /// materialized. Bit-identical to `model.predict(&encode(input))` per
    /// input, in input order.
    ///
    /// `encode` must be pure (same input → same hypervector); every encoder
    /// in this crate is.
    ///
    /// # Panics
    ///
    /// Panics if `encode` produces a dimension differing from the model's.
    pub fn predict_fused<Q, F>(&self, model: &TrainedModel, inputs: &[Q], encode: F) -> Vec<usize>
    where
        Q: Sync,
        F: Fn(&Q) -> BinaryHypervector + Sync,
    {
        let packed = model.packed();
        self.map_shards(inputs, |shard| {
            let mut distances = Vec::new();
            shard
                .iter()
                .map(|input| {
                    let query = encode(input);
                    packed.hamming_all_into(&query, &mut distances);
                    argmin_first(&distances)
                })
                .collect()
        })
    }

    /// Fused raw-features → prediction ([`BatchEngine::predict_fused`] with
    /// an [`Encoder`]). Bit-identical to `model.predict(&encoder.encode(row))`
    /// per row.
    ///
    /// # Panics
    ///
    /// Panics if any row's length differs from `encoder.features()`, or the
    /// encoder dimension differs from the model's.
    pub fn predict_raw_batch<E: Encoder + Sync + ?Sized>(
        &self,
        encoder: &E,
        model: &TrainedModel,
        batch: &[&[f64]],
    ) -> Vec<usize> {
        self.predict_fused(model, batch, |row| encoder.encode(row))
    }

    /// Fused raw-features → prediction + confidence, the raw-features
    /// analogue of [`BatchEngine::evaluate_batch`]. Bit-identical (down to
    /// `f64::to_bits`) to encoding each row and evaluating it sequentially.
    ///
    /// # Panics
    ///
    /// Panics if any row's length differs from `encoder.features()`, the
    /// encoder dimension differs from the model's, or `beta` is not
    /// positive and finite.
    pub fn evaluate_raw_batch<E: Encoder + Sync + ?Sized>(
        &self,
        encoder: &E,
        model: &TrainedModel,
        batch: &[&[f64]],
        beta: f64,
    ) -> Vec<BatchScore> {
        let packed = model.packed();
        let dim = model.dim();
        self.map_shards(batch, |shard| {
            let mut distances = Vec::new();
            shard
                .iter()
                .map(|features| {
                    let query = encoder.encode(features);
                    packed.hamming_all_into(&query, &mut distances);
                    let similarities = similarities_from_distances(&distances, dim);
                    BatchScore {
                        predicted: argmin_first(&distances),
                        confidence: Confidence::from_similarities(&similarities, beta),
                    }
                })
                .collect()
        })
    }

    /// Chunk-fault localization ([`scan_chunk_faults`]) for every
    /// `(query, predicted)` pair, sharded across the worker threads.
    ///
    /// Localization is read-only, so unlike substitution it parallelizes
    /// without touching the recovery engine's RNG stream.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`scan_chunk_faults`], or if
    /// `queries` and `predictions` have different lengths.
    pub fn scan_faults_batch(
        &self,
        model: &TrainedModel,
        queries: &[BinaryHypervector],
        predictions: &[usize],
        chunks: usize,
        fault_margin: f64,
    ) -> Vec<FaultScan> {
        assert_eq!(
            queries.len(),
            predictions.len(),
            "queries and predictions must align"
        );
        let indexed: Vec<(usize, usize)> = predictions
            .iter()
            .enumerate()
            .map(|(i, &p)| (i, p))
            .collect();
        self.map_shards(&indexed, |shard| {
            shard
                .iter()
                .map(|&(i, predicted)| {
                    scan_chunk_faults(model, &queries[i], predicted, chunks, fault_margin)
                })
                .collect()
        })
    }
}

impl Default for BatchEngine {
    /// An engine tuned from the environment, like [`BatchEngine::from_env`].
    fn default() -> Self {
        Self::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HdcConfig;
    use hypervector::random::HypervectorSampler;

    const DIM: usize = 2048;

    fn setup(seed: u64, classes: usize, queries: usize) -> (TrainedModel, Vec<BinaryHypervector>) {
        let mut sampler = HypervectorSampler::seed_from(seed);
        let protos: Vec<_> = (0..classes).map(|_| sampler.binary(DIM)).collect();
        let qs: Vec<_> = (0..queries)
            .map(|i| sampler.flip_noise(&protos[i % classes], 0.25))
            .collect();
        (TrainedModel::from_classes(protos), qs)
    }

    fn engine(threads: usize, shard_size: usize) -> BatchEngine {
        BatchEngine::new(
            BatchConfig::builder()
                .threads(threads)
                .shard_size(shard_size)
                .build()
                .expect("valid"),
        )
    }

    #[test]
    fn predictions_match_sequential_for_every_tuning() {
        let (model, queries) = setup(1, 5, 97);
        let sequential: Vec<_> = queries.iter().map(|q| model.predict(q)).collect();
        for threads in [1, 2, 4, 8] {
            for shard_size in [1, 7, 32, 200] {
                assert_eq!(
                    engine(threads, shard_size).predict_batch(&model, &queries),
                    sequential,
                    "threads={threads} shard={shard_size}"
                );
            }
        }
    }

    #[test]
    fn scores_match_sequential_bit_for_bit() {
        let (model, queries) = setup(2, 4, 61);
        let beta = HdcConfig::default().softmax_beta;
        for threads in [1, 4] {
            let scores = engine(threads, 8).evaluate_batch(&model, &queries, beta);
            for (query, score) in queries.iter().zip(&scores) {
                let reference = Confidence::evaluate(&model, query, beta);
                assert_eq!(score.confidence, reference);
                assert_eq!(
                    score.confidence.confidence.to_bits(),
                    reference.confidence.to_bits()
                );
                assert_eq!(score.predicted, model.predict(query));
            }
        }
    }

    #[test]
    fn argmin_breaks_ties_to_first() {
        assert_eq!(argmin_first(&[3, 1, 1, 2]), 1);
        assert_eq!(argmin_first(&[0, 0]), 0);
        assert_eq!(argmin_first(&[9]), 0);
    }

    #[test]
    fn empty_batch_yields_empty_results() {
        let (model, _) = setup(3, 2, 0);
        assert!(engine(4, 8).predict_batch(&model, &[]).is_empty());
        assert!(engine(4, 8).evaluate_batch(&model, &[], 64.0).is_empty());
    }

    #[test]
    fn fault_scan_matches_chunk_arithmetic() {
        let (mut model, queries) = setup(4, 3, 30);
        // Annihilate chunk 5 of class 0 so class-0 queries flag it.
        let m = 16;
        let (start, end) = chunk_bounds(DIM, m, 5);
        for i in start..end {
            model.class_mut(0).flip(i);
        }
        let query = &queries[0];
        assert_eq!(model.predict(query), 0);
        let scan = scan_chunk_faults(&model, query, 0, m, 1.0);
        assert_eq!(scan.inspected, m);
        assert!(scan.faulty.contains(&5), "faulty: {:?}", scan.faulty);
    }

    #[test]
    fn fault_scan_batch_matches_single_scans() {
        let (model, queries) = setup(5, 4, 40);
        let predictions: Vec<_> = queries.iter().map(|q| model.predict(q)).collect();
        let sequential: Vec<_> = queries
            .iter()
            .zip(&predictions)
            .map(|(q, &p)| scan_chunk_faults(&model, q, p, 20, 1.0))
            .collect();
        for threads in [1, 2, 8] {
            let batched =
                engine(threads, 4).scan_faults_batch(&model, &queries, &predictions, 20, 1.0);
            assert_eq!(batched, sequential, "threads={threads}");
        }
    }

    #[test]
    fn more_chunks_than_dimensions_is_tolerated() {
        let (model, queries) = setup(6, 2, 4);
        let scan = scan_chunk_faults(&model, &queries[0], 0, 3 * DIM, 1.0);
        assert_eq!(scan.inspected, DIM, "empty chunks are skipped");
    }

    #[test]
    fn raw_batch_paths_match_encode_then_score() {
        use crate::encoding::{Encoder, RecordEncoder};
        let cfg = HdcConfig::builder()
            .dimension(1000)
            .seed(11)
            .build()
            .expect("valid");
        let encoder = RecordEncoder::new(&cfg, 6);
        let rows: Vec<Vec<f64>> = (0..37)
            .map(|i| {
                (0..6)
                    .map(|k| ((i * 7 + k * 3) % 10) as f64 / 9.0)
                    .collect()
            })
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let encoded: Vec<_> = refs.iter().map(|r| encoder.encode(r)).collect();
        let model = TrainedModel::from_classes(encoded[..3].to_vec());
        let beta = HdcConfig::default().softmax_beta;

        let seq_pred: Vec<_> = encoded.iter().map(|q| model.predict(q)).collect();
        let seq_scores: Vec<_> = encoded
            .iter()
            .map(|q| Confidence::evaluate(&model, q, beta))
            .collect();

        for threads in [1, 4] {
            let eng = engine(threads, 5);
            assert_eq!(eng.encode_batch(&encoder, &refs), encoded);
            assert_eq!(eng.predict_raw_batch(&encoder, &model, &refs), seq_pred);
            let scores = eng.evaluate_raw_batch(&encoder, &model, &refs, beta);
            for (score, reference) in scores.iter().zip(&seq_scores) {
                assert_eq!(score.confidence, *reference);
                assert_eq!(
                    score.confidence.confidence.to_bits(),
                    reference.confidence.to_bits()
                );
            }
        }
    }

    #[test]
    fn fold_shards_totals_are_partition_independent() {
        let inputs: Vec<u64> = (1..=1000).collect();
        let expected: u64 = inputs.iter().sum();
        for threads in [1, 2, 4, 8] {
            for shard_size in [1, 7, 32, 2000] {
                let partials = engine(threads, shard_size).fold_shards(
                    &inputs,
                    || 0u64,
                    |state, shard| *state += shard.iter().sum::<u64>(),
                );
                assert!(partials.len() <= threads.max(1));
                assert_eq!(
                    partials.iter().sum::<u64>(),
                    expected,
                    "threads={threads} shard={shard_size}"
                );
            }
        }
    }

    #[test]
    fn fold_shards_on_empty_input_returns_one_untouched_state() {
        let partials = engine(4, 8).fold_shards(&[] as &[u64], || 7u64, |_, _| unreachable!());
        assert_eq!(partials, vec![7]);
    }

    #[test]
    fn threads_beyond_shards_are_harmless() {
        let (model, queries) = setup(7, 3, 5);
        let sequential: Vec<_> = queries.iter().map(|q| model.predict(q)).collect();
        assert_eq!(
            engine(64, 2).predict_batch(&model, &queries),
            sequential,
            "more threads than shards"
        );
    }
}
