use crate::batch::BatchEngine;
use crate::config::HdcConfig;
use crate::encoding::{Encoder, RecordEncoder};
use crate::model::TrainedModel;

/// Minimal view of a labelled sample so the pipeline does not depend on the
/// dataset crate. `synthdata::Sample` satisfies it structurally via the
/// blanket conversion below.
mod synthdata_like {
    /// Anything that exposes normalized features and a label.
    pub trait Labeled {
        /// Feature vector in `[0, 1]`.
        fn features(&self) -> &[f64];
        /// Class label.
        fn label(&self) -> usize;
    }

    impl Labeled for (Vec<f64>, usize) {
        fn features(&self) -> &[f64] {
            &self.0
        }
        fn label(&self) -> usize {
            self.1
        }
    }

    impl Labeled for synthdata::Sample {
        fn features(&self) -> &[f64] {
            &self.features
        }
        fn label(&self) -> usize {
            self.label
        }
    }
}

pub use synthdata_like::Labeled;

/// End-to-end HDC classifier: record encoder + trained binary model.
///
/// This is the convenience entry point used by the examples; experiments
/// that attack or recover the model work with the parts
/// ([`crate::RecordEncoder`], [`crate::TrainedModel`],
/// [`crate::RecoveryEngine`]) directly.
///
/// # Example
///
/// ```
/// use robusthd::{HdcClassifier, HdcConfig};
/// use synthdata::{DatasetSpec, GeneratorConfig};
///
/// # fn main() -> Result<(), robusthd::ConfigError> {
/// let data = GeneratorConfig::new(2).generate(&DatasetSpec::pecan().with_sizes(120, 60));
/// let config = HdcConfig::builder().dimension(2048).build()?;
/// let classifier = HdcClassifier::fit(&config, &data.train);
/// assert!(classifier.accuracy(&data.test) > 0.7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct HdcClassifier {
    encoder: RecordEncoder,
    model: TrainedModel,
    num_classes: usize,
    batch: BatchEngine,
}

impl HdcClassifier {
    /// Encodes and trains on labelled samples.
    ///
    /// # Panics
    ///
    /// Panics if `train` is empty or samples disagree on feature count.
    pub fn fit<S: Labeled>(config: &HdcConfig, train: &[S]) -> Self {
        assert!(!train.is_empty(), "training set must not be empty");
        let features = train[0].features().len();
        let num_classes = train.iter().map(|s| s.label()).max().expect("nonempty") + 1;
        let encoder = RecordEncoder::new(config, features);
        let batch = BatchEngine::from_env();
        // Collect feature views first so the encoding shards over the batch
        // engine without requiring `S: Sync`.
        let rows: Vec<&[f64]> = train.iter().map(|s| s.features()).collect();
        let encoded = batch.encode_batch(&encoder, &rows);
        let labels: Vec<_> = train.iter().map(|s| s.label()).collect();
        let model = TrainedModel::train_with(
            &encoded,
            &labels,
            num_classes,
            config,
            &crate::TrainConfig::from_env(),
            &batch,
        );
        Self {
            encoder,
            model,
            num_classes,
            batch,
        }
    }

    /// Predicts the label of one raw feature vector.
    ///
    /// # Panics
    ///
    /// Panics if the feature count differs from the training data.
    pub fn predict(&self, features: &[f64]) -> usize {
        self.model.predict(&self.encoder.encode(features))
    }

    /// Predicts labels for a batch of raw feature vectors through the
    /// fused encode→score path of the sharded [`BatchEngine`] — no
    /// intermediate `Vec<BinaryHypervector>` is materialized.
    /// Bit-identical to mapping [`Self::predict`] over the batch, at any
    /// thread count.
    ///
    /// # Panics
    ///
    /// Panics if any feature count differs from the training data.
    pub fn predict_batch(&self, features_batch: &[Vec<f64>]) -> Vec<usize> {
        let rows: Vec<&[f64]> = features_batch.iter().map(Vec::as_slice).collect();
        self.batch
            .predict_raw_batch(&self.encoder, &self.model, &rows)
    }

    /// Fused raw-features → prediction over borrowed feature slices
    /// (avoids cloning rows out of columnar or arena-backed storage).
    ///
    /// # Panics
    ///
    /// Panics if any feature count differs from the training data.
    pub fn predict_raw_batch(&self, rows: &[&[f64]]) -> Vec<usize> {
        self.batch
            .predict_raw_batch(&self.encoder, &self.model, rows)
    }

    /// Accuracy over labelled samples, scored through the fused batch
    /// path.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn accuracy<S: Labeled>(&self, samples: &[S]) -> f64 {
        assert!(!samples.is_empty(), "cannot score an empty evaluation set");
        let rows: Vec<&[f64]> = samples.iter().map(|s| s.features()).collect();
        let predictions = self
            .batch
            .predict_raw_batch(&self.encoder, &self.model, &rows);
        let correct = predictions
            .iter()
            .zip(samples.iter())
            .filter(|(p, s)| **p == s.label())
            .count();
        correct as f64 / samples.len() as f64
    }

    /// The batch engine used for batched prediction and scoring.
    pub fn batch_engine(&self) -> &BatchEngine {
        &self.batch
    }

    /// Replaces the batch engine's tuning (thread count, shard size).
    pub fn set_batch_config(&mut self, config: crate::BatchConfig) {
        self.batch.set_config(config);
    }

    /// The encoder (shared by training and inference).
    pub fn encoder(&self) -> &RecordEncoder {
        &self.encoder
    }

    /// The trained model.
    pub fn model(&self) -> &TrainedModel {
        &self.model
    }

    /// Mutable model access for attack/recovery experiments.
    pub fn model_mut(&mut self) -> &mut TrainedModel {
        &mut self.model
    }

    /// Number of classes seen at fit time.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_and_predict_on_tuples() {
        // A separable toy problem in raw feature space.
        let train: Vec<(Vec<f64>, usize)> = (0..40)
            .map(|i| {
                let label = i % 2;
                let base = if label == 0 { 0.2 } else { 0.8 };
                let features = (0..6).map(|j| base + 0.01 * ((i + j) % 5) as f64).collect();
                (features, label)
            })
            .collect();
        let config = HdcConfig::builder()
            .dimension(2048)
            .seed(3)
            .build()
            .expect("valid");
        let clf = HdcClassifier::fit(&config, &train);
        assert_eq!(clf.num_classes(), 2);
        assert!(clf.accuracy(&train) > 0.95);
        assert_eq!(clf.predict(&[0.2; 6]), 0);
        assert_eq!(clf.predict(&[0.8; 6]), 1);
    }

    #[test]
    fn batched_prediction_matches_sequential() {
        let train: Vec<(Vec<f64>, usize)> = (0..40)
            .map(|i| {
                let label = i % 2;
                let base = if label == 0 { 0.2 } else { 0.8 };
                let features = (0..6).map(|j| base + 0.01 * ((i + j) % 5) as f64).collect();
                (features, label)
            })
            .collect();
        let config = HdcConfig::builder()
            .dimension(2048)
            .seed(11)
            .build()
            .expect("valid");
        let mut clf = HdcClassifier::fit(&config, &train);
        let queries: Vec<Vec<f64>> = train.iter().map(|(f, _)| f.clone()).collect();
        let sequential: Vec<usize> = queries.iter().map(|f| clf.predict(f)).collect();
        for threads in [1, 4] {
            clf.set_batch_config(
                crate::BatchConfig::builder()
                    .threads(threads)
                    .shard_size(5)
                    .build()
                    .expect("valid"),
            );
            assert_eq!(clf.predict_batch(&queries), sequential);
        }
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_training_set_panics() {
        let config = HdcConfig::default();
        HdcClassifier::fit::<(Vec<f64>, usize)>(&config, &[]);
    }
}
