//! Class-hypervector models: one-shot bundling, retraining, prediction, and
//! the raw memory image that fault injection targets.

use crate::config::HdcConfig;
use hypervector::{BinaryHypervector, BundleAccumulator, IntHypervector, PackedBits, Precision};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A trained binary HDC model: one class hypervector per label.
///
/// This is the model RobustHD deploys — the paper always uses the binary
/// (1-bit) model in production because it maximizes robustness (§3.2).
///
/// The model exposes its packed memory image
/// ([`TrainedModel::to_memory_image`] /
/// [`TrainedModel::load_memory_image`]) so fault injectors can attack the
/// stored bits exactly as a memory attack would.
///
/// # Example
///
/// ```
/// use hypervector::random::HypervectorSampler;
/// use robusthd::{HdcConfig, TrainedModel};
///
/// // Two well-separated synthetic classes in hyperspace.
/// let mut sampler = HypervectorSampler::seed_from(1);
/// let protos = [sampler.binary(2048), sampler.binary(2048)];
/// let mut encoded = Vec::new();
/// let mut labels = Vec::new();
/// for i in 0..40 {
///     let class = i % 2;
///     encoded.push(sampler.flip_noise(&protos[class], 0.15));
///     labels.push(class);
/// }
/// let config = HdcConfig::builder().dimension(2048).build()?;
/// let model = TrainedModel::train(&encoded, &labels, 2, &config);
/// assert_eq!(model.predict(&encoded[0]), 0);
/// assert_eq!(model.predict(&encoded[1]), 1);
/// # Ok::<(), robusthd::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrainedModel {
    classes: Vec<BinaryHypervector>,
    dim: usize,
}

impl TrainedModel {
    /// Trains a binary model: one-shot bundling of every encoded sample into
    /// its class accumulator, followed by `config.retrain_epochs` perceptron
    /// passes (mispredicted samples are added to their true class and
    /// subtracted from the predicted one).
    ///
    /// # Panics
    ///
    /// Panics if the inputs are empty, lengths differ, a label is out of
    /// range, or an encoded vector has the wrong dimension.
    pub fn train(
        encoded: &[BinaryHypervector],
        labels: &[usize],
        num_classes: usize,
        config: &HdcConfig,
    ) -> Self {
        let accumulators = train_accumulators(encoded, labels, num_classes, config);
        Self::from_accumulators(&accumulators)
    }

    /// Thresholds trained accumulators into a binary model.
    ///
    /// # Panics
    ///
    /// Panics if `accumulators` is empty.
    pub fn from_accumulators(accumulators: &[BundleAccumulator]) -> Self {
        assert!(!accumulators.is_empty(), "need at least one class");
        let classes: Vec<BinaryHypervector> = accumulators.iter().map(|a| a.to_binary()).collect();
        let dim = classes[0].dim();
        Self { classes, dim }
    }

    /// Builds a model directly from class hypervectors.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is empty or dimensions are inconsistent.
    pub fn from_classes(classes: Vec<BinaryHypervector>) -> Self {
        assert!(!classes.is_empty(), "need at least one class");
        let dim = classes[0].dim();
        assert!(
            classes.iter().all(|c| c.dim() == dim),
            "class hypervectors must share one dimension"
        );
        Self { classes, dim }
    }

    /// Hypervector dimensionality `D`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of classes `k`.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// All class hypervectors.
    pub fn classes(&self) -> &[BinaryHypervector] {
        &self.classes
    }

    /// One class hypervector.
    ///
    /// # Panics
    ///
    /// Panics if `label` is out of range.
    pub fn class(&self, label: usize) -> &BinaryHypervector {
        &self.classes[label]
    }

    /// Mutable access to one class hypervector (used by the recovery engine
    /// and by direct fault injection).
    ///
    /// # Panics
    ///
    /// Panics if `label` is out of range.
    pub fn class_mut(&mut self, label: usize) -> &mut BinaryHypervector {
        &mut self.classes[label]
    }

    /// Normalized similarity of `query` to every class, in class order.
    ///
    /// # Panics
    ///
    /// Panics if the query dimension differs from the model's.
    pub fn similarities(&self, query: &BinaryHypervector) -> Vec<f64> {
        self.classes.iter().map(|c| c.similarity(query)).collect()
    }

    /// Predicted label: the class with the highest Hamming similarity (ties
    /// resolve to the lowest label).
    ///
    /// # Panics
    ///
    /// Panics if the query dimension differs from the model's.
    pub fn predict(&self, query: &BinaryHypervector) -> usize {
        self.classes
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| c.hamming_distance(query))
            .map(|(i, _)| i)
            .expect("model has at least one class")
    }

    /// Serializes the model into its stored form: the bit-concatenation of
    /// all class hypervectors (`k × D` bits). This is the image a memory
    /// attack corrupts.
    pub fn to_memory_image(&self) -> PackedBits {
        let mut image = PackedBits::zeros(self.num_classes() * self.dim);
        for (c, class) in self.classes.iter().enumerate() {
            for i in 0..self.dim {
                if class.get(i) {
                    image.set(c * self.dim + i, true);
                }
            }
        }
        image
    }

    /// Replaces the model contents from a (possibly corrupted) memory image
    /// produced by [`TrainedModel::to_memory_image`].
    ///
    /// # Panics
    ///
    /// Panics if the image size does not equal `num_classes × dim` bits.
    pub fn load_memory_image(&mut self, image: &PackedBits) {
        assert_eq!(
            image.len(),
            self.num_classes() * self.dim,
            "memory image has {} bits, expected {}",
            image.len(),
            self.num_classes() * self.dim
        );
        for (c, class) in self.classes.iter_mut().enumerate() {
            for i in 0..class.dim() {
                class.set(i, image.get(c * class.dim() + i));
            }
        }
    }
}

/// A low-precision integer HDC model (the 2-bit rows of Table 1).
///
/// Stores `b`-bit signed elements per dimension; similarity is the bipolar
/// dot product. Less robust than [`TrainedModel`] because a flip of a stored
/// high-order bit moves an element by a large magnitude.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntModel {
    classes: Vec<IntHypervector>,
    dim: usize,
    precision: Precision,
}

impl IntModel {
    /// Trains an integer model at the given element precision using the same
    /// bundling + retraining procedure as [`TrainedModel::train`].
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`TrainedModel::train`].
    pub fn train(
        encoded: &[BinaryHypervector],
        labels: &[usize],
        num_classes: usize,
        config: &HdcConfig,
        precision: Precision,
    ) -> Self {
        let accumulators = train_accumulators(encoded, labels, num_classes, config);
        let classes: Vec<IntHypervector> =
            accumulators.iter().map(|a| a.to_int(precision)).collect();
        let dim = classes[0].dim();
        Self {
            classes,
            dim,
            precision,
        }
    }

    /// Hypervector dimensionality `D`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Element precision.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// All class hypervectors.
    pub fn classes(&self) -> &[IntHypervector] {
        &self.classes
    }

    /// Predicted label by bipolar dot product (ties resolve to the lowest
    /// label).
    ///
    /// # Panics
    ///
    /// Panics if the query dimension differs from the model's.
    pub fn predict(&self, query: &BinaryHypervector) -> usize {
        self.classes
            .iter()
            .enumerate()
            .max_by_key(|(i, c)| (c.dot_binary(query), std::cmp::Reverse(*i)))
            .map(|(i, _)| i)
            .expect("model has at least one class")
    }

    /// Serializes the model's stored form: `k × D × b` bits of packed
    /// `b`-bit fields.
    pub fn to_memory_image(&self) -> PackedBits {
        let bits_per_class = self.dim * self.precision.bits() as usize;
        let mut image = PackedBits::zeros(self.num_classes() * bits_per_class);
        for (c, class) in self.classes.iter().enumerate() {
            let packed = class.pack();
            for i in 0..packed.len() {
                if packed.get(i) {
                    image.set(c * bits_per_class + i, true);
                }
            }
        }
        image
    }

    /// Replaces the model from a (possibly corrupted) image produced by
    /// [`IntModel::to_memory_image`].
    ///
    /// # Panics
    ///
    /// Panics if the image size does not match.
    pub fn load_memory_image(&mut self, image: &PackedBits) {
        let bits_per_class = self.dim * self.precision.bits() as usize;
        assert_eq!(
            image.len(),
            self.num_classes() * bits_per_class,
            "memory image size mismatch"
        );
        for (c, class) in self.classes.iter_mut().enumerate() {
            let mut packed = PackedBits::zeros(bits_per_class);
            for i in 0..bits_per_class {
                if image.get(c * bits_per_class + i) {
                    packed.set(i, true);
                }
            }
            *class = IntHypervector::from_packed(&packed, self.dim, self.precision);
        }
    }
}

/// Shared training core: one-shot bundling plus perceptron retraining over
/// the accumulators.
fn train_accumulators(
    encoded: &[BinaryHypervector],
    labels: &[usize],
    num_classes: usize,
    config: &HdcConfig,
) -> Vec<BundleAccumulator> {
    assert!(!encoded.is_empty(), "training set must not be empty");
    assert_eq!(
        encoded.len(),
        labels.len(),
        "encoded samples and labels must align"
    );
    assert!(num_classes > 0, "need at least one class");
    let dim = encoded[0].dim();
    for (i, hv) in encoded.iter().enumerate() {
        assert_eq!(hv.dim(), dim, "sample {i} has dimension {}", hv.dim());
    }
    for (i, &l) in labels.iter().enumerate() {
        assert!(l < num_classes, "label {l} of sample {i} out of range");
    }

    // One-shot bundling.
    let mut accumulators: Vec<BundleAccumulator> = (0..num_classes)
        .map(|_| BundleAccumulator::new(dim))
        .collect();
    for (hv, &label) in encoded.iter().zip(labels) {
        accumulators[label].add(hv);
    }

    // Perceptron-style retraining against a per-epoch binary snapshot.
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(0x9e37_79b9));
    let mut order: Vec<usize> = (0..encoded.len()).collect();
    for _ in 0..config.retrain_epochs {
        let snapshot = TrainedModel::from_accumulators(&accumulators);
        order.shuffle(&mut rng);
        let mut mistakes = 0usize;
        for &idx in &order {
            let predicted = snapshot.predict(&encoded[idx]);
            let truth = labels[idx];
            if predicted != truth {
                accumulators[truth].add(&encoded[idx]);
                accumulators[predicted].subtract(&encoded[idx]);
                mistakes += 1;
            }
        }
        if mistakes == 0 {
            break;
        }
    }
    accumulators
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypervector::random::HypervectorSampler;

    /// Builds a toy hyperspace task: `k` noisy clusters around random
    /// prototypes.
    fn toy_task(
        k: usize,
        per_class: usize,
        dim: usize,
        noise: f64,
        seed: u64,
    ) -> (Vec<BinaryHypervector>, Vec<usize>) {
        let mut sampler = HypervectorSampler::seed_from(seed);
        let protos: Vec<_> = (0..k).map(|_| sampler.binary(dim)).collect();
        let mut encoded = Vec::new();
        let mut labels = Vec::new();
        for i in 0..k * per_class {
            let class = i % k;
            encoded.push(sampler.flip_noise(&protos[class], noise));
            labels.push(class);
        }
        (encoded, labels)
    }

    fn config(dim: usize) -> HdcConfig {
        HdcConfig::builder().dimension(dim).build().expect("valid")
    }

    #[test]
    fn one_shot_model_classifies_separable_task() {
        let (encoded, labels) = toy_task(4, 20, 4096, 0.2, 1);
        let cfg = HdcConfig::builder()
            .dimension(4096)
            .retrain_epochs(0)
            .build()
            .expect("valid");
        let model = TrainedModel::train(&encoded, &labels, 4, &cfg);
        let correct = encoded
            .iter()
            .zip(&labels)
            .filter(|(hv, &l)| model.predict(hv) == l)
            .count();
        assert_eq!(correct, encoded.len(), "separable task must be learned");
    }

    #[test]
    fn retraining_does_not_hurt() {
        let (encoded, labels) = toy_task(6, 15, 2048, 0.3, 2);
        let acc = |epochs: usize| {
            let cfg = HdcConfig::builder()
                .dimension(2048)
                .retrain_epochs(epochs)
                .build()
                .expect("valid");
            let model = TrainedModel::train(&encoded, &labels, 6, &cfg);
            encoded
                .iter()
                .zip(&labels)
                .filter(|(hv, &l)| model.predict(hv) == l)
                .count()
        };
        assert!(acc(3) >= acc(0));
    }

    #[test]
    fn memory_image_roundtrips() {
        let (encoded, labels) = toy_task(3, 10, 1000, 0.2, 3);
        let model = TrainedModel::train(&encoded, &labels, 3, &config(1000));
        let image = model.to_memory_image();
        assert_eq!(image.len(), 3000);
        let mut copy = model.clone();
        copy.load_memory_image(&image);
        assert_eq!(copy, model);
    }

    #[test]
    fn corrupted_image_changes_model() {
        let (encoded, labels) = toy_task(2, 10, 512, 0.2, 4);
        let model = TrainedModel::train(&encoded, &labels, 2, &config(512));
        let mut image = model.to_memory_image();
        image.flip(0);
        image.flip(700);
        let mut corrupted = model.clone();
        corrupted.load_memory_image(&image);
        assert_eq!(corrupted.class(0).hamming_distance(model.class(0)), 1);
        assert_eq!(corrupted.class(1).hamming_distance(model.class(1)), 1);
    }

    #[test]
    fn predict_breaks_ties_to_lowest_label() {
        let zero = BinaryHypervector::zeros(64);
        let model = TrainedModel::from_classes(vec![zero.clone(), zero.clone()]);
        assert_eq!(model.predict(&zero), 0);
    }

    #[test]
    fn similarities_align_with_prediction() {
        let (encoded, labels) = toy_task(5, 10, 2048, 0.25, 5);
        let model = TrainedModel::train(&encoded, &labels, 5, &config(2048));
        for hv in encoded.iter().take(10) {
            let sims = model.similarities(hv);
            let argmax = sims
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(i, _)| i)
                .expect("nonempty");
            assert_eq!(model.predict(hv), argmax);
        }
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn training_on_empty_set_panics() {
        TrainedModel::train(&[], &[], 2, &config(64));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_label_panics() {
        let hv = BinaryHypervector::zeros(64);
        TrainedModel::train(&[hv], &[5], 2, &config(64));
    }

    #[test]
    fn int_model_learns_and_roundtrips_image() {
        let (encoded, labels) = toy_task(3, 15, 1024, 0.2, 6);
        let p = Precision::new(2).expect("valid");
        let model = IntModel::train(&encoded, &labels, 3, &config(1024), p);
        let correct = encoded
            .iter()
            .zip(&labels)
            .filter(|(hv, &l)| model.predict(hv) == l)
            .count();
        assert!(correct >= encoded.len() * 9 / 10);

        let image = model.to_memory_image();
        assert_eq!(image.len(), 3 * 1024 * 2);
        let mut copy = model.clone();
        copy.load_memory_image(&image);
        assert_eq!(copy, model);
    }

    #[test]
    fn int_model_msb_corruption_perturbs_elements() {
        let (encoded, labels) = toy_task(2, 10, 256, 0.2, 7);
        let p = Precision::new(4).expect("valid");
        let model = IntModel::train(&encoded, &labels, 2, &config(256), p);
        let mut image = model.to_memory_image();
        image.flip(3); // MSB of element 0 of class 0
        let mut corrupted = model.clone();
        corrupted.load_memory_image(&image);
        let delta = (corrupted.classes()[0].values()[0] - model.classes()[0].values()[0]).abs();
        assert_eq!(delta, 8, "MSB flip must move a 4-bit element by 2^3");
    }

    #[test]
    fn binary_and_int1_models_predict_identically() {
        let (encoded, labels) = toy_task(4, 10, 2048, 0.25, 8);
        let cfg = config(2048);
        let binary = TrainedModel::train(&encoded, &labels, 4, &cfg);
        let int1 = IntModel::train(&encoded, &labels, 4, &cfg, Precision::BINARY);
        for hv in encoded.iter().take(20) {
            assert_eq!(binary.predict(hv), int1.predict(hv));
        }
    }
}
