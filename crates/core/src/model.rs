//! Class-hypervector models: one-shot bundling, retraining, prediction, and
//! the raw memory image that fault injection targets.

use crate::batch::BatchEngine;
use crate::config::{HdcConfig, TrainConfig};
use hypervector::similarity::PackedClasses;
use hypervector::{BinaryHypervector, BundleAccumulator, IntHypervector, PackedBits, Precision};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::OnceLock;

/// A trained binary HDC model: one class hypervector per label.
///
/// This is the model RobustHD deploys — the paper always uses the binary
/// (1-bit) model in production because it maximizes robustness (§3.2).
///
/// The model exposes its packed memory image
/// ([`TrainedModel::to_memory_image`] /
/// [`TrainedModel::load_memory_image`]) so fault injectors can attack the
/// stored bits exactly as a memory attack would.
///
/// # Example
///
/// ```
/// use hypervector::random::HypervectorSampler;
/// use robusthd::{HdcConfig, TrainedModel};
///
/// // Two well-separated synthetic classes in hyperspace.
/// let mut sampler = HypervectorSampler::seed_from(1);
/// let protos = [sampler.binary(2048), sampler.binary(2048)];
/// let mut encoded = Vec::new();
/// let mut labels = Vec::new();
/// for i in 0..40 {
///     let class = i % 2;
///     encoded.push(sampler.flip_noise(&protos[class], 0.15));
///     labels.push(class);
/// }
/// let config = HdcConfig::builder().dimension(2048).build()?;
/// let model = TrainedModel::train(&encoded, &labels, 2, &config);
/// assert_eq!(model.predict(&encoded[0]), 0);
/// assert_eq!(model.predict(&encoded[1]), 1);
/// # Ok::<(), robusthd::ConfigError>(())
/// ```
#[derive(Clone, Serialize, Deserialize)]
pub struct TrainedModel {
    classes: Vec<BinaryHypervector>,
    dim: usize,
    /// Lazily built class-major packed copy of the model, shared by
    /// [`TrainedModel::predict`] / [`TrainedModel::similarities`] and the
    /// batch engine's scoring paths. Dropped whenever a class mutates
    /// ([`TrainedModel::class_mut`], [`TrainedModel::load_memory_image`])
    /// and never serialized — the stored form stays `classes` + `dim`.
    #[serde(skip)]
    packed: OnceLock<PackedClasses>,
}

impl PartialEq for TrainedModel {
    fn eq(&self, other: &Self) -> bool {
        // The packed cache is derived state; equality is the classes.
        self.classes == other.classes && self.dim == other.dim
    }
}

impl Eq for TrainedModel {}

impl fmt::Debug for TrainedModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TrainedModel")
            .field("classes", &self.classes)
            .field("dim", &self.dim)
            .finish()
    }
}

impl TrainedModel {
    /// Trains a binary model: one-shot bundling of every encoded sample into
    /// its class accumulator, followed by `config.retrain_epochs` perceptron
    /// passes (mispredicted samples are added to their true class and
    /// subtracted from the predicted one).
    ///
    /// Runs through the parallel bit-sliced training engine
    /// ([`crate::train`]) configured from the environment
    /// (`ROBUSTHD_TRAIN_FAST`, `ROBUSTHD_THREADS`); the result is
    /// bit-identical at any setting.
    ///
    /// # Panics
    ///
    /// Panics if the inputs are empty, lengths differ, a label is out of
    /// range, or an encoded vector has the wrong dimension.
    pub fn train(
        encoded: &[BinaryHypervector],
        labels: &[usize],
        num_classes: usize,
        config: &HdcConfig,
    ) -> Self {
        Self::train_with(
            encoded,
            labels,
            num_classes,
            config,
            &TrainConfig::from_env(),
            &BatchEngine::from_env(),
        )
    }

    /// [`TrainedModel::train`] with an explicit training path and batch
    /// engine — the entry point for callers that already hold an engine
    /// (the pipeline and stream classifiers) and for differential tests
    /// pinning the fast and reference paths against each other.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`TrainedModel::train`].
    pub fn train_with(
        encoded: &[BinaryHypervector],
        labels: &[usize],
        num_classes: usize,
        config: &HdcConfig,
        train: &TrainConfig,
        engine: &BatchEngine,
    ) -> Self {
        let accumulators =
            crate::train::train_accumulators(encoded, labels, num_classes, config, train, engine);
        Self::from_accumulators(&accumulators)
    }

    /// Thresholds trained accumulators into a binary model.
    ///
    /// # Panics
    ///
    /// Panics if `accumulators` is empty.
    pub fn from_accumulators(accumulators: &[BundleAccumulator]) -> Self {
        assert!(!accumulators.is_empty(), "need at least one class");
        let classes: Vec<BinaryHypervector> = accumulators.iter().map(|a| a.to_binary()).collect();
        let dim = classes[0].dim();
        Self {
            classes,
            dim,
            packed: OnceLock::new(),
        }
    }

    /// Builds a model directly from class hypervectors.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is empty or dimensions are inconsistent.
    pub fn from_classes(classes: Vec<BinaryHypervector>) -> Self {
        assert!(!classes.is_empty(), "need at least one class");
        let dim = classes[0].dim(); // audit:allow(panic): non-emptiness asserted above
        assert!(
            classes.iter().all(|c| c.dim() == dim),
            "class hypervectors must share one dimension"
        );
        Self {
            classes,
            dim,
            packed: OnceLock::new(),
        }
    }

    /// Hypervector dimensionality `D`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of classes `k`.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// All class hypervectors.
    pub fn classes(&self) -> &[BinaryHypervector] {
        &self.classes
    }

    /// One class hypervector.
    ///
    /// # Panics
    ///
    /// Panics if `label` is out of range.
    pub fn class(&self, label: usize) -> &BinaryHypervector {
        &self.classes[label] // audit:allow(panic): documented panic: label out of range
    }

    /// Mutable access to one class hypervector (used by the recovery engine
    /// and by direct fault injection).
    ///
    /// # Panics
    ///
    /// Panics if `label` is out of range.
    pub fn class_mut(&mut self, label: usize) -> &mut BinaryHypervector {
        // The caller may rewrite stored bits; the packed scoring copy is
        // stale the moment they do.
        self.packed.take();
        &mut self.classes[label] // audit:allow(panic): documented panic: label out of range
    }

    /// The class-major packed copy of the model used by the fused scoring
    /// kernel ([`PackedClasses::hamming_all_into`]), built on first use and
    /// cached until a class mutates.
    pub fn packed(&self) -> &PackedClasses {
        self.packed
            .get_or_init(|| PackedClasses::from_classes(&self.classes))
    }

    /// Normalized similarity of `query` to every class, in class order —
    /// computed from one fused pass over the packed classes, with the same
    /// float expression as [`BinaryHypervector::similarity`].
    ///
    /// # Panics
    ///
    /// Panics if the query dimension differs from the model's.
    pub fn similarities(&self, query: &BinaryHypervector) -> Vec<f64> {
        let mut distances = Vec::with_capacity(self.classes.len());
        self.packed().hamming_all_into(query, &mut distances);
        distances
            .iter()
            .map(|&d| {
                if self.dim == 0 {
                    1.0
                } else {
                    1.0 - d as f64 / self.dim as f64
                }
            })
            .collect()
    }

    /// Predicted label: the class with the highest Hamming similarity (ties
    /// resolve to the lowest label), scored through the fused
    /// [`PackedClasses::hamming_all_into`] kernel.
    ///
    /// # Panics
    ///
    /// Panics if the query dimension differs from the model's.
    pub fn predict(&self, query: &BinaryHypervector) -> usize {
        let mut distances = Vec::with_capacity(self.classes.len());
        self.packed().hamming_all_into(query, &mut distances);
        argmin_first(&distances)
    }

    /// Serializes the model into its stored form: the bit-concatenation of
    /// all class hypervectors (`k × D` bits). This is the image a memory
    /// attack corrupts. Each class is spliced in with a word-level copy
    /// ([`PackedBits::write_bits`]), not bit by bit.
    pub fn to_memory_image(&self) -> PackedBits {
        let mut image = PackedBits::zeros(self.num_classes() * self.dim);
        for (c, class) in self.classes.iter().enumerate() {
            image.write_bits(c * self.dim, class.bits());
        }
        image
    }

    /// Replaces the model contents from a (possibly corrupted) memory image
    /// produced by [`TrainedModel::to_memory_image`], extracting each class
    /// with a word-level copy ([`PackedBits::extract_bits`]).
    ///
    /// # Panics
    ///
    /// Panics if the image size does not equal `num_classes × dim` bits.
    pub fn load_memory_image(&mut self, image: &PackedBits) {
        assert_eq!(
            image.len(),
            self.num_classes() * self.dim,
            "memory image has {} bits, expected {}",
            image.len(),
            self.num_classes() * self.dim
        );
        self.packed.take();
        for (c, class) in self.classes.iter_mut().enumerate() {
            *class = BinaryHypervector::from_bits(image.extract_bits(c * self.dim, self.dim));
        }
    }
}

/// First index of the minimum value — [`Iterator::min_by_key`]'s tie-break,
/// and therefore the lowest-label rule every prediction path shares.
pub(crate) fn argmin_first(distances: &[usize]) -> usize {
    let mut best = 0;
    for (i, &d) in distances.iter().enumerate().skip(1) {
        // audit:allow(panic): best is a prior index of the same slice
        if d < distances[best] {
            best = i;
        }
    }
    best
}

/// A low-precision integer HDC model (the 2-bit rows of Table 1).
///
/// Stores `b`-bit signed elements per dimension; similarity is the bipolar
/// dot product. Less robust than [`TrainedModel`] because a flip of a stored
/// high-order bit moves an element by a large magnitude.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntModel {
    classes: Vec<IntHypervector>,
    dim: usize,
    precision: Precision,
}

impl IntModel {
    /// Trains an integer model at the given element precision using the same
    /// bundling + retraining procedure as [`TrainedModel::train`].
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`TrainedModel::train`].
    pub fn train(
        encoded: &[BinaryHypervector],
        labels: &[usize],
        num_classes: usize,
        config: &HdcConfig,
        precision: Precision,
    ) -> Self {
        Self::train_with(
            encoded,
            labels,
            num_classes,
            config,
            precision,
            &TrainConfig::from_env(),
            &BatchEngine::from_env(),
        )
    }

    /// [`IntModel::train`] with an explicit training path and batch engine
    /// (see [`TrainedModel::train_with`]).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`TrainedModel::train`].
    pub fn train_with(
        encoded: &[BinaryHypervector],
        labels: &[usize],
        num_classes: usize,
        config: &HdcConfig,
        precision: Precision,
        train: &TrainConfig,
        engine: &BatchEngine,
    ) -> Self {
        let accumulators =
            crate::train::train_accumulators(encoded, labels, num_classes, config, train, engine);
        let classes: Vec<IntHypervector> =
            accumulators.iter().map(|a| a.to_int(precision)).collect();
        let dim = classes[0].dim();
        Self {
            classes,
            dim,
            precision,
        }
    }

    /// Hypervector dimensionality `D`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Element precision.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// All class hypervectors.
    pub fn classes(&self) -> &[IntHypervector] {
        &self.classes
    }

    /// Predicted label by bipolar dot product (ties resolve to the lowest
    /// label).
    ///
    /// # Panics
    ///
    /// Panics if the query dimension differs from the model's.
    pub fn predict(&self, query: &BinaryHypervector) -> usize {
        self.classes
            .iter()
            .enumerate()
            .max_by_key(|(i, c)| (c.dot_binary(query), std::cmp::Reverse(*i)))
            .map(|(i, _)| i)
            .expect("model has at least one class") // audit:allow(panic): construction asserts at least one class
    }

    /// Serializes the model's stored form: `k × D × b` bits of packed
    /// `b`-bit fields, each class spliced in with a word-level copy
    /// ([`PackedBits::write_bits`]).
    pub fn to_memory_image(&self) -> PackedBits {
        let bits_per_class = self.dim * self.precision.bits() as usize;
        let mut image = PackedBits::zeros(self.num_classes() * bits_per_class);
        for (c, class) in self.classes.iter().enumerate() {
            image.write_bits(c * bits_per_class, &class.pack());
        }
        image
    }

    /// Replaces the model from a (possibly corrupted) image produced by
    /// [`IntModel::to_memory_image`], extracting each class's packed fields
    /// with a word-level copy ([`PackedBits::extract_bits`]).
    ///
    /// # Panics
    ///
    /// Panics if the image size does not match.
    pub fn load_memory_image(&mut self, image: &PackedBits) {
        let bits_per_class = self.dim * self.precision.bits() as usize;
        assert_eq!(
            image.len(),
            self.num_classes() * bits_per_class,
            "memory image size mismatch"
        );
        for (c, class) in self.classes.iter_mut().enumerate() {
            let packed = image.extract_bits(c * bits_per_class, bits_per_class);
            *class = IntHypervector::from_packed(&packed, self.dim, self.precision);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypervector::random::HypervectorSampler;

    /// Builds a toy hyperspace task: `k` noisy clusters around random
    /// prototypes.
    fn toy_task(
        k: usize,
        per_class: usize,
        dim: usize,
        noise: f64,
        seed: u64,
    ) -> (Vec<BinaryHypervector>, Vec<usize>) {
        let mut sampler = HypervectorSampler::seed_from(seed);
        let protos: Vec<_> = (0..k).map(|_| sampler.binary(dim)).collect();
        let mut encoded = Vec::new();
        let mut labels = Vec::new();
        for i in 0..k * per_class {
            let class = i % k;
            encoded.push(sampler.flip_noise(&protos[class], noise));
            labels.push(class);
        }
        (encoded, labels)
    }

    fn config(dim: usize) -> HdcConfig {
        HdcConfig::builder().dimension(dim).build().expect("valid")
    }

    #[test]
    fn one_shot_model_classifies_separable_task() {
        let (encoded, labels) = toy_task(4, 20, 4096, 0.2, 1);
        let cfg = HdcConfig::builder()
            .dimension(4096)
            .retrain_epochs(0)
            .build()
            .expect("valid");
        let model = TrainedModel::train(&encoded, &labels, 4, &cfg);
        let correct = encoded
            .iter()
            .zip(&labels)
            .filter(|(hv, &l)| model.predict(hv) == l)
            .count();
        assert_eq!(correct, encoded.len(), "separable task must be learned");
    }

    #[test]
    fn retraining_does_not_hurt() {
        let (encoded, labels) = toy_task(6, 15, 2048, 0.3, 2);
        let acc = |epochs: usize| {
            let cfg = HdcConfig::builder()
                .dimension(2048)
                .retrain_epochs(epochs)
                .build()
                .expect("valid");
            let model = TrainedModel::train(&encoded, &labels, 6, &cfg);
            encoded
                .iter()
                .zip(&labels)
                .filter(|(hv, &l)| model.predict(hv) == l)
                .count()
        };
        assert!(acc(3) >= acc(0));
    }

    #[test]
    fn memory_image_roundtrips() {
        let (encoded, labels) = toy_task(3, 10, 1000, 0.2, 3);
        let model = TrainedModel::train(&encoded, &labels, 3, &config(1000));
        let image = model.to_memory_image();
        assert_eq!(image.len(), 3000);
        let mut copy = model.clone();
        copy.load_memory_image(&image);
        assert_eq!(copy, model);
    }

    #[test]
    fn corrupted_image_changes_model() {
        let (encoded, labels) = toy_task(2, 10, 512, 0.2, 4);
        let model = TrainedModel::train(&encoded, &labels, 2, &config(512));
        let mut image = model.to_memory_image();
        image.flip(0);
        image.flip(700);
        let mut corrupted = model.clone();
        corrupted.load_memory_image(&image);
        assert_eq!(corrupted.class(0).hamming_distance(model.class(0)), 1);
        assert_eq!(corrupted.class(1).hamming_distance(model.class(1)), 1);
    }

    #[test]
    fn predict_breaks_ties_to_lowest_label() {
        let zero = BinaryHypervector::zeros(64);
        let model = TrainedModel::from_classes(vec![zero.clone(), zero.clone()]);
        assert_eq!(model.predict(&zero), 0);
    }

    #[test]
    fn fused_predict_ties_match_per_class_reference() {
        // Equidistant and duplicate classes: the fused kernel must keep
        // min_by_key's first-minimum tie-break exactly.
        let mut sampler = HypervectorSampler::seed_from(40);
        let a = sampler.binary(130);
        let classes = vec![a.clone(), a.clone(), sampler.binary(130), a.clone()];
        let model = TrainedModel::from_classes(classes.clone());
        for _ in 0..50 {
            let query = sampler.binary(130);
            let reference = classes
                .iter()
                .enumerate()
                .min_by_key(|(_, c)| c.hamming_distance(&query))
                .map(|(i, _)| i)
                .expect("nonempty");
            assert_eq!(model.predict(&query), reference);
        }
    }

    #[test]
    fn fused_similarities_match_per_class_reference_bitwise() {
        let (encoded, labels) = toy_task(4, 10, 193, 0.25, 41);
        let model = TrainedModel::train(&encoded, &labels, 4, &config(193));
        for hv in encoded.iter().take(10) {
            let fused = model.similarities(hv);
            let reference: Vec<f64> = model.classes().iter().map(|c| c.similarity(hv)).collect();
            assert_eq!(fused.len(), reference.len());
            for (f, r) in fused.iter().zip(&reference) {
                assert_eq!(f.to_bits(), r.to_bits());
            }
        }
    }

    #[test]
    fn packed_cache_invalidates_on_mutation() {
        let mut sampler = HypervectorSampler::seed_from(42);
        let classes: Vec<_> = (0..2).map(|_| sampler.binary(256)).collect();
        let query = classes[1].clone();
        let mut model = TrainedModel::from_classes(classes);
        assert_eq!(model.predict(&query), 1); // builds the packed cache
        *model.class_mut(0) = query.clone(); // must drop it
        assert_eq!(model.predict(&query), 0, "stale packed cache survived");
        let image =
            TrainedModel::from_classes(vec![query.clone(), sampler.binary(256)]).to_memory_image();
        model.load_memory_image(&image); // must drop it again
        assert_eq!(model.predict(&query), 0);
    }

    #[test]
    fn unaligned_memory_image_roundtrips_and_localizes_attacks() {
        // dim % 64 != 0 puts every class after the first at an unaligned
        // image offset — the hard case for the word-level splicing.
        let (encoded, labels) = toy_task(3, 8, 193, 0.2, 43);
        let model = TrainedModel::train(&encoded, &labels, 3, &config(193));
        let image = model.to_memory_image();
        assert_eq!(image.len(), 3 * 193);
        // The image must equal the bit-by-bit concatenation.
        for c in 0..3 {
            for i in 0..193 {
                assert_eq!(image.get(c * 193 + i), model.class(c).get(i), "c={c} i={i}");
            }
        }
        let mut copy = model.clone();
        copy.load_memory_image(&image);
        assert_eq!(copy, model);
        // An attacked bit lands in exactly the right class and dimension.
        let mut attacked = image.clone();
        attacked.flip(193 + 64); // class 1, dimension 64
        let mut corrupted = model.clone();
        corrupted.load_memory_image(&attacked);
        assert_eq!(corrupted.class(0), model.class(0));
        assert_eq!(corrupted.class(2), model.class(2));
        assert_eq!(corrupted.class(1).hamming_distance(model.class(1)), 1);
        assert_ne!(corrupted.class(1).get(64), model.class(1).get(64));
    }

    #[test]
    fn similarities_align_with_prediction() {
        let (encoded, labels) = toy_task(5, 10, 2048, 0.25, 5);
        let model = TrainedModel::train(&encoded, &labels, 5, &config(2048));
        for hv in encoded.iter().take(10) {
            let sims = model.similarities(hv);
            let argmax = sims
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(i, _)| i)
                .expect("nonempty");
            assert_eq!(model.predict(hv), argmax);
        }
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn training_on_empty_set_panics() {
        TrainedModel::train(&[], &[], 2, &config(64));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_label_panics() {
        let hv = BinaryHypervector::zeros(64);
        TrainedModel::train(&[hv], &[5], 2, &config(64));
    }

    #[test]
    fn int_model_learns_and_roundtrips_image() {
        let (encoded, labels) = toy_task(3, 15, 1024, 0.2, 6);
        let p = Precision::new(2).expect("valid");
        let model = IntModel::train(&encoded, &labels, 3, &config(1024), p);
        let correct = encoded
            .iter()
            .zip(&labels)
            .filter(|(hv, &l)| model.predict(hv) == l)
            .count();
        assert!(correct >= encoded.len() * 9 / 10);

        let image = model.to_memory_image();
        assert_eq!(image.len(), 3 * 1024 * 2);
        let mut copy = model.clone();
        copy.load_memory_image(&image);
        assert_eq!(copy, model);
    }

    #[test]
    fn int_model_msb_corruption_perturbs_elements() {
        let (encoded, labels) = toy_task(2, 10, 256, 0.2, 7);
        let p = Precision::new(4).expect("valid");
        let model = IntModel::train(&encoded, &labels, 2, &config(256), p);
        let mut image = model.to_memory_image();
        image.flip(3); // MSB of element 0 of class 0
        let mut corrupted = model.clone();
        corrupted.load_memory_image(&image);
        let delta = (corrupted.classes()[0].values()[0] - model.classes()[0].values()[0]).abs();
        assert_eq!(delta, 8, "MSB flip must move a 4-bit element by 2^3");
    }

    #[test]
    fn int_model_unaligned_image_roundtrips_and_localizes_attacks() {
        // 193 dims × 2 bits = 386 bits per class: every class boundary in
        // the image is unaligned.
        let (encoded, labels) = toy_task(3, 8, 193, 0.2, 44);
        let p = Precision::new(2).expect("valid");
        let model = IntModel::train(&encoded, &labels, 3, &config(193), p);
        let image = model.to_memory_image();
        assert_eq!(image.len(), 3 * 386);
        for (c, class) in model.classes().iter().enumerate() {
            let packed = class.pack();
            for i in 0..386 {
                assert_eq!(image.get(c * 386 + i), packed.get(i), "c={c} i={i}");
            }
        }
        let mut copy = model.clone();
        copy.load_memory_image(&image);
        assert_eq!(copy, model);
        let mut attacked = image.clone();
        attacked.flip(386 + 2); // class 1, element 1's low bit
        let mut corrupted = model.clone();
        corrupted.load_memory_image(&attacked);
        assert_eq!(corrupted.classes()[0], model.classes()[0]);
        assert_eq!(corrupted.classes()[2], model.classes()[2]);
        assert_ne!(corrupted.classes()[1], model.classes()[1]);
    }

    #[test]
    fn binary_and_int1_models_predict_identically() {
        let (encoded, labels) = toy_task(4, 10, 2048, 0.25, 8);
        let cfg = config(2048);
        let binary = TrainedModel::train(&encoded, &labels, 4, &cfg);
        let int1 = IntModel::train(&encoded, &labels, 4, &cfg, Precision::BINARY);
        for hv in encoded.iter().take(20) {
            assert_eq!(binary.predict(hv), int1.predict(hv));
        }
    }
}
