//! Parallel bit-sliced training engine.
//!
//! Training a RobustHD model (paper §3) is one-shot bundling — add every
//! encoded sample into its class accumulator — followed by perceptron
//! retraining epochs that predict each sample against a *frozen* binary
//! snapshot of the accumulators and add/subtract mispredicted samples.
//! Both stages parallelize without changing a single bit:
//!
//! * **Bundling** is integer addition, which commutes: shard the samples
//!   across the [`BatchEngine`]'s scoped workers, let each worker fold its
//!   shards into per-class [`CarrySaveMajority`] bit-plane counters (a
//!   sample costs amortized `O(1)` word operations per 64 dimensions
//!   instead of 64 scalar counter updates), then fold every worker's
//!   planes back into the signed [`BundleAccumulator`] counters in
//!   worker-index order. Which worker claimed which shard is
//!   scheduling-dependent, but the merged totals are not — each class
//!   count is the same sum of the same terms.
//! * **Retraining** already predicts the whole epoch against a snapshot
//!   that never changes mid-epoch, so the epoch's predictions can be
//!   batch-scored in parallel through [`BatchEngine::predict_batch`]
//!   (itself bit-identical to sequential [`TrainedModel::predict`]); the
//!   add/subtract updates are then applied sequentially in shuffle order —
//!   identical mistakes, identical counts, identical early-exit, at any
//!   thread count. The shuffle RNG is consumed identically on both paths
//!   (one shuffle per epoch, drawn before the early-exit check).
//!
//! The differential suite (`crates/core/tests/train_differential.rs`)
//! pins fast == reference down to the raw `i64` accumulator counts across
//! thread counts, epochs, and dimensions straddling word boundaries.

use crate::batch::BatchEngine;
use crate::config::{HdcConfig, TrainConfig};
use crate::model::TrainedModel;
use hypervector::{BinaryHypervector, BundleAccumulator, CarrySaveMajority};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Shared training core: one-shot bundling plus perceptron retraining over
/// the accumulators. `train.fast_path` selects the parallel bit-sliced
/// engine or the sequential scalar reference loop — the returned
/// accumulators (and therefore the thresholded model) are bit-identical
/// either way.
///
/// Public so the differential suite can compare raw accumulator counts,
/// not just the thresholded models.
///
/// # Panics
///
/// Panics if the inputs are empty, lengths differ, a label is out of
/// range, or an encoded vector has the wrong dimension.
pub fn train_accumulators(
    encoded: &[BinaryHypervector],
    labels: &[usize],
    num_classes: usize,
    config: &HdcConfig,
    train: &TrainConfig,
    engine: &BatchEngine,
) -> Vec<BundleAccumulator> {
    assert!(!encoded.is_empty(), "training set must not be empty");
    assert_eq!(
        encoded.len(),
        labels.len(),
        "encoded samples and labels must align"
    );
    assert!(num_classes > 0, "need at least one class");
    let dim = encoded[0].dim();
    for (i, hv) in encoded.iter().enumerate() {
        assert_eq!(hv.dim(), dim, "sample {i} has dimension {}", hv.dim());
    }
    for (i, &l) in labels.iter().enumerate() {
        assert!(l < num_classes, "label {l} of sample {i} out of range");
    }

    // One-shot bundling.
    let mut accumulators = if train.fast_path {
        bundle_sharded(encoded, labels, num_classes, dim, engine)
    } else {
        bundle_reference(encoded, labels, num_classes, dim)
    };

    // Perceptron-style retraining against a per-epoch binary snapshot. The
    // snapshot is frozen for the whole epoch, so each sample's prediction
    // is independent of the epoch's updates — the fast path scores the
    // entire epoch in parallel up front, then applies updates sequentially
    // in the identical shuffle order.
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(0x9e37_79b9));
    let mut order: Vec<usize> = (0..encoded.len()).collect();
    for _ in 0..config.retrain_epochs {
        let snapshot = TrainedModel::from_accumulators(&accumulators);
        order.shuffle(&mut rng);
        let mut mistakes = 0usize;
        if train.fast_path {
            let predictions = engine.predict_batch(&snapshot, encoded);
            for &idx in &order {
                let predicted = predictions[idx];
                let truth = labels[idx];
                if predicted != truth {
                    accumulators[truth].add(&encoded[idx]);
                    accumulators[predicted].subtract(&encoded[idx]);
                    mistakes += 1;
                }
            }
        } else {
            for &idx in &order {
                let predicted = snapshot.predict(&encoded[idx]);
                let truth = labels[idx];
                if predicted != truth {
                    accumulators[truth].add(&encoded[idx]);
                    accumulators[predicted].subtract(&encoded[idx]);
                    mistakes += 1;
                }
            }
        }
        if mistakes == 0 {
            break;
        }
    }
    accumulators
}

/// The scalar reference bundling loop: one [`BundleAccumulator::add`] per
/// sample.
fn bundle_reference(
    encoded: &[BinaryHypervector],
    labels: &[usize],
    num_classes: usize,
    dim: usize,
) -> Vec<BundleAccumulator> {
    let mut accumulators: Vec<BundleAccumulator> = (0..num_classes)
        .map(|_| BundleAccumulator::new(dim))
        .collect();
    for (hv, &label) in encoded.iter().zip(labels) {
        accumulators[label].add(hv);
    }
    accumulators
}

/// Sharded carry-save bundling: per-worker bit-plane partials folded back
/// into signed counters in worker-index order. Counts are identical to
/// [`bundle_reference`] because bundling is commutative integer addition.
fn bundle_sharded(
    encoded: &[BinaryHypervector],
    labels: &[usize],
    num_classes: usize,
    dim: usize,
    engine: &BatchEngine,
) -> Vec<BundleAccumulator> {
    let items: Vec<(usize, &BinaryHypervector)> =
        labels.iter().copied().zip(encoded.iter()).collect();
    let partials = engine.fold_shards(
        &items,
        || -> Vec<CarrySaveMajority> {
            (0..num_classes)
                .map(|_| CarrySaveMajority::new(dim))
                .collect()
        },
        |state, shard| {
            for &(label, hv) in shard {
                state[label].add(hv);
            }
        },
    );
    let mut accumulators: Vec<BundleAccumulator> = (0..num_classes)
        .map(|_| BundleAccumulator::new(dim))
        .collect();
    for partial in &partials {
        for (accumulator, planes) in accumulators.iter_mut().zip(partial) {
            accumulator.absorb(planes);
        }
    }
    accumulators
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BatchConfig;
    use hypervector::random::HypervectorSampler;

    fn toy(k: usize, n: usize, dim: usize, seed: u64) -> (Vec<BinaryHypervector>, Vec<usize>) {
        let mut sampler = HypervectorSampler::seed_from(seed);
        let protos: Vec<_> = (0..k).map(|_| sampler.binary(dim)).collect();
        let mut encoded = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let class = i % k;
            encoded.push(sampler.flip_noise(&protos[class], 0.3));
            labels.push(class);
        }
        (encoded, labels)
    }

    #[test]
    fn fast_equals_reference_for_small_smoke() {
        let (encoded, labels) = toy(3, 50, 193, 21);
        let config = HdcConfig::builder()
            .dimension(193)
            .retrain_epochs(2)
            .build()
            .expect("valid");
        let reference = train_accumulators(
            &encoded,
            &labels,
            3,
            &config,
            &TrainConfig::reference(),
            &BatchEngine::new(BatchConfig::builder().threads(1).build().expect("valid")),
        );
        for threads in [1, 4] {
            let engine = BatchEngine::new(
                BatchConfig::builder()
                    .threads(threads)
                    .shard_size(7)
                    .build()
                    .expect("valid"),
            );
            let fast =
                train_accumulators(&encoded, &labels, 3, &config, &TrainConfig::fast(), &engine);
            assert_eq!(fast, reference, "threads={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_training_set_panics() {
        train_accumulators(
            &[],
            &[],
            1,
            &HdcConfig::default(),
            &TrainConfig::fast(),
            &BatchEngine::from_env(),
        );
    }
}
