//! Closed-loop resilience supervision: a self-healing serving runtime.
//!
//! The other modules provide the parts — detection
//! ([`crate::diagnostics`]), repair ([`crate::recovery`]), durable
//! checkpoints ([`crate::persist`]) — and this module closes the loop
//! around a deployed model:
//!
//! 1. **Monitor.** Every served query feeds the [`HealthMonitor`]; the
//!    windowed verdict decides whether the loop intervenes at all. A
//!    healthy-looking window is additionally cross-checked by a *canary
//!    probe* ([`HealthMonitor::probe`]) over the retained calibration
//!    traffic: live statistics can be whitewashed by a repair loop
//!    overfitting the very queries it feeds on, but a disjoint canary set
//!    cannot.
//! 2. **Escalate.** On a [`HealthVerdict::Degraded`] batch the
//!    [`RecoveryEngine`] runs at the current rung of an escalation ladder
//!    ([`EscalationLevel`]). Each failed round climbs one rung: higher
//!    substitution rate `S`, finer chunking `m`, more passes (bounded
//!    backoff), and finally a *temporary* trust-threshold cut down to a
//!    configured floor — the only way a class so damaged that it produces
//!    no high-confidence traffic can attract repair again. De-escalation
//!    needs a hysteresis of consecutive healthy batches, so the ladder does
//!    not flap at the alarm boundary.
//! 3. **Checkpoint / roll back.** Healthy batches periodically serialize
//!    the model through the checksummed [`crate::persist`] format into an
//!    in-memory checkpoint. When `rollback_after` consecutive recovery
//!    rounds fail, the supervisor restores the last healthy checkpoint —
//!    verifying its CRC on the way in — and resets the ladder.
//! 4. **Quarantine.** A class whose chunk-fault rate stays above a ceiling
//!    is quarantined: its predictions are reported as unreliable
//!    (`None`) instead of silently misclassifying, until repair or
//!    rollback clears the evidence.
//!
//! [`run_soak`] drives the whole loop against a caller-supplied corruption
//! process (e.g. a `faultsim` attack campaign) and emits a JSON trace of
//! every verdict, escalation, checkpoint, and rollback.

use crate::batch::BatchEngine;
use crate::config::{BatchConfig, EscalationLevel, HdcConfig, RecoveryConfig, SupervisorConfig};
use crate::diagnostics::{HealthMonitor, HealthVerdict};
use crate::encoding::Encoder;
use crate::model::TrainedModel;
use crate::persist;
use crate::recovery::{RecoveryEngine, RecoveryStats};
use hypervector::BinaryHypervector;
use std::borrow::Cow;
use std::fmt;
use std::fmt::Write as _;

/// What the supervisor did with one batch of queries.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// 1-based index of this batch.
    pub step: usize,
    /// Verdict on the traffic as served (before any repair this batch).
    pub verdict: HealthVerdict,
    /// Verdict after repair (equals `verdict` when no repair ran).
    pub post_verdict: HealthVerdict,
    /// Whether the canary probe degraded a window that looked healthy —
    /// the signature of damage (or an overfitting repair) that the live
    /// traffic statistics alone would have whitewashed.
    pub canary_alarm: bool,
    /// Escalation level after this batch.
    pub level: usize,
    /// Whether this batch climbed the escalation ladder.
    pub escalated: bool,
    /// Whether this batch descended the escalation ladder.
    pub deescalated: bool,
    /// Whether a checkpoint was written this batch.
    pub checkpointed: bool,
    /// Whether the model was rolled back this batch.
    pub rolled_back: bool,
    /// Stored bits changed by recovery this batch.
    pub bits_repaired: usize,
    /// Queries answered `None` because their class is quarantined.
    pub unreliable: usize,
    /// Classes currently quarantined.
    pub quarantined: Vec<usize>,
    /// Per-query answers: `Some(label)` or `None` when the predicted class
    /// is quarantined (the graceful-degradation path).
    pub answers: Vec<Option<usize>>,
}

/// The closed-loop resilience supervisor.
///
/// # Example
///
/// ```
/// use hypervector::random::HypervectorSampler;
/// use robusthd::supervisor::ResilienceSupervisor;
/// use robusthd::{HdcConfig, RecoveryConfig, SupervisorConfig, TrainedModel};
///
/// # fn main() -> Result<(), robusthd::ConfigError> {
/// let dim = 2048;
/// let mut sampler = HypervectorSampler::seed_from(3);
/// let protos = [sampler.binary(dim), sampler.binary(dim)];
/// let queries: Vec<_> = (0..60)
///     .map(|i| sampler.flip_noise(&protos[i % 2], 0.1))
///     .collect();
/// let labels: Vec<_> = (0..60).map(|i| i % 2).collect();
/// let config = HdcConfig::builder().dimension(dim).build()?;
/// let mut model = TrainedModel::train(&queries, &labels, 2, &config);
///
/// let policy = SupervisorConfig::builder().window(32).build()?;
/// let mut supervisor =
///     ResilienceSupervisor::new(&config, RecoveryConfig::default(), policy, 0);
/// supervisor.calibrate(&model, &queries);
/// let report = supervisor.serve_batch(&mut model, &queries);
/// assert!(report.answers.iter().all(|a| a.is_some()));
/// # Ok(())
/// # }
/// ```
pub struct ResilienceSupervisor {
    policy: SupervisorConfig,
    hdc: HdcConfig,
    features: usize,
    monitor: HealthMonitor,
    canaries: Vec<BinaryHypervector>,
    canary_answers: Vec<usize>,
    engine: RecoveryEngine,
    batch: BatchEngine,
    ladder: Vec<EscalationLevel>,
    level: usize,
    healthy_streak: usize,
    failed_rounds: usize,
    healthy_since_checkpoint: usize,
    checkpoint: Option<Vec<u8>>,
    quarantined: Vec<bool>,
    step: usize,
    total_rollbacks: usize,
    total_escalations: usize,
}

impl ResilienceSupervisor {
    /// Creates a supervisor for a deployment described by `hdc` (the model's
    /// training configuration) serving `features`-dimensional inputs.
    ///
    /// `base` is the level-0 recovery operating point; when
    /// `policy.ladder` is empty, [`EscalationLevel::default_ladder`] is
    /// derived from it.
    ///
    /// # Panics
    ///
    /// Panics if a supplied ladder level's trust threshold undercuts
    /// `policy.threshold_floor` (the builder already rejects this, but a
    /// hand-built config could bypass it).
    pub fn new(
        hdc: &HdcConfig,
        base: RecoveryConfig,
        policy: SupervisorConfig,
        features: usize,
    ) -> Self {
        let ladder = if policy.ladder.is_empty() {
            EscalationLevel::default_ladder(&base, policy.threshold_floor)
        } else {
            policy.ladder.clone()
        };
        assert!(
            ladder
                .iter()
                .all(|l| l.confidence_threshold >= policy.threshold_floor - 1e-12),
            "ladder undercuts the threshold floor"
        );
        let monitor = HealthMonitor::new(policy.window, policy.sensitivity);
        let engine = RecoveryEngine::new(base, hdc.softmax_beta);
        Self {
            policy,
            hdc: hdc.clone(),
            features,
            monitor,
            canaries: Vec::new(),
            canary_answers: Vec::new(),
            engine,
            batch: BatchEngine::from_env(),
            ladder,
            level: 0,
            healthy_streak: 0,
            failed_rounds: 0,
            healthy_since_checkpoint: 0,
            checkpoint: None,
            quarantined: Vec::new(),
            step: 0,
            total_rollbacks: 0,
            total_escalations: 0,
        }
    }

    /// Calibrates the health monitor on known-good traffic, retains that
    /// traffic as the canary set, and takes the initial checkpoint. Must be
    /// called once before serving.
    ///
    /// The canaries are re-scored against the model every batch (see
    /// [`HealthMonitor::probe`]), so the cost of a batch grows with the
    /// calibration set's size. For the probe to add protection beyond the
    /// live window, calibrate on traffic that will *not* be served again:
    /// a repair loop can overfit the queries it feeds on, but not a
    /// disjoint canary set.
    ///
    /// # Panics
    ///
    /// Panics if `clean_queries` is empty.
    pub fn calibrate(&mut self, model: &TrainedModel, clean_queries: &[BinaryHypervector]) {
        let scores = self
            .batch
            .evaluate_batch(model, clean_queries, self.hdc.softmax_beta);
        let assessments: Vec<_> = scores.iter().map(|s| s.confidence.clone()).collect();
        self.monitor.calibrate_from(&assessments);
        self.canaries = clean_queries.to_vec();
        // Golden answers: the healthy model's own predictions, the
        // self-supervised reference that catches a model whose margins look
        // fine but whose classes were rewritten into a label permutation.
        self.canary_answers = scores.iter().map(|s| s.predicted).collect();
        self.quarantined = vec![false; model.num_classes()];
        self.checkpoint = Some(self.encode_checkpoint(model));
    }

    /// Current escalation level (0 = base operating point).
    pub fn level(&self) -> usize {
        self.level
    }

    /// The escalation ladder in use.
    pub fn ladder(&self) -> &[EscalationLevel] {
        &self.ladder
    }

    /// Total rollbacks performed.
    pub fn rollbacks(&self) -> usize {
        self.total_rollbacks
    }

    /// Total ladder climbs performed.
    pub fn escalations(&self) -> usize {
        self.total_escalations
    }

    /// Classes currently quarantined.
    pub fn quarantined_classes(&self) -> Vec<usize> {
        self.quarantined
            .iter()
            .enumerate()
            .filter_map(|(c, &q)| q.then_some(c))
            .collect()
    }

    /// The health monitor (e.g. for inspecting the baseline).
    pub fn monitor(&self) -> &HealthMonitor {
        &self.monitor
    }

    /// The batched inference engine serving this supervisor.
    pub fn batch_engine(&self) -> &BatchEngine {
        &self.batch
    }

    /// The HDC hyperparameters this supervisor serves with (e.g. the
    /// confidence softmax `beta` external harnesses must score with to
    /// stay bit-identical to the serving path).
    pub fn hdc_config(&self) -> &HdcConfig {
        &self.hdc
    }

    /// Replaces the batch engine's tuning (thread count, shard size).
    /// Pure throughput knobs: every served result is bit-identical across
    /// tunings (see [`crate::batch`]).
    pub fn set_batch_config(&mut self, config: BatchConfig) {
        self.batch.set_config(config);
    }

    /// Cumulative statistics of the embedded recovery engine.
    pub fn recovery_stats(&self) -> &RecoveryStats {
        self.engine.stats()
    }

    /// The last healthy checkpoint, as checksummed `RHD2` bytes.
    pub fn checkpoint_bytes(&self) -> Option<&[u8]> {
        self.checkpoint.as_deref()
    }

    /// Serves one batch of queries through the full closed loop: monitor,
    /// answer (with quarantine), and — on a degraded verdict — repair,
    /// escalate, checkpoint, or roll back as the policy dictates.
    ///
    /// For the post-repair verdict to reflect the repaired model, batches
    /// should hold at least `policy.window` queries.
    ///
    /// # Panics
    ///
    /// Panics if [`ResilienceSupervisor::calibrate`] was never called, or a
    /// rollback checkpoint fails its CRC (memory corruption reached the
    /// checkpoint itself — there is nothing sane left to restore).
    pub fn serve_batch(
        &mut self,
        model: &mut TrainedModel,
        queries: &[BinaryHypervector],
    ) -> BatchReport {
        let beta = self.hdc.softmax_beta;
        // One engine pass scores the whole batch (sharded across worker
        // threads); each result then feeds the monitor window and the
        // quarantine gate in query order, exactly as per-query serving did.
        let scores = self.batch.evaluate_batch(model, queries, beta);
        self.serve_scored(model, scores, || Cow::Borrowed(queries))
    }

    /// Serves one batch exactly like [`ResilienceSupervisor::serve_batch`]
    /// and additionally returns the per-query [`crate::batch::BatchScore`]s
    /// the closed loop acted on (the scores of the *pre-repair* model, in
    /// query order).
    ///
    /// The adversarial soak harness (`advsim`) uses the scores to measure
    /// the confidence gate as a detector: an adversarial query counts as
    /// *detected* when its served confidence fails
    /// [`crate::Confidence::is_trusted`] at the supervisor's trust
    /// threshold — the input-space analogue of the health monitor flagging
    /// bit-rot.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`ResilienceSupervisor::serve_batch`].
    pub fn serve_batch_with_scores(
        &mut self,
        model: &mut TrainedModel,
        queries: &[BinaryHypervector],
    ) -> (BatchReport, Vec<crate::batch::BatchScore>) {
        let beta = self.hdc.softmax_beta;
        let scores = self.batch.evaluate_batch(model, queries, beta);
        let report = self.serve_scored(model, scores.clone(), || Cow::Borrowed(queries));
        (report, scores)
    }

    /// Serves one batch of *raw feature rows* through the same closed loop
    /// as [`ResilienceSupervisor::serve_batch`], via the fused
    /// encode→score path: on the healthy hot path no intermediate
    /// `Vec<BinaryHypervector>` is ever materialized. Only a degraded
    /// verdict — where the repair engine needs the encoded queries —
    /// triggers a (sharded) encoding pass.
    ///
    /// Bit-identical to encoding `rows` yourself and calling
    /// [`ResilienceSupervisor::serve_batch`], at any thread count.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`ResilienceSupervisor::serve_batch`], or if any row's length
    /// differs from `encoder.features()`.
    pub fn serve_raw_batch<E: Encoder + Sync + ?Sized>(
        &mut self,
        encoder: &E,
        model: &mut TrainedModel,
        rows: &[&[f64]],
    ) -> BatchReport {
        let beta = self.hdc.softmax_beta;
        let scores = self.batch.evaluate_raw_batch(encoder, model, rows, beta);
        // Clone the engine (config-only) so the lazy encode closure does
        // not borrow `self` across the `&mut self` call below.
        let batch = self.batch.clone();
        self.serve_scored(model, scores, move || {
            Cow::Owned(batch.encode_batch(encoder, rows))
        })
    }

    /// Serves one batch of raw feature rows exactly like
    /// [`ResilienceSupervisor::serve_raw_batch`] and additionally returns
    /// the per-query [`crate::batch::BatchScore`]s the closed loop acted on
    /// (the scores of the *pre-repair* model, in query order).
    ///
    /// This is the serving daemon's entry point: the coalescer needs both
    /// the quarantine-gated answers (from the [`BatchReport`]) and the
    /// per-query confidences (from the scores) to fill one wire response
    /// per query.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`ResilienceSupervisor::serve_raw_batch`].
    pub fn serve_raw_batch_with_scores<E: Encoder + Sync + ?Sized>(
        &mut self,
        encoder: &E,
        model: &mut TrainedModel,
        rows: &[&[f64]],
    ) -> (BatchReport, Vec<crate::batch::BatchScore>) {
        let beta = self.hdc.softmax_beta;
        let scores = self.batch.evaluate_raw_batch(encoder, model, rows, beta);
        let batch = self.batch.clone();
        let report = self.serve_scored(model, scores.clone(), move || {
            Cow::Owned(batch.encode_batch(encoder, rows))
        });
        (report, scores)
    }

    /// Operator override: quarantines `class` (or clears its quarantine)
    /// directly, without waiting for the fault-evidence loop to reach the
    /// same conclusion. Serving daemons expose this as an admin control —
    /// e.g. fencing a class whose upstream labels are known-bad — and the
    /// serving differential suite uses it to pin a quarantined state.
    ///
    /// The flag obeys the same lifecycle as evidence-driven quarantine:
    /// a healthy verdict, a rollback, or contrary fault evidence clears it.
    ///
    /// # Panics
    ///
    /// Panics if [`ResilienceSupervisor::calibrate`] was never called or
    /// `class` is out of range for the calibrated model.
    pub fn set_quarantine(&mut self, class: usize, quarantined: bool) {
        assert!(
            class < self.quarantined.len(),
            "class {class} out of range for the calibrated model"
        );
        self.quarantined[class] = quarantined;
    }

    /// The closed loop shared by [`ResilienceSupervisor::serve_batch`] and
    /// [`ResilienceSupervisor::serve_raw_batch`]: `scores` is the batch's
    /// engine pass, `encoded` lazily produces the encoded queries and is
    /// invoked only on a degraded verdict.
    fn serve_scored<'q>(
        &mut self,
        model: &mut TrainedModel,
        scores: Vec<crate::batch::BatchScore>,
        encoded: impl FnOnce() -> Cow<'q, [BinaryHypervector]>,
    ) -> BatchReport {
        assert!(
            self.monitor.baseline().is_some(),
            "supervisor must be calibrated before serving"
        );
        assert_eq!(
            self.quarantined.len(),
            model.num_classes(),
            "model class count changed after calibration"
        );
        self.step += 1;
        let mut answers = Vec::with_capacity(scores.len());
        let mut unreliable = 0usize;
        for score in &scores {
            self.monitor.record(&score.confidence);
            // audit:allow(panic): predicted is an argmin over the class axis
            if self.quarantined[score.predicted] {
                unreliable += 1;
                answers.push(None);
            } else {
                answers.push(Some(score.predicted));
            }
        }
        let (verdict, canary_alarm) = self.judged_verdict(model);
        let mut report = BatchReport {
            step: self.step,
            verdict,
            post_verdict: verdict,
            canary_alarm,
            level: self.level,
            escalated: false,
            deescalated: false,
            checkpointed: false,
            rolled_back: false,
            bits_repaired: 0,
            unreliable,
            quarantined: Vec::new(),
            answers,
        };
        match verdict {
            HealthVerdict::Healthy => self.handle_healthy(model, &mut report),
            HealthVerdict::Degraded => {
                let queries = encoded();
                self.handle_degraded(model, &queries, &mut report);
            }
            HealthVerdict::InsufficientTraffic => {}
        }
        report.level = self.level;
        report.quarantined = self.quarantined_classes();
        report
    }

    /// Healthy batch: reset failure tracking, walk back down the ladder
    /// after the hysteresis, checkpoint on schedule, and release any
    /// quarantine — traffic inside the calibration band means the model as
    /// a whole serves correctly again.
    fn handle_healthy(&mut self, model: &TrainedModel, report: &mut BatchReport) {
        self.failed_rounds = 0;
        self.healthy_streak += 1;
        if self.level > 0 && self.healthy_streak >= self.policy.hysteresis {
            self.level -= 1;
            self.healthy_streak = 0;
            report.deescalated = true;
        }
        self.healthy_since_checkpoint += 1;
        if self.healthy_since_checkpoint >= self.policy.checkpoint_interval {
            self.checkpoint = Some(self.encode_checkpoint(model));
            self.healthy_since_checkpoint = 0;
            report.checkpointed = true;
        }
        for q in &mut self.quarantined {
            *q = false;
        }
    }

    /// Degraded batch: repair at the current rung, update quarantine from
    /// the per-class fault evidence, re-judge, and escalate or roll back on
    /// failure.
    // audit:allow(panic): labels and rung levels are bounded by the class count and ladder length
    fn handle_degraded(
        &mut self,
        model: &mut TrainedModel,
        queries: &[BinaryHypervector],
        report: &mut BatchReport,
    ) {
        self.healthy_streak = 0;
        let rung = self.ladder[self.level];
        self.engine
            .reconfigure(recovery_config_at(&self.engine, rung));
        let classes = model.num_classes();
        let mut inspected = vec![0usize; classes];
        let mut faulty = vec![0usize; classes];
        let mut bits = 0usize;
        for _ in 0..rung.rounds {
            for query in queries {
                let obs = self.engine.observe(model, query);
                if obs.trusted {
                    inspected[obs.confidence.label] += rung.chunks;
                    faulty[obs.confidence.label] += obs.faulty_chunks.len();
                    bits += obs.bits_changed;
                }
            }
        }
        report.bits_repaired = bits;
        for c in 0..classes {
            if inspected[c] >= self.policy.quarantine_min_chunks {
                self.quarantined[c] =
                    faulty[c] as f64 / inspected[c] as f64 > self.policy.quarantine_fault_ceiling;
            }
        }

        // Re-judge on the repaired model: refill the window with
        // post-repair observations of the same traffic, then require the
        // canaries to agree — a repair that only overfitted this batch
        // restores the window but not the canaries, and must count as a
        // failed round rather than a recovery.
        for score in self
            .batch
            .evaluate_batch(model, queries, self.hdc.softmax_beta)
        {
            self.monitor.record(&score.confidence);
        }
        let (post, canary_alarm) = self.judged_verdict(model);
        report.post_verdict = post;
        report.canary_alarm |= canary_alarm;
        if post == HealthVerdict::Degraded {
            self.failed_rounds += 1;
            if self.level + 1 < self.ladder.len() {
                self.level += 1;
                self.total_escalations += 1;
                report.escalated = true;
            }
            if self.failed_rounds >= self.policy.rollback_after && self.checkpoint.is_some() {
                self.roll_back(model);
                report.rolled_back = true;
            }
        } else {
            self.failed_rounds = 0;
        }
    }

    /// The live window verdict hardened by the canary probe: a window that
    /// looks healthy is only trusted when re-scoring the retained
    /// known-good canaries agrees — both their margin statistics
    /// ([`HealthMonitor::probe`]) and their golden-answer agreement. The
    /// latter is the only check that catches a model whose classes were
    /// confidently rewritten into a label permutation: margins recover,
    /// answers do not. Returns the combined verdict and whether a canary
    /// check raised the alarm on an otherwise-clean window.
    fn judged_verdict(&self, model: &TrainedModel) -> (HealthVerdict, bool) {
        let live = self.monitor.verdict();
        if live != HealthVerdict::Healthy {
            return (live, false);
        }
        // One batched pass over the canaries yields both probe inputs: the
        // margins for the statistical check and the predictions for the
        // golden-answer check.
        let scores = self
            .batch
            .evaluate_batch(model, &self.canaries, self.hdc.softmax_beta);
        let margins: Vec<f64> = scores.iter().map(|s| s.confidence.margin).collect();
        if self.monitor.judge_margins(&margins) == HealthVerdict::Degraded {
            return (HealthVerdict::Degraded, true);
        }
        let agreeing = scores
            .iter()
            .zip(&self.canary_answers)
            .filter(|(s, &golden)| s.predicted == golden)
            .count();
        let agreement = agreeing as f64 / self.canary_answers.len().max(1) as f64;
        if agreement < self.policy.canary_agreement_floor {
            (HealthVerdict::Degraded, true)
        } else {
            (HealthVerdict::Healthy, false)
        }
    }

    /// Restores the last healthy checkpoint and resets the loop state.
    fn roll_back(&mut self, model: &mut TrainedModel) {
        let bytes = self
            .checkpoint
            .as_ref()
            .expect("rollback needs a checkpoint"); // audit:allow(panic): the supervisor checkpoints before any rollback
        let saved = persist::load_model(bytes.as_slice())
            .expect("healthy checkpoint failed its checksum — checkpoint memory corrupted"); // audit:allow(panic): corrupted checkpoint memory is unrecoverable by design
        *model = saved.model;
        self.failed_rounds = 0;
        self.healthy_streak = 0;
        self.level = 0;
        for q in &mut self.quarantined {
            *q = false;
        }
        // The buffered window statistics describe the pre-rollback model;
        // drop them so the next verdict judges the restored one.
        self.monitor.reset_window();
        self.total_rollbacks += 1;
    }

    /// Serializes the model through the checksummed persist format. The
    /// feature count is checkpoint metadata only; encoder-less deployments
    /// (which pass 0) are clamped to 1 so the checkpoint stays loadable
    /// under the format's plausibility guards.
    fn encode_checkpoint(&self, model: &TrainedModel) -> Vec<u8> {
        let mut bytes = Vec::new();
        persist::save_model(&mut bytes, &self.hdc, self.features.max(1), model)
            .expect("writing to a Vec cannot fail"); // audit:allow(panic): io::Write for Vec is infallible
        bytes
    }
}

/// Applies an escalation rung on top of the engine's current configuration
/// (substitution mode, fault margin, seed, and chunk gating are preserved).
fn recovery_config_at(engine: &RecoveryEngine, rung: EscalationLevel) -> RecoveryConfig {
    let base = engine.config();
    RecoveryConfig::builder()
        .chunks(rung.chunks)
        .confidence_threshold(rung.confidence_threshold)
        .substitution_rate(rung.substitution_rate)
        .substitution(base.substitution)
        .fault_margin(base.fault_margin)
        .faulty_chunks_only(base.faulty_chunks_only)
        .seed(base.seed)
        .build()
        .expect("ladder levels are validated at construction") // audit:allow(panic): ladder levels are validated at construction
}

impl fmt::Debug for ResilienceSupervisor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ResilienceSupervisor")
            .field("level", &self.level)
            .field("failed_rounds", &self.failed_rounds)
            .field("rollbacks", &self.total_rollbacks)
            .field("escalations", &self.total_escalations)
            .field("checkpointed", &self.checkpoint.is_some())
            .field("quarantined", &self.quarantined_classes())
            .finish()
    }
}

/// One step of a soak run: corruption injected, then a batch served.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakStep {
    /// 1-based soak step.
    pub step: usize,
    /// Bits flipped into the model image this step.
    pub bits_flipped: usize,
    /// Cumulative injected corruption as a fraction of the model image
    /// (repair does not subtract — this tracks what the attacker did).
    pub cumulative_error_rate: f64,
    /// Accuracy over the batch, counting unreliable answers as wrong.
    pub accuracy: f64,
    /// The supervisor's batch report.
    pub report: BatchReport,
}

/// Full trace of a soak run.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakReport {
    /// Accuracy of the clean model on the soak traffic.
    pub clean_accuracy: f64,
    /// Per-step trace.
    pub steps: Vec<SoakStep>,
}

impl SoakReport {
    /// Accuracy at the last step (the clean accuracy when no steps ran).
    pub fn final_accuracy(&self) -> f64 {
        self.steps
            .last()
            .map_or(self.clean_accuracy, |s| s.accuracy)
    }

    /// Highest cumulative injected error rate reached.
    pub fn peak_error_rate(&self) -> f64 {
        self.steps
            .iter()
            .map(|s| s.cumulative_error_rate)
            .fold(0.0, f64::max)
    }

    /// Total rollbacks across the run.
    pub fn rollbacks(&self) -> usize {
        self.steps.iter().filter(|s| s.report.rolled_back).count()
    }

    /// Total ladder climbs across the run.
    pub fn escalations(&self) -> usize {
        self.steps.iter().filter(|s| s.report.escalated).count()
    }

    /// Serializes the trace as a single JSON object with a `steps` array
    /// recording every verdict, escalation, checkpoint, and rollback
    /// transition. Written by hand so the trace format is identical with or
    /// without external serialization crates.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"clean_accuracy\":{},\"final_accuracy\":{},\"peak_error_rate\":{},\
             \"rollbacks\":{},\"escalations\":{},\"steps\":[",
            self.clean_accuracy,
            self.final_accuracy(),
            self.peak_error_rate(),
            self.rollbacks(),
            self.escalations()
        );
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let quarantined = s
                .report
                .quarantined
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(",");
            let _ = write!(
                out,
                "{{\"step\":{},\"bits_flipped\":{},\"cumulative_error_rate\":{},\
                 \"accuracy\":{},\"verdict\":\"{}\",\"post_verdict\":\"{}\",\
                 \"canary_alarm\":{},\"level\":{},\"escalated\":{},\"deescalated\":{},\
                 \"checkpointed\":{},\"rolled_back\":{},\"bits_repaired\":{},\
                 \"unreliable\":{},\"quarantined\":[{}]}}",
                s.step,
                s.bits_flipped,
                s.cumulative_error_rate,
                s.accuracy,
                verdict_str(s.report.verdict),
                verdict_str(s.report.post_verdict),
                s.report.canary_alarm,
                s.report.level,
                s.report.escalated,
                s.report.deescalated,
                s.report.checkpointed,
                s.report.rolled_back,
                s.report.bits_repaired,
                s.report.unreliable,
                quarantined,
            );
        }
        out.push_str("]}");
        out
    }
}

fn verdict_str(v: HealthVerdict) -> &'static str {
    match v {
        HealthVerdict::Healthy => "healthy",
        HealthVerdict::Degraded => "degraded",
        HealthVerdict::InsufficientTraffic => "insufficient_traffic",
    }
}

/// Drives the closed loop against a corruption process: each step, `corrupt`
/// mutates the model (returning the number of bits it flipped, or `None`
/// when its schedule is exhausted — which ends the soak), then the
/// supervisor serves the full query batch.
///
/// The corruption callback keeps this crate free of a fault-injector
/// dependency; the `faultsim` attack campaigns plug in from the outside.
///
/// # Panics
///
/// Panics if `queries` and `labels` lengths differ, or the supervisor is
/// uncalibrated.
pub fn run_soak<F>(
    supervisor: &mut ResilienceSupervisor,
    model: &mut TrainedModel,
    queries: &[BinaryHypervector],
    labels: &[usize],
    mut corrupt: F,
) -> SoakReport
where
    F: FnMut(&mut TrainedModel, usize) -> Option<usize>,
{
    assert_eq!(queries.len(), labels.len(), "queries and labels must align");
    let clean_accuracy = crate::metrics::accuracy(model, queries, labels);
    let model_bits = (model.num_classes() * model.dim()) as f64;
    let mut steps = Vec::new();
    let mut injected = 0usize;
    let mut step = 0usize;
    while let Some(bits_flipped) = corrupt(model, step) {
        step += 1;
        injected += bits_flipped;
        let report = supervisor.serve_batch(model, queries);
        let correct = report
            .answers
            .iter()
            .zip(labels)
            .filter(|(answer, label)| **answer == Some(**label))
            .count();
        steps.push(SoakStep {
            step,
            bits_flipped,
            cumulative_error_rate: injected as f64 / model_bits,
            accuracy: correct as f64 / labels.len() as f64,
            report,
        });
    }
    SoakReport {
        clean_accuracy,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{HdcConfig, SubstitutionMode};
    use hypervector::random::HypervectorSampler;

    const DIM: usize = 2048;

    fn trained_setup(seed: u64) -> (TrainedModel, Vec<BinaryHypervector>, Vec<usize>, HdcConfig) {
        let mut sampler = HypervectorSampler::seed_from(seed);
        let protos: Vec<_> = (0..3).map(|_| sampler.binary(DIM)).collect();
        let mut encoded = Vec::new();
        let mut labels = Vec::new();
        for i in 0..90 {
            let class = i % 3;
            encoded.push(sampler.flip_noise(&protos[class], 0.15));
            labels.push(class);
        }
        let cfg = HdcConfig::builder().dimension(DIM).build().expect("valid");
        let model = TrainedModel::train(&encoded, &labels, 3, &cfg);
        (model, encoded, labels, cfg)
    }

    fn base_recovery() -> RecoveryConfig {
        RecoveryConfig::builder()
            .confidence_threshold(0.45)
            .substitution_rate(0.5)
            .substitution(SubstitutionMode::MajorityCounter { saturation: 3 })
            .seed(1)
            .build()
            .expect("valid")
    }

    fn supervisor(policy: SupervisorConfig, cfg: &HdcConfig) -> ResilienceSupervisor {
        ResilienceSupervisor::new(cfg, base_recovery(), policy, 0)
    }

    #[test]
    fn healthy_traffic_checkpoints_and_stays_at_level_zero() {
        let (mut model, queries, _, cfg) = trained_setup(1);
        let policy = SupervisorConfig::builder()
            .window(30)
            .sensitivity(0.6)
            .build()
            .expect("valid");
        let mut sup = supervisor(policy, &cfg);
        sup.calibrate(&model, &queries);
        let report = sup.serve_batch(&mut model, &queries);
        assert_eq!(report.verdict, HealthVerdict::Healthy);
        assert!(report.checkpointed);
        assert!(!report.escalated && !report.rolled_back);
        assert_eq!(sup.level(), 0);
        assert_eq!(report.unreliable, 0);
        assert!(report.answers.iter().all(|a| a.is_some()));
        assert!(sup
            .checkpoint_bytes()
            .expect("checkpointed")
            .starts_with(b"RHD2"));
    }

    #[test]
    fn unrecoverable_damage_escalates_then_rolls_back() {
        let (mut model, queries, labels, cfg) = trained_setup(2);
        let clean = model.clone();
        let policy = SupervisorConfig::builder()
            .window(30)
            .sensitivity(0.6)
            .rollback_after(3)
            .build()
            .expect("valid");
        let mut sup = supervisor(policy, &cfg);
        sup.calibrate(&model, &queries);

        // Replace two of three class vectors with pure noise: no recovery
        // rung can rebuild them (their queries no longer produce trusted
        // traffic predicted into them), so the loop must climb the ladder
        // and finally restore the checkpoint.
        let mut sampler = HypervectorSampler::seed_from(5);
        *model.class_mut(1) = sampler.binary(DIM);
        *model.class_mut(2) = sampler.binary(DIM);

        let mut escalated = false;
        let mut rolled_back = false;
        for _ in 0..6 {
            let report = sup.serve_batch(&mut model, &queries);
            escalated |= report.escalated;
            if report.rolled_back {
                rolled_back = true;
                break;
            }
            assert_eq!(report.verdict, HealthVerdict::Degraded);
        }
        assert!(escalated, "ladder never climbed");
        assert!(rolled_back, "rollback never triggered");
        assert_eq!(sup.level(), 0, "rollback resets the ladder");
        assert_eq!(model, clean, "rollback must restore the checkpoint bits");
        let acc = crate::metrics::accuracy(&model, &queries, &labels);
        assert!(acc > 0.95, "restored model must serve correctly: {acc}");
    }

    #[test]
    fn concentrated_class_damage_is_quarantined_until_healthy() {
        let (mut model, queries, _, cfg) = trained_setup(3);
        let policy = SupervisorConfig::builder()
            .window(30)
            .sensitivity(0.85)
            // Repair starts fixing the dead chunks mid-batch, which dilutes
            // the averaged fault rate; a low ceiling still separates the
            // damaged class (~0.1) from healthy ones (~0).
            .quarantine_fault_ceiling(0.05)
            .quarantine_min_chunks(20)
            .rollback_after(10)
            .build()
            .expect("valid");
        let mut sup = supervisor(policy, &cfg);
        sup.calibrate(&model, &queries);

        // Annihilate 8 of 20 chunks of class 0: its queries still reach it
        // (margins depressed, verdict degrades) and every trusted one flags
        // the dead chunks, pushing the class fault rate over the ceiling.
        let m = base_recovery().chunks;
        for chunk in 0..8 {
            for i in (chunk * DIM / m)..((chunk + 1) * DIM / m) {
                model.class_mut(0).flip(i);
            }
        }

        let first = sup.serve_batch(&mut model, &queries);
        assert_eq!(first.verdict, HealthVerdict::Degraded);
        assert!(
            first.quarantined.contains(&0),
            "class 0 not quarantined: {:?}",
            first.quarantined
        );
        // Keep serving: quarantined answers are reported unreliable, and
        // once repair brings the verdict back to healthy the quarantine
        // lifts.
        let mut saw_unreliable = false;
        let mut released = false;
        for _ in 0..8 {
            let report = sup.serve_batch(&mut model, &queries);
            saw_unreliable |= report.unreliable > 0;
            if report.verdict == HealthVerdict::Healthy && report.quarantined.is_empty() {
                released = true;
                break;
            }
        }
        assert!(
            saw_unreliable,
            "quarantine never produced unreliable answers"
        );
        assert!(released, "quarantine never released after repair");
    }

    #[test]
    fn soak_report_json_records_transitions() {
        let (mut model, queries, labels, cfg) = trained_setup(4);
        let policy = SupervisorConfig::builder()
            .window(30)
            .sensitivity(0.6)
            .build()
            .expect("valid");
        let mut sup = supervisor(policy, &cfg);
        sup.calibrate(&model, &queries);
        let mut sampler = HypervectorSampler::seed_from(7);
        let report = run_soak(&mut sup, &mut model, &queries, &labels, |model, step| {
            match step {
                0 => Some(0),
                1 => {
                    // Light diffuse noise on one class.
                    let noisy = sampler.flip_noise(model.class(0), 0.05);
                    *model.class_mut(0) = noisy;
                    Some(DIM / 20)
                }
                _ => None,
            }
        });
        assert_eq!(report.steps.len(), 2);
        assert!(report.clean_accuracy > 0.9);
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "\"clean_accuracy\":",
            "\"steps\":[",
            "\"verdict\":\"healthy\"",
            "\"level\":",
            "\"rolled_back\":",
            "\"cumulative_error_rate\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn supervisor_loop_is_deterministic() {
        let run = || {
            let (mut model, queries, labels, cfg) = trained_setup(5);
            let policy = SupervisorConfig::builder()
                .window(30)
                .sensitivity(0.6)
                .build()
                .expect("valid");
            let mut sup = supervisor(policy, &cfg);
            sup.calibrate(&model, &queries);
            let mut sampler = HypervectorSampler::seed_from(9);
            let report = run_soak(&mut sup, &mut model, &queries, &labels, |model, step| {
                if step >= 4 {
                    return None;
                }
                for c in 0..3 {
                    let noisy = sampler.flip_noise(model.class(c), 0.04);
                    *model.class_mut(c) = noisy;
                }
                Some(3 * DIM / 25)
            });
            (model, report.to_json())
        };
        let (m1, j1) = run();
        let (m2, j2) = run();
        assert_eq!(m1, m2);
        assert_eq!(j1, j2);
    }

    #[test]
    #[should_panic(expected = "calibrated before serving")]
    fn serving_uncalibrated_panics() {
        let (mut model, queries, _, cfg) = trained_setup(6);
        let mut sup = supervisor(SupervisorConfig::default(), &cfg);
        sup.serve_batch(&mut model, &queries);
    }
}
