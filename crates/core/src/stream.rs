//! Time-series classification: the natural extension of RobustHD to the
//! paper's streaming datasets (PAMAP's IMU traces are windows of a sensor
//! stream).
//!
//! A scalar stream is quantized into a small symbol alphabet, n-gram
//! encoded with permutation binding ([`hypervector::SequenceEncoder`]), and
//! classified by the same class-hypervector model as the tabular pipeline —
//! so the stream classifier inherits every robustness and recovery property
//! of [`crate::TrainedModel`] unchanged: its stored form is binary class
//! hypervectors that can be attacked through
//! [`crate::TrainedModel::to_memory_image`] and repaired by
//! [`crate::RecoveryEngine`].

use crate::batch::BatchEngine;
use crate::config::{BatchConfig, HdcConfig, TrainConfig};
use crate::model::TrainedModel;
use hypervector::random::HypervectorSampler;
use hypervector::{BinaryHypervector, SequenceEncoder};

/// HDC classifier over scalar time series.
///
/// # Example
///
/// ```
/// use robusthd::{HdcConfig, StreamClassifier};
///
/// # fn main() -> Result<(), robusthd::ConfigError> {
/// // Two waveform classes: a slow ramp and a fast alternation.
/// let ramp: Vec<f64> = (0..64).map(|i| (i % 16) as f64 / 16.0).collect();
/// let alternating: Vec<f64> = (0..64).map(|i| (i % 2) as f64).collect();
/// let streams = vec![(ramp.clone(), 0usize), (alternating.clone(), 1)];
///
/// let config = HdcConfig::builder().dimension(4096).seed(3).build()?;
/// let classifier = StreamClassifier::fit(&config, 8, 3, &streams);
/// assert_eq!(classifier.predict(&ramp), 0);
/// assert_eq!(classifier.predict(&alternating), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StreamClassifier {
    encoder: SequenceEncoder,
    model: TrainedModel,
    alphabet: usize,
    num_classes: usize,
    batch: BatchEngine,
}

impl StreamClassifier {
    /// Quantizes a value in `[0, 1]` into one of `alphabet` symbols
    /// (clamping out-of-range values).
    fn symbol(value: f64, alphabet: usize) -> usize {
        let clamped = value.clamp(0.0, 1.0);
        ((clamped * alphabet as f64) as usize).min(alphabet - 1)
    }

    fn quantize(stream: &[f64], alphabet: usize) -> Vec<usize> {
        stream.iter().map(|&v| Self::symbol(v, alphabet)).collect()
    }

    /// Fits a classifier on labelled streams: values in `[0, 1]`,
    /// quantized into `alphabet` symbols and encoded with `ngram`-sized
    /// windows.
    ///
    /// # Panics
    ///
    /// Panics if `streams` is empty, `alphabet` or `ngram` is zero, or any
    /// stream is shorter than one n-gram.
    pub fn fit(
        config: &HdcConfig,
        alphabet: usize,
        ngram: usize,
        streams: &[(Vec<f64>, usize)],
    ) -> Self {
        assert!(!streams.is_empty(), "training set must not be empty");
        assert!(alphabet > 0, "alphabet must not be empty");
        let mut sampler = HypervectorSampler::seed_from(config.seed ^ STREAM_SEED_MIX);
        let symbols = sampler.base_set(alphabet, config.dimension);
        let encoder = SequenceEncoder::new(symbols, ngram);
        let encoded: Vec<BinaryHypervector> = streams
            .iter()
            .map(|(stream, _)| encoder.encode(&Self::quantize(stream, alphabet)))
            .collect();
        let labels: Vec<usize> = streams.iter().map(|(_, l)| *l).collect();
        let num_classes = labels.iter().copied().max().expect("non-empty") + 1;
        let batch = BatchEngine::from_env();
        let model = TrainedModel::train_with(
            &encoded,
            &labels,
            num_classes,
            config,
            &TrainConfig::from_env(),
            &batch,
        );
        Self {
            encoder,
            model,
            alphabet,
            num_classes,
            batch,
        }
    }

    /// Encodes a stream into hyperspace (quantize + n-gram bundle).
    ///
    /// # Panics
    ///
    /// Panics if the stream is shorter than one n-gram.
    pub fn encode(&self, stream: &[f64]) -> BinaryHypervector {
        self.encoder.encode(&Self::quantize(stream, self.alphabet))
    }

    /// Predicts the class of a stream.
    ///
    /// # Panics
    ///
    /// Panics if the stream is shorter than one n-gram.
    pub fn predict(&self, stream: &[f64]) -> usize {
        self.model.predict(&self.encode(stream))
    }

    /// Predicts the classes of a batch of streams through the fused
    /// encode→score path of the sharded [`BatchEngine`] (no intermediate
    /// `Vec<BinaryHypervector>`) — bit-identical to mapping
    /// [`Self::predict`] over the batch at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if any stream is shorter than one n-gram.
    pub fn predict_batch(&self, streams: &[Vec<f64>]) -> Vec<usize> {
        self.batch
            .predict_fused(&self.model, streams, |s| self.encode(s))
    }

    /// Accuracy over labelled streams, scored through the fused batch
    /// path.
    ///
    /// # Panics
    ///
    /// Panics if `streams` is empty or any stream is too short.
    pub fn accuracy(&self, streams: &[(Vec<f64>, usize)]) -> f64 {
        assert!(!streams.is_empty(), "cannot score an empty evaluation set");
        let predictions = self
            .batch
            .predict_fused(&self.model, streams, |(stream, _)| self.encode(stream));
        let correct = predictions
            .iter()
            .zip(streams.iter())
            .filter(|(p, (_, label))| *p == label)
            .count();
        correct as f64 / streams.len() as f64
    }

    /// Replaces the batch engine's tuning (thread count, shard size).
    pub fn set_batch_config(&mut self, config: BatchConfig) {
        self.batch.set_config(config);
    }

    /// The trained model (same attack/recovery surface as the tabular
    /// pipeline).
    pub fn model(&self) -> &TrainedModel {
        &self.model
    }

    /// Mutable model access for attack/recovery experiments.
    pub fn model_mut(&mut self) -> &mut TrainedModel {
        &mut self.model
    }

    /// Number of classes seen at fit time.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Symbol alphabet size.
    pub fn alphabet(&self) -> usize {
        self.alphabet
    }
}

/// Seed-mix constant keeping the stream codebook independent of the tabular
/// encoder codebooks built from the same config seed.
const STREAM_SEED_MIX: u64 = 0x0f1e_2d3c_4b5a_6978;

/// HDC classifier over multichannel time series (e.g. the paper's PAMAP
/// IMU traces: many synchronized sensor channels per recording).
///
/// Each channel owns a base hypervector; a time step binds every channel's
/// quantized symbol to its channel base and bundles them, and the per-step
/// vectors feed the same n-gram sequence encoding as the scalar
/// classifier. The deployed model remains a plain [`TrainedModel`] with the
/// full attack/recovery surface.
///
/// # Example
///
/// ```
/// use robusthd::{HdcConfig, MultichannelStreamClassifier};
///
/// # fn main() -> Result<(), robusthd::ConfigError> {
/// // Two 2-channel gestures: channels moving together vs in opposition.
/// let together: Vec<Vec<f64>> = (0..32)
///     .map(|t| {
///         let v = (t % 8) as f64 / 8.0;
///         vec![v, v]
///     })
///     .collect();
/// let opposed: Vec<Vec<f64>> = (0..32)
///     .map(|t| {
///         let v = (t % 8) as f64 / 8.0;
///         vec![v, 1.0 - v]
///     })
///     .collect();
/// let streams = vec![(together.clone(), 0usize), (opposed.clone(), 1)];
///
/// let config = HdcConfig::builder().dimension(4096).seed(9).build()?;
/// let classifier = MultichannelStreamClassifier::fit(&config, 8, 3, &streams);
/// assert_eq!(classifier.predict(&together), 0);
/// assert_eq!(classifier.predict(&opposed), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MultichannelStreamClassifier {
    channel_bases: Vec<BinaryHypervector>,
    symbols: Vec<BinaryHypervector>,
    model: TrainedModel,
    alphabet: usize,
    ngram: usize,
    num_classes: usize,
    batch: BatchEngine,
}

impl MultichannelStreamClassifier {
    /// Fits on labelled multichannel streams: each stream is a sequence of
    /// time steps, each time step a vector of per-channel values in
    /// `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `streams` is empty, channels are inconsistent, `alphabet`
    /// or `ngram` is zero, or any stream is shorter than one n-gram.
    pub fn fit(
        config: &HdcConfig,
        alphabet: usize,
        ngram: usize,
        streams: &[(Vec<Vec<f64>>, usize)],
    ) -> Self {
        assert!(!streams.is_empty(), "training set must not be empty");
        assert!(alphabet > 0, "alphabet must not be empty");
        assert!(ngram > 0, "n-gram size must be positive");
        let channels = streams[0].0.first().map(Vec::len).unwrap_or(0);
        assert!(channels > 0, "streams must have at least one channel");
        assert!(
            streams
                .iter()
                .flat_map(|(s, _)| s.iter())
                .all(|step| step.len() == channels),
            "all time steps must have the same channel count"
        );

        let mut sampler = HypervectorSampler::seed_from(config.seed ^ STREAM_SEED_MIX ^ 0x9d2c);
        let channel_bases = sampler.base_set(channels, config.dimension);
        let symbols = sampler.base_set(alphabet, config.dimension);

        let mut this = Self {
            channel_bases,
            symbols,
            // Placeholder; replaced below once encodings exist.
            model: TrainedModel::from_classes(vec![BinaryHypervector::zeros(config.dimension)]),
            alphabet,
            ngram,
            num_classes: 1,
            batch: BatchEngine::from_env(),
        };
        let encoded: Vec<BinaryHypervector> = streams
            .iter()
            .map(|(stream, _)| this.encode(stream))
            .collect();
        let labels: Vec<usize> = streams.iter().map(|(_, l)| *l).collect();
        let num_classes = labels.iter().copied().max().expect("non-empty") + 1;
        this.model = TrainedModel::train_with(
            &encoded,
            &labels,
            num_classes,
            config,
            &TrainConfig::from_env(),
            &this.batch,
        );
        this.num_classes = num_classes;
        this
    }

    /// Encodes one time step: bundle over channels of
    /// `channel_base ⊕ symbol(value)`, through the fused XOR+carry-save
    /// kernel (no per-channel bind allocation; bit-identical to the scalar
    /// accumulator — see `hypervector/tests/bitslice_props.rs`).
    // audit:allow(panic): channel count asserted at entry; symbol() clamps to the alphabet
    fn encode_step(&self, step: &[f64]) -> BinaryHypervector {
        assert_eq!(
            step.len(),
            self.channel_bases.len(),
            "expected {} channels, got {}",
            self.channel_bases.len(),
            step.len()
        );
        let dim = self.channel_bases[0].dim();
        let mut acc = hypervector::CarrySaveMajority::new(dim);
        for (channel, &value) in step.iter().enumerate() {
            let symbol = StreamClassifier::symbol(value, self.alphabet);
            acc.add_xor_words(
                self.channel_bases[channel].bits().words(),
                self.symbols[symbol].bits().words(),
            );
        }
        acc.to_binary()
    }

    /// Encodes a multichannel stream: per-step channel bundles, combined
    /// across time by rotation-bound n-grams.
    ///
    /// # Panics
    ///
    /// Panics if the stream is shorter than one n-gram or a step has the
    /// wrong channel count.
    pub fn encode(&self, stream: &[Vec<f64>]) -> BinaryHypervector {
        assert!(
            stream.len() >= self.ngram,
            "stream of {} steps shorter than the {}-gram window",
            stream.len(),
            self.ngram
        );
        let steps: Vec<BinaryHypervector> =
            stream.iter().map(|step| self.encode_step(step)).collect();
        let dim = steps[0].dim(); // audit:allow(panic): stream asserted >= ngram, so steps is non-empty
        let mut acc = hypervector::BundleAccumulator::new(dim);
        for window in steps.windows(self.ngram) {
            let mut gram = BinaryHypervector::zeros(dim);
            for (offset, step) in window.iter().enumerate() {
                gram.bind_assign(&step.permute(self.ngram - 1 - offset));
            }
            acc.add(&gram);
        }
        acc.to_binary()
    }

    /// Predicts the class of a stream.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`MultichannelStreamClassifier::encode`].
    pub fn predict(&self, stream: &[Vec<f64>]) -> usize {
        self.model.predict(&self.encode(stream))
    }

    /// Predicts the classes of a batch of multichannel streams through the
    /// fused encode→score path of the sharded [`BatchEngine`] —
    /// bit-identical to mapping [`Self::predict`] over the batch at any
    /// thread count.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`MultichannelStreamClassifier::encode`].
    pub fn predict_batch(&self, streams: &[Vec<Vec<f64>>]) -> Vec<usize> {
        self.batch
            .predict_fused(&self.model, streams, |s| self.encode(s))
    }

    /// Accuracy over labelled streams, scored through the fused batch
    /// path.
    ///
    /// # Panics
    ///
    /// Panics if `streams` is empty or any stream is invalid.
    pub fn accuracy(&self, streams: &[(Vec<Vec<f64>>, usize)]) -> f64 {
        assert!(!streams.is_empty(), "cannot score an empty evaluation set");
        let predictions = self
            .batch
            .predict_fused(&self.model, streams, |(stream, _)| self.encode(stream));
        let correct = predictions
            .iter()
            .zip(streams.iter())
            .filter(|(p, (_, label))| *p == label)
            .count();
        correct as f64 / streams.len() as f64
    }

    /// Replaces the batch engine's tuning (thread count, shard size).
    pub fn set_batch_config(&mut self, config: BatchConfig) {
        self.batch.set_config(config);
    }

    /// The trained model.
    pub fn model(&self) -> &TrainedModel {
        &self.model
    }

    /// Mutable model access for attack/recovery experiments.
    pub fn model_mut(&mut self) -> &mut TrainedModel {
        &mut self.model
    }

    /// Number of channels expected per time step.
    pub fn channels(&self) -> usize {
        self.channel_bases.len()
    }

    /// Number of classes seen at fit time.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Three synthetic waveform classes with per-sample jitter.
    fn waveform(class: usize, rng: &mut StdRng) -> Vec<f64> {
        let phase: usize = rng.random_range(0..8);
        (0..96)
            .map(|i| {
                let t = i + phase;
                let base = match class {
                    0 => (t % 12) as f64 / 12.0, // ramp
                    1 => {
                        if (t / 6).is_multiple_of(2) {
                            0.15
                        } else {
                            0.85
                        }
                    } // square
                    _ => 0.5 + 0.4 * ((t as f64) * 0.7).sin(), // sine
                };
                (base + rng.random_range(-0.04..0.04)).clamp(0.0, 1.0)
            })
            .collect()
    }

    fn waveform_set(count: usize, seed: u64) -> Vec<(Vec<f64>, usize)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|i| {
                let class = i % 3;
                (waveform(class, &mut rng), class)
            })
            .collect()
    }

    fn config() -> HdcConfig {
        HdcConfig::builder()
            .dimension(4096)
            .seed(6)
            .build()
            .expect("valid")
    }

    #[test]
    fn classifies_waveforms() {
        let train = waveform_set(60, 1);
        let test = waveform_set(30, 2);
        let classifier = StreamClassifier::fit(&config(), 8, 3, &train);
        let acc = classifier.accuracy(&test);
        assert!(acc > 0.9, "stream accuracy only {acc}");
    }

    #[test]
    fn stream_model_is_bit_flip_robust() {
        let train = waveform_set(60, 3);
        let test = waveform_set(30, 4);
        let mut classifier = StreamClassifier::fit(&config(), 8, 3, &train);
        let clean = classifier.accuracy(&test);
        // 10% random flips on the stored class hypervectors.
        let mut image = classifier.model().to_memory_image();
        let bits = image.len();
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut flipped = 0;
        while flipped < bits / 10 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let pos = (state >> 16) as usize % bits;
            image.flip(pos);
            flipped += 1;
        }
        classifier.model_mut().load_memory_image(&image);
        let attacked = classifier.accuracy(&test);
        assert!(
            clean - attacked < 0.1,
            "stream model too fragile: {clean} -> {attacked}"
        );
    }

    #[test]
    fn quantizer_covers_alphabet() {
        assert_eq!(StreamClassifier::symbol(0.0, 8), 0);
        assert_eq!(StreamClassifier::symbol(1.0, 8), 7);
        assert_eq!(StreamClassifier::symbol(-0.5, 8), 0);
        assert_eq!(StreamClassifier::symbol(2.0, 8), 7);
    }

    #[test]
    fn accessors_report_fit_parameters() {
        let train = waveform_set(12, 5);
        let classifier = StreamClassifier::fit(&config(), 6, 2, &train);
        assert_eq!(classifier.alphabet(), 6);
        assert_eq!(classifier.num_classes(), 3);
        assert_eq!(classifier.model().dim(), 4096);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_training_panics() {
        StreamClassifier::fit(&config(), 4, 2, &[]);
    }

    /// Two-channel gestures whose per-channel marginals are identical —
    /// only the cross-channel relationship distinguishes the classes.
    fn gesture(class: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
        let phase: usize = rng.random_range(0..6);
        (0..48)
            .map(|i| {
                let v = ((i + phase) % 12) as f64 / 12.0;
                let jitter = rng.random_range(-0.03..0.03);
                match class {
                    0 => vec![(v + jitter).clamp(0.0, 1.0), (v - jitter).clamp(0.0, 1.0)],
                    _ => vec![
                        (v + jitter).clamp(0.0, 1.0),
                        (1.0 - v + jitter).clamp(0.0, 1.0),
                    ],
                }
            })
            .collect()
    }

    fn gesture_set(count: usize, seed: u64) -> Vec<(Vec<Vec<f64>>, usize)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|i| {
                let class = i % 2;
                (gesture(class, &mut rng), class)
            })
            .collect()
    }

    #[test]
    fn multichannel_separates_cross_channel_structure() {
        let train = gesture_set(40, 7);
        let test = gesture_set(20, 8);
        let classifier = MultichannelStreamClassifier::fit(&config(), 8, 3, &train);
        let acc = classifier.accuracy(&test);
        assert!(acc > 0.9, "multichannel accuracy only {acc}");
        assert_eq!(classifier.channels(), 2);
        assert_eq!(classifier.num_classes(), 2);
    }

    #[test]
    fn stream_batched_prediction_matches_sequential() {
        let train = waveform_set(30, 10);
        let mut classifier = StreamClassifier::fit(&config(), 8, 3, &train);
        let queries: Vec<Vec<f64>> = train.iter().map(|(s, _)| s.clone()).collect();
        let sequential: Vec<usize> = queries.iter().map(|s| classifier.predict(s)).collect();
        for threads in [1, 4] {
            classifier.set_batch_config(
                BatchConfig::builder()
                    .threads(threads)
                    .shard_size(4)
                    .build()
                    .expect("valid"),
            );
            assert_eq!(classifier.predict_batch(&queries), sequential);
        }
    }

    #[test]
    fn multichannel_batched_prediction_matches_sequential() {
        let train = gesture_set(20, 11);
        let mut classifier = MultichannelStreamClassifier::fit(&config(), 8, 3, &train);
        let queries: Vec<Vec<Vec<f64>>> = train.iter().map(|(s, _)| s.clone()).collect();
        let sequential: Vec<usize> = queries.iter().map(|s| classifier.predict(s)).collect();
        classifier.set_batch_config(
            BatchConfig::builder()
                .threads(4)
                .shard_size(3)
                .build()
                .expect("valid"),
        );
        assert_eq!(classifier.predict_batch(&queries), sequential);
    }

    #[test]
    fn multichannel_encoding_is_deterministic() {
        let train = gesture_set(10, 9);
        let classifier = MultichannelStreamClassifier::fit(&config(), 8, 2, &train);
        let stream = &train[0].0;
        assert_eq!(classifier.encode(stream), classifier.encode(stream));
    }

    #[test]
    #[should_panic(expected = "same channel count")]
    fn ragged_channels_panic() {
        let bad = vec![(vec![vec![0.1, 0.2], vec![0.3]], 0usize)];
        MultichannelStreamClassifier::fit(&config(), 4, 1, &bad);
    }
}
