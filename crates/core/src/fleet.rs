//! Multi-tenant model fleet: a memory-budgeted registry of trained models
//! with copy-on-write RHD2 checkpoint lineage, fleet-aware batch routing,
//! and the opt-in LogHD compressed model representation.
//!
//! "Millions of users" means many personalized classifiers served side by
//! side, not one resident model. The [`ModelRegistry`] holds N tenants
//! under a byte budget ([`FleetConfig::budget_bytes`]): every tenant always
//! keeps its cold RHD2 checkpoint bytes (CRC-verified, deduplicated across
//! tenants that share a parent image), while the *hot* state — the class
//! hypervectors plus the fused [`PackedClasses`] scoring arena — is an LRU
//! cache. Over budget, the least-recently-used model is evicted back to
//! bytes; if the supervisor repaired it since hydration, eviction first
//! serializes the repairs into a fresh image (copy-on-write: siblings
//! still sharing the parent keep the old `Arc`). Rehydration is a
//! deterministic decode + encoder regeneration — never retraining — so a
//! model's answers are `f64::to_bits`-identical across any number of
//! eviction/rehydration cycles (pinned by
//! `crates/core/tests/fleet_differential.rs`).
//!
//! Routing ([`ModelRegistry::route_batch`],
//! [`ModelRegistry::serve_supervised`]) takes a mixed stream of
//! `(model_id, query)` pairs, groups it by tenant, and drains each group
//! through one [`BatchEngine`] pass — amortizing encode and keeping the
//! class-major `hamming_all_into` kernel hot instead of thrashing
//! per-request. Per-tenant supervisor state (quarantine, rollback, health
//! verdicts) rides on the registry and survives eviction of the model it
//! supervises.
//!
//! The LogHD representation ([`LogHdModel`], after arXiv 2511.03938)
//! compresses the class axis: instead of C class hypervectors it stores
//! ceil(log2(C)) composite hypervectors. Every class participates in every
//! composite with an orientation given by its binary codeword — bundled
//! directly for a 1-bit, complemented for a 0-bit — and scoring decodes by
//! agreement between the signed query/composite similarities and the
//! codeword bits. It is lossy — and therefore opt-in via
//! `ROBUSTHD_FLEET_LOGHD` — with the accuracy delta quantified by the
//! fleet differential suite and `fleetbench`.

use crate::batch::BatchEngine;
use crate::confidence::Confidence;
use crate::config::{BatchConfig, FleetConfig, HdcConfig, RecoveryConfig, SupervisorConfig};
use crate::encoding::RecordEncoder;
use crate::model::{argmin_first, TrainedModel};
use crate::persist::{self, LoadModelError};
use crate::supervisor::ResilienceSupervisor;
use hypervector::{BinaryHypervector, BundleAccumulator, PackedClasses};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Tenant id used by callers that don't name a model (e.g. a `classify`
/// request without a `model` field on the serving daemon's wire protocol).
pub const DEFAULT_TENANT: &str = "default";

/// Error raised by the fleet registry.
#[derive(Debug)]
pub enum FleetError {
    /// No tenant registered under this id.
    UnknownModel(String),
    /// A tenant is already registered under this id.
    DuplicateModel(String),
    /// The tenant has no calibrated supervisor but a supervised entry
    /// point was used.
    NotCalibrated(String),
    /// A query row's feature count does not match the tenant's encoder.
    FeatureMismatch {
        /// Tenant whose encoder rejected the row.
        model: String,
        /// Feature count the tenant's encoder expects.
        expected: usize,
        /// Feature count the query row actually has.
        got: usize,
    },
    /// The tenant's RHD2 image failed to decode (corrupt lineage).
    Image(LoadModelError),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::UnknownModel(id) => write!(f, "unknown model {id:?}"),
            FleetError::DuplicateModel(id) => write!(f, "model {id:?} is already registered"),
            FleetError::NotCalibrated(id) => {
                write!(f, "model {id:?} has no calibrated supervisor")
            }
            FleetError::FeatureMismatch {
                model,
                expected,
                got,
            } => write!(
                f,
                "model {model:?} expects {expected} features, query has {got}"
            ),
            FleetError::Image(e) => write!(f, "model image failed to load: {e}"),
        }
    }
}

impl Error for FleetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FleetError::Image(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<LoadModelError> for FleetError {
    fn from(e: LoadModelError) -> Self {
        FleetError::Image(e)
    }
}

/// One fleet answer: the (possibly quarantine-gated) label and the softmax
/// confidence of the prediction. Mirrors the serving daemon's per-query
/// answer shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetAnswer {
    /// Predicted class, or `None` when the supervised path withheld the
    /// answer (predicted class quarantined).
    pub label: Option<usize>,
    /// Softmax probability of the predicted class.
    pub confidence: f64,
}

/// LogHD compressed model representation (arXiv 2511.03938): logarithmic
/// class-axis reduction.
///
/// Each class `i` is assigned the binary codeword `i` over
/// `L = ceil(log2(C))` bits. Composite hypervector `G_j` is the majority
/// bundle of **all** `C` class hypervectors, each oriented by bit `j` of
/// its codeword: bundled directly when the bit is 1, complemented
/// (bipolar-negated) when it is 0. The model stores `L` vectors instead of
/// `C`, a `C / L` compression of the class axis.
///
/// Orientation is what makes the decode discriminate: in bipolar terms the
/// signed similarity `a_j = dim - 2·d(q, G_j)` carries the sign of the
/// query class's bit `j`, so the codeword dot `sum_j s_ij · a_j` peaks at
/// the true class and drops by `~2·a` per codeword Hamming-distance unit.
/// (A one-sided bundle — only the 1-bit classes — fails here: a codeword
/// that is a strict superset of another ties with it in expectation.)
///
/// Decode-at-score: for a query `q`, compute the `L` Hamming distances
/// `d_j = d(q, G_j)` in one fused [`PackedClasses`] pass, then score class
/// `i` as `sum_j (codeword_i[j] ? d_j : dim - d_j)` — the affine image of
/// the bipolar codeword dot above, so argmin of it is argmax of the dot.
/// The predicted class is the argmin (ties to the lowest label, matching
/// the full model's convention).
#[derive(Debug, Clone)]
pub struct LogHdModel {
    composites: PackedClasses,
    codewords: Vec<u64>,
    num_classes: usize,
    dim: usize,
}

impl LogHdModel {
    /// Compresses a trained model's class axis into composite vectors.
    ///
    /// # Panics
    ///
    /// Panics if the model has no classes or a zero dimension.
    pub fn encode(model: &TrainedModel) -> Self {
        let num_classes = model.num_classes();
        let dim = model.dim();
        assert!(num_classes > 0, "LogHD needs at least one class");
        assert!(dim > 0, "LogHD needs a positive dimension");
        let slots = codeword_bits(num_classes);
        let codewords: Vec<u64> = (0..num_classes).map(|i| i as u64).collect();
        let mut composites = Vec::with_capacity(slots);
        for slot in 0..slots {
            let mut bundle = BundleAccumulator::new(dim);
            for (class, &word) in codewords.iter().enumerate() {
                if word >> slot & 1 == 1 {
                    bundle.add(model.class(class));
                } else {
                    bundle.subtract(model.class(class));
                }
            }
            composites.push(bundle.to_binary());
        }
        Self {
            composites: PackedClasses::from_classes(&composites),
            codewords,
            num_classes,
            dim,
        }
    }

    /// Number of composite hypervectors (`ceil(log2(C))`, min 1).
    pub fn slots(&self) -> usize {
        self.composites.num_classes()
    }

    /// Classes the compressed model distinguishes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Hypervector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Class-axis compression ratio `C / L` (how many times fewer vectors
    /// are stored than the full representation).
    pub fn compression_ratio(&self) -> f64 {
        self.num_classes as f64 / self.slots().max(1) as f64
    }

    /// Resident bytes of the compressed representation (composite arena +
    /// codeword table).
    pub fn bytes(&self) -> usize {
        self.composites.words().len() * 8 + self.codewords.len() * 8
    }

    /// Per-class aggregate scores (lower = closer): one fused pass over
    /// the composite arena, then the codeword decode. `scratch` is reused
    /// across calls to avoid re-allocating the distance buffer.
    pub fn scores_into(&self, query: &BinaryHypervector, scratch: &mut Vec<usize>) -> Vec<usize> {
        self.composites.hamming_all_into(query, scratch);
        let mut scores = Vec::with_capacity(self.num_classes);
        for &word in &self.codewords {
            let mut score = 0usize;
            for (slot, &d) in scratch.iter().enumerate() {
                if word >> slot & 1 == 1 {
                    score += d;
                } else {
                    score += self.dim - d;
                }
            }
            scores.push(score);
        }
        scores
    }

    /// Predicts the class of an encoded query (argmin of the decoded
    /// scores, ties to the lowest label).
    pub fn predict(&self, query: &BinaryHypervector) -> usize {
        let mut scratch = Vec::new();
        argmin_first(&self.scores_into(query, &mut scratch))
    }

    /// Scores a query like the full model's evaluate path: decoded scores
    /// normalized to similarities in `[0, 1]`, then the sharpened softmax.
    pub fn evaluate(&self, query: &BinaryHypervector, beta: f64) -> Confidence {
        let mut scratch = Vec::new();
        let scores = self.scores_into(query, &mut scratch);
        let sims = self.similarities_of(&scores);
        Confidence::from_similarities(&sims, beta)
    }

    fn similarities_of(&self, scores: &[usize]) -> Vec<f64> {
        let span = (self.slots() * self.dim).max(1);
        scores
            .iter()
            .map(|&s| 1.0 - s as f64 / span as f64)
            .collect()
    }
}

/// Bits needed for the codewords `0..classes` (at least one slot so a
/// single-class model still has a composite to score against).
fn codeword_bits(classes: usize) -> usize {
    let distinct = classes.saturating_sub(1) as u64;
    ((u64::BITS - distinct.leading_zeros()) as usize).max(1)
}

/// Key under which deterministically-regenerable encoders are shared
/// between tenants: two tenants whose pipelines agree on these values use
/// the exact same codebooks, so the registry keeps one copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct EncoderKey {
    dimension: usize,
    levels: usize,
    level_correlation: usize,
    seed: u64,
    features: usize,
}

impl EncoderKey {
    fn of(config: &HdcConfig, features: usize) -> Self {
        Self {
            dimension: config.dimension,
            levels: config.levels,
            level_correlation: config.level_correlation,
            seed: config.seed,
            features,
        }
    }
}

/// Hot (hydrated) state of one tenant: the decoded model with its fused
/// scoring arena primed, the shared encoder, and the optional LogHD
/// compressed representation.
#[derive(Debug)]
struct HotModel {
    encoder: Arc<RecordEncoder>,
    model: TrainedModel,
    loghd: Option<LogHdModel>,
    bytes: usize,
}

/// One registered tenant.
#[derive(Debug)]
struct Tenant {
    /// Cold RHD2 checkpoint bytes; `Arc`-shared with every sibling tenant
    /// registered from the same image (copy-on-write lineage).
    image: Arc<Vec<u8>>,
    hdc: HdcConfig,
    features: usize,
    num_classes: usize,
    hot: Option<HotModel>,
    /// Per-tenant supervisor (quarantine, rollback, health window); stays
    /// resident across evictions of the model it supervises.
    supervisor: Option<ResilienceSupervisor>,
    /// The hot model diverged from `image` (supervisor repairs/rollbacks);
    /// eviction must serialize before dropping it.
    dirty: bool,
    last_used: u64,
    hydrated_before: bool,
}

/// Point-in-time capacity counters of a [`ModelRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetStats {
    /// Registered tenants.
    pub tenants: usize,
    /// Tenants currently hydrated.
    pub resident_models: usize,
    /// Bytes of hydrated hot state currently held.
    pub resident_bytes: usize,
    /// The configured budget.
    pub budget_bytes: usize,
    /// Bytes of unique cold images (after deduplication).
    pub cold_bytes: usize,
    /// Distinct cold images backing the fleet.
    pub unique_images: usize,
    /// Registrations that shared an existing image instead of storing a
    /// copy.
    pub dedup_hits: u64,
    /// Models evicted back to bytes.
    pub evictions: u64,
    /// Total hydrations (first-time and repeat).
    pub hydrations: u64,
    /// Hydrations of a previously-evicted model (decode from bytes, no
    /// retraining).
    pub rehydrations: u64,
    /// Distinct shared encoders kept hot.
    pub shared_encoders: usize,
}

/// Memory-budgeted multi-tenant model registry with fleet batch routing.
///
/// See the [module docs](self) for the design. Typical lifecycle:
///
/// ```
/// use robusthd::fleet::ModelRegistry;
/// use robusthd::{Encoder, FleetConfig, HdcConfig, RecordEncoder, TrainedModel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = HdcConfig::builder().dimension(256).build()?;
/// let encoder = RecordEncoder::new(&config, 4);
/// let rows: Vec<Vec<f64>> = (0..8).map(|i| vec![f64::from(i) / 8.0; 4]).collect();
/// let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
/// let encoded = encoder.encode_batch_refs(&refs);
/// let labels: Vec<usize> = (0..8).map(|i| i % 2).collect();
/// let model = TrainedModel::train(&encoded, &labels, 2, &config);
///
/// let mut fleet = ModelRegistry::new(FleetConfig::default());
/// fleet.register_trained("tenant-a", &config, 4, &model)?;
/// let answers = fleet.route_batch(&[("tenant-a", rows[0].as_slice())])?;
/// assert_eq!(answers.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ModelRegistry {
    config: FleetConfig,
    engine: BatchEngine,
    tenants: HashMap<String, Tenant>,
    /// Image dedup index: candidates under `(crc32, len)`; byte-compared
    /// on hit so a CRC collision can never alias two different models.
    images: HashMap<(u32, usize), Vec<Arc<Vec<u8>>>>,
    encoders: HashMap<EncoderKey, Arc<RecordEncoder>>,
    clock: u64,
    resident_bytes: usize,
    dedup_hits: u64,
    evictions: u64,
    hydrations: u64,
    rehydrations: u64,
}

impl ModelRegistry {
    /// An empty registry under the given budget/representation config,
    /// with the batch engine configured from the environment.
    pub fn new(config: FleetConfig) -> Self {
        Self {
            config,
            engine: BatchEngine::from_env(),
            tenants: HashMap::new(),
            images: HashMap::new(),
            encoders: HashMap::new(),
            clock: 0,
            resident_bytes: 0,
            dedup_hits: 0,
            evictions: 0,
            hydrations: 0,
            rehydrations: 0,
        }
    }

    /// An empty registry configured entirely from the environment
    /// (`ROBUSTHD_FLEET_*`, `ROBUSTHD_THREADS`, `ROBUSTHD_KERNEL_TIER`).
    pub fn from_env() -> Self {
        Self::new(FleetConfig::from_env())
    }

    /// The registry's fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Reconfigures the routing batch engine and every calibrated
    /// tenant supervisor's engine.
    pub fn set_batch_config(&mut self, config: BatchConfig) {
        self.engine.set_config(config.clone());
        for tenant in self.tenants.values_mut() {
            if let Some(supervisor) = tenant.supervisor.as_mut() {
                supervisor.set_batch_config(config.clone());
            }
        }
    }

    /// Registers a tenant from an in-memory trained model by serializing
    /// it through the RHD2 checkpoint format (the image becomes the
    /// tenant's cold lineage root).
    ///
    /// # Errors
    ///
    /// [`FleetError::DuplicateModel`] if `id` is taken; [`FleetError::Image`]
    /// if the serialized image fails validation (cannot happen for a
    /// well-formed model).
    pub fn register_trained(
        &mut self,
        id: &str,
        config: &HdcConfig,
        features: usize,
        model: &TrainedModel,
    ) -> Result<(), FleetError> {
        let mut bytes = Vec::new();
        persist::save_model(&mut bytes, config, features.max(1), model)
            .map_err(|e| FleetError::Image(LoadModelError::Io(e)))?;
        self.register_image(id, bytes)
    }

    /// Registers a tenant from RHD2 checkpoint bytes. The image is
    /// CRC-validated immediately (corrupt lineage fails loudly at
    /// registration, not at first query) and deduplicated: a byte-identical
    /// image already backing another tenant is shared, not copied.
    ///
    /// # Errors
    ///
    /// [`FleetError::DuplicateModel`] if `id` is taken; [`FleetError::Image`]
    /// if the bytes are not a valid RHD2/RHD1 image.
    pub fn register_image(&mut self, id: &str, bytes: Vec<u8>) -> Result<(), FleetError> {
        if self.tenants.contains_key(id) {
            return Err(FleetError::DuplicateModel(id.to_owned()));
        }
        let saved = persist::load_model(bytes.as_slice())?;
        let image = self.intern_image(bytes);
        self.clock += 1;
        self.tenants.insert(
            id.to_owned(),
            Tenant {
                image,
                hdc: saved.config,
                features: saved.features,
                num_classes: saved.model.num_classes(),
                hot: None,
                supervisor: None,
                dirty: false,
                last_used: self.clock,
                hydrated_before: false,
            },
        );
        Ok(())
    }

    /// Builds and calibrates the tenant's resilience supervisor: the
    /// per-tenant closed loop (health verdicts, quarantine, checkpoints,
    /// rollback) that [`ModelRegistry::serve_supervised`] drives. The
    /// supervisor stays resident when its model is evicted.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownModel`] for an unregistered id, or any
    /// hydration error.
    pub fn calibrate(
        &mut self,
        id: &str,
        recovery: RecoveryConfig,
        policy: SupervisorConfig,
        canaries: &[BinaryHypervector],
    ) -> Result<(), FleetError> {
        self.ensure_hot(id)?;
        let batch_config = self.engine.config().clone();
        let Some(tenant) = self.tenants.get_mut(id) else {
            return Err(FleetError::UnknownModel(id.to_owned()));
        };
        let Some(hot) = tenant.hot.as_ref() else {
            return Err(FleetError::UnknownModel(id.to_owned()));
        };
        let mut supervisor =
            ResilienceSupervisor::new(&tenant.hdc, recovery, policy, tenant.features);
        supervisor.set_batch_config(batch_config);
        supervisor.calibrate(&hot.model, canaries);
        tenant.supervisor = Some(supervisor);
        Ok(())
    }

    /// Whether a tenant is registered under `id`.
    pub fn contains(&self, id: &str) -> bool {
        self.tenants.contains_key(id)
    }

    /// Registered tenant count.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether the registry has no tenants.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Registered tenant ids, sorted.
    pub fn tenant_ids(&self) -> Vec<&str> {
        let mut ids: Vec<&str> = self.tenants.keys().map(String::as_str).collect();
        ids.sort_unstable();
        ids
    }

    /// Feature count a tenant's encoder expects, if registered.
    pub fn features(&self, id: &str) -> Option<usize> {
        self.tenants.get(id).map(|t| t.features)
    }

    /// Class count of a tenant's model, if registered.
    pub fn num_classes(&self, id: &str) -> Option<usize> {
        self.tenants.get(id).map(|t| t.num_classes)
    }

    /// Whether a tenant's model is currently hydrated.
    pub fn is_resident(&self, id: &str) -> bool {
        self.tenants.get(id).is_some_and(|t| t.hot.is_some())
    }

    /// Whether a tenant has a calibrated supervisor.
    pub fn is_calibrated(&self, id: &str) -> bool {
        self.tenants.get(id).is_some_and(|t| t.supervisor.is_some())
    }

    /// A tenant's supervisor, if calibrated.
    pub fn supervisor(&self, id: &str) -> Option<&ResilienceSupervisor> {
        self.tenants.get(id).and_then(|t| t.supervisor.as_ref())
    }

    /// Mutable access to a tenant's supervisor (operator controls:
    /// [`ResilienceSupervisor::set_quarantine`] etc.).
    pub fn supervisor_mut(&mut self, id: &str) -> Option<&mut ResilienceSupervisor> {
        self.tenants.get_mut(id).and_then(|t| t.supervisor.as_mut())
    }

    /// Bytes of hydrated hot state currently held.
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }

    /// Point-in-time capacity counters.
    pub fn stats(&self) -> FleetStats {
        let mut unique: Vec<*const Vec<u8>> = self
            .tenants
            .values()
            .map(|t| Arc::as_ptr(&t.image))
            .collect();
        unique.sort_unstable();
        unique.dedup();
        let cold_bytes = self
            .tenants
            .values()
            .map(|t| (Arc::as_ptr(&t.image), t.image.len()))
            .collect::<HashMap<_, _>>()
            .values()
            .sum();
        FleetStats {
            tenants: self.tenants.len(),
            resident_models: self.tenants.values().filter(|t| t.hot.is_some()).count(),
            resident_bytes: self.resident_bytes,
            budget_bytes: self.config.budget_bytes,
            cold_bytes,
            unique_images: unique.len(),
            dedup_hits: self.dedup_hits,
            evictions: self.evictions,
            hydrations: self.hydrations,
            rehydrations: self.rehydrations,
            shared_encoders: self.encoders.len(),
        }
    }

    /// Evicts a tenant's hot state back to its RHD2 bytes, serializing any
    /// supervisor repairs first (copy-on-write: siblings sharing the old
    /// image keep it). A no-op for unknown or already-cold tenants.
    ///
    /// # Errors
    ///
    /// [`FleetError::Image`] if serializing a dirty model fails (cannot
    /// happen when writing to memory).
    pub fn evict(&mut self, id: &str) -> Result<(), FleetError> {
        let Some(tenant) = self.tenants.get_mut(id) else {
            return Ok(());
        };
        let Some(hot) = tenant.hot.take() else {
            return Ok(());
        };
        let dirty = tenant.dirty;
        let hdc = tenant.hdc.clone();
        let features = tenant.features;
        if dirty {
            let mut bytes = Vec::new();
            persist::save_model(&mut bytes, &hdc, features.max(1), &hot.model)
                .map_err(|e| FleetError::Image(LoadModelError::Io(e)))?;
            let image = self.intern_image(bytes);
            if let Some(tenant) = self.tenants.get_mut(id) {
                tenant.image = image;
                tenant.dirty = false;
            }
        }
        self.resident_bytes -= hot.bytes;
        self.evictions += 1;
        Ok(())
    }

    /// Routes a mixed `(model_id, features)` stream through the plain
    /// (unsupervised) scoring path: queries are grouped by tenant in
    /// first-appearance order and each group drains through one fused
    /// [`BatchEngine`] pass; answers come back in input order. With
    /// [`FleetConfig::loghd`] set, scoring goes through each tenant's
    /// LogHD composites (decode-at-score) instead of the full class arena.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownModel`] / [`FleetError::FeatureMismatch`] on a
    /// bad query (the whole batch is refused — validation happens before
    /// any scoring), or any hydration error.
    // audit:allow(panic): indices come from group_and_validate over these queries
    pub fn route_batch(
        &mut self,
        queries: &[(&str, &[f64])],
    ) -> Result<Vec<FleetAnswer>, FleetError> {
        let groups = self.group_and_validate(queries)?;
        let mut answers = vec![
            FleetAnswer {
                label: None,
                confidence: 0.0,
            };
            queries.len()
        ];
        for (id, indices) in groups {
            self.ensure_hot(&id)?;
            let Some(tenant) = self.tenants.get_mut(&id) else {
                return Err(FleetError::UnknownModel(id));
            };
            let beta = tenant.hdc.softmax_beta;
            let Some(hot) = tenant.hot.as_mut() else {
                return Err(FleetError::UnknownModel(id));
            };
            if self.config.loghd && hot.loghd.is_none() {
                // Repairs dropped the composites; rebuild from the
                // repaired model (same class count, same footprint).
                hot.loghd = Some(LogHdModel::encode(&hot.model));
            }
            let rows: Vec<&[f64]> = indices.iter().map(|&i| queries[i].1).collect();
            if let (true, Some(loghd)) = (self.config.loghd, hot.loghd.as_ref()) {
                let encoded = self.engine.encode_batch(hot.encoder.as_ref(), &rows);
                let mut scratch = Vec::new();
                for (&index, query) in indices.iter().zip(&encoded) {
                    let scores = loghd.scores_into(query, &mut scratch);
                    let predicted = argmin_first(&scores);
                    let sims = loghd.similarities_of(&scores);
                    let confidence = Confidence::from_similarities(&sims, beta);
                    answers[index] = FleetAnswer {
                        label: Some(predicted),
                        confidence: confidence.confidence,
                    };
                }
            } else {
                let scores =
                    self.engine
                        .evaluate_raw_batch(hot.encoder.as_ref(), &hot.model, &rows, beta);
                for (&index, score) in indices.iter().zip(&scores) {
                    answers[index] = FleetAnswer {
                        label: Some(score.predicted),
                        confidence: score.confidence.confidence,
                    };
                }
            }
        }
        Ok(answers)
    }

    /// Serves a mixed `(model_id, features)` stream through each tenant's
    /// calibrated supervisor — the same closed loop (health verdict,
    /// repair, quarantine gating, checkpoint/rollback) the solo serving
    /// daemon drives, isolated per model. Grouping and answer placement
    /// match [`ModelRegistry::route_batch`].
    ///
    /// # Errors
    ///
    /// Everything [`ModelRegistry::route_batch`] raises, plus
    /// [`FleetError::NotCalibrated`] for a tenant without a supervisor.
    // audit:allow(panic): indices come from group_and_validate over these queries
    pub fn serve_supervised(
        &mut self,
        queries: &[(&str, &[f64])],
    ) -> Result<Vec<FleetAnswer>, FleetError> {
        let groups = self.group_and_validate(queries)?;
        for (id, _) in &groups {
            if !self.is_calibrated(id) {
                return Err(FleetError::NotCalibrated(id.clone()));
            }
        }
        let mut answers = vec![
            FleetAnswer {
                label: None,
                confidence: 0.0,
            };
            queries.len()
        ];
        for (id, indices) in groups {
            self.ensure_hot(&id)?;
            let Some(tenant) = self.tenants.get_mut(&id) else {
                return Err(FleetError::UnknownModel(id));
            };
            let (Some(hot), Some(supervisor)) = (tenant.hot.as_mut(), tenant.supervisor.as_mut())
            else {
                return Err(FleetError::NotCalibrated(id));
            };
            let rows: Vec<&[f64]> = indices.iter().map(|&i| queries[i].1).collect();
            let encoder = Arc::clone(&hot.encoder);
            let (report, scores) =
                supervisor.serve_raw_batch_with_scores(encoder.as_ref(), &mut hot.model, &rows);
            if report.bits_repaired > 0 || report.rolled_back {
                // The model diverged from its image: remember to serialize
                // on eviction, and invalidate the LogHD composites.
                tenant.dirty = true;
                hot.loghd = None;
            }
            for ((&index, label), score) in indices.iter().zip(&report.answers).zip(&scores) {
                answers[index] = FleetAnswer {
                    label: *label,
                    confidence: score.confidence.confidence,
                };
            }
        }
        Ok(answers)
    }

    /// Groups query indices by tenant in first-appearance order, after
    /// validating every row against its tenant's feature count.
    fn group_and_validate(
        &self,
        queries: &[(&str, &[f64])],
    ) -> Result<Vec<(String, Vec<usize>)>, FleetError> {
        let mut order: Vec<(String, Vec<usize>)> = Vec::new();
        let mut slots: HashMap<&str, usize> = HashMap::new();
        for (index, (id, row)) in queries.iter().enumerate() {
            let Some(tenant) = self.tenants.get(*id) else {
                return Err(FleetError::UnknownModel((*id).to_owned()));
            };
            if row.len() != tenant.features {
                return Err(FleetError::FeatureMismatch {
                    model: (*id).to_owned(),
                    expected: tenant.features,
                    got: row.len(),
                });
            }
            match slots.get(id) {
                Some(&slot) => order[slot].1.push(index), // audit:allow(panic): slot was produced from positions in order
                None => {
                    slots.insert(id, order.len());
                    order.push(((*id).to_owned(), vec![index]));
                }
            }
        }
        Ok(order)
    }

    /// Hydrates a tenant (decode RHD2 bytes, regenerate/share the encoder,
    /// prime the fused arena, optionally build LogHD composites), bumps its
    /// LRU stamp, and enforces the budget by evicting other tenants in LRU
    /// order.
    fn ensure_hot(&mut self, id: &str) -> Result<(), FleetError> {
        if !self.tenants.contains_key(id) {
            return Err(FleetError::UnknownModel(id.to_owned()));
        }
        self.clock += 1;
        let clock = self.clock;
        let needs_hydration = {
            let Some(tenant) = self.tenants.get_mut(id) else {
                return Err(FleetError::UnknownModel(id.to_owned()));
            };
            tenant.last_used = clock;
            tenant.hot.is_none()
        };
        if needs_hydration {
            let (image, hdc, features) = {
                let Some(tenant) = self.tenants.get(id) else {
                    return Err(FleetError::UnknownModel(id.to_owned()));
                };
                (
                    Arc::clone(&tenant.image),
                    tenant.hdc.clone(),
                    tenant.features,
                )
            };
            let saved = persist::load_model(image.as_slice())?;
            let encoder = self.encoder_for(&hdc, features);
            let model = saved.model;
            // Prime the fused class-major arena now so the first query
            // scores at full kernel throughput.
            let _ = model.packed();
            let loghd = if self.config.loghd {
                Some(LogHdModel::encode(&model))
            } else {
                None
            };
            let bytes = hot_cost(&model, loghd.as_ref());
            self.hydrations += 1;
            let Some(tenant) = self.tenants.get_mut(id) else {
                return Err(FleetError::UnknownModel(id.to_owned()));
            };
            if tenant.hydrated_before {
                self.rehydrations += 1;
            }
            tenant.hydrated_before = true;
            tenant.hot = Some(HotModel {
                encoder,
                model,
                loghd,
                bytes,
            });
            self.resident_bytes += bytes;
        }
        self.enforce_budget(id)
    }

    /// Evicts least-recently-used hot tenants (never `keep`) until the
    /// resident set fits the budget. A single over-budget model is allowed
    /// to stay — the fleet could not serve it otherwise — and becomes the
    /// first candidate once anything else is hot.
    fn enforce_budget(&mut self, keep: &str) -> Result<(), FleetError> {
        while self.resident_bytes > self.config.budget_bytes {
            let victim = self
                .tenants
                .iter()
                .filter(|(id, t)| t.hot.is_some() && id.as_str() != keep)
                .min_by_key(|(_, t)| t.last_used)
                .map(|(id, _)| id.clone());
            let Some(victim) = victim else { break };
            self.evict(&victim)?;
        }
        Ok(())
    }

    /// Returns the shared encoder for `(config, features)`, building it
    /// once: tenants with identical codebook parameters share one encoder.
    fn encoder_for(&mut self, config: &HdcConfig, features: usize) -> Arc<RecordEncoder> {
        let key = EncoderKey::of(config, features);
        if let Some(encoder) = self.encoders.get(&key) {
            return Arc::clone(encoder);
        }
        let encoder = Arc::new(RecordEncoder::new(config, features));
        self.encoders.insert(key, Arc::clone(&encoder));
        encoder
    }

    /// Interns an image: byte-identical images already backing a tenant
    /// are shared (`dedup_hits`), new content is indexed for future
    /// sharing.
    fn intern_image(&mut self, bytes: Vec<u8>) -> Arc<Vec<u8>> {
        let key = (persist::crc32(&bytes), bytes.len());
        let candidates = self.images.entry(key).or_default();
        for candidate in candidates.iter() {
            if candidate.as_slice() == bytes.as_slice() {
                self.dedup_hits += 1;
                return Arc::clone(candidate);
            }
        }
        let image = Arc::new(bytes);
        candidates.push(Arc::clone(&image));
        image
    }
}

/// Resident cost of one hydrated model: the class hypervectors plus the
/// fused class-major arena (both `classes * words_per_class * 8` bytes),
/// plus the LogHD composites when built.
fn hot_cost(model: &TrainedModel, loghd: Option<&LogHdModel>) -> usize {
    let words_per_class = model.dim().div_ceil(64);
    let class_bytes = model.num_classes() * words_per_class * 8;
    2 * class_bytes + loghd.map_or(0, LogHdModel::bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::Encoder;

    fn small_pipeline(seed: u64) -> (HdcConfig, RecordEncoder, TrainedModel, Vec<Vec<f64>>) {
        let config = HdcConfig::builder()
            .dimension(512)
            .seed(seed)
            .build()
            .expect("valid config");
        let features = 6;
        let encoder = RecordEncoder::new(&config, features);
        let rows: Vec<Vec<f64>> = (0..24usize)
            .map(|i| {
                (0..features)
                    .map(|f| ((i * 7 + f * 3) % 13) as f64 / 13.0)
                    .collect()
            })
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let encoded = encoder.encode_batch_refs(&refs);
        let labels: Vec<usize> = (0..24).map(|i| i % 3).collect();
        let model = TrainedModel::train(&encoded, &labels, 3, &config);
        (config, encoder, model, rows)
    }

    #[test]
    fn register_route_matches_solo_scoring() {
        let (config, encoder, model, rows) = small_pipeline(1);
        let mut fleet = ModelRegistry::new(FleetConfig::default());
        fleet
            .register_trained("a", &config, 6, &model)
            .expect("register");
        let queries: Vec<(&str, &[f64])> = rows.iter().map(|r| ("a", r.as_slice())).collect();
        let answers = fleet.route_batch(&queries).expect("route");
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let engine = BatchEngine::from_env();
        let solo = engine.evaluate_raw_batch(&encoder, &model, &refs, config.softmax_beta);
        for (answer, score) in answers.iter().zip(&solo) {
            assert_eq!(answer.label, Some(score.predicted));
            assert_eq!(
                answer.confidence.to_bits(),
                score.confidence.confidence.to_bits()
            );
        }
    }

    #[test]
    fn duplicate_and_unknown_models_are_refused() {
        let (config, _, model, rows) = small_pipeline(2);
        let mut fleet = ModelRegistry::new(FleetConfig::default());
        fleet
            .register_trained("a", &config, 6, &model)
            .expect("register");
        assert!(matches!(
            fleet.register_trained("a", &config, 6, &model),
            Err(FleetError::DuplicateModel(_))
        ));
        assert!(matches!(
            fleet.route_batch(&[("ghost", rows[0].as_slice())]),
            Err(FleetError::UnknownModel(_))
        ));
        let short = [0.0f64; 2];
        assert!(matches!(
            fleet.route_batch(&[("a", &short[..])]),
            Err(FleetError::FeatureMismatch { .. })
        ));
    }

    #[test]
    fn shared_images_are_deduplicated() {
        let (config, _, model, _) = small_pipeline(3);
        let mut bytes = Vec::new();
        persist::save_model(&mut bytes, &config, 6, &model).expect("serialize");
        let mut fleet = ModelRegistry::new(FleetConfig::default());
        for i in 0..5 {
            fleet
                .register_image(&format!("t{i}"), bytes.clone())
                .expect("register");
        }
        let stats = fleet.stats();
        assert_eq!(stats.tenants, 5);
        assert_eq!(stats.unique_images, 1, "parent image must be shared");
        assert_eq!(stats.dedup_hits, 4);
        assert_eq!(stats.cold_bytes, bytes.len());
    }

    #[test]
    fn budget_evicts_lru_and_rehydration_is_bit_exact() {
        let (config, _, model, rows) = small_pipeline(4);
        // Budget fits roughly one hydrated model (3 classes × 8 words × 8
        // bytes × 2 arenas = 384 bytes) so every tenant switch evicts.
        let fleet_config = FleetConfig::builder()
            .budget_bytes(500)
            .build()
            .expect("valid");
        let mut fleet = ModelRegistry::new(fleet_config);
        for id in ["a", "b", "c"] {
            fleet
                .register_trained(id, &config, 6, &model)
                .expect("register");
        }
        let q: &[f64] = rows[0].as_slice();
        let first = fleet.route_batch(&[("a", q)]).expect("route a");
        fleet.route_batch(&[("b", q)]).expect("route b");
        fleet.route_batch(&[("c", q)]).expect("route c");
        let stats = fleet.stats();
        assert!(stats.evictions >= 2, "budget never bound: {stats:?}");
        assert!(stats.resident_bytes <= 500);
        // Back to the first tenant: a rehydration, and bit-identical.
        let again = fleet.route_batch(&[("a", q)]).expect("route a again");
        assert!(fleet.stats().rehydrations >= 1);
        assert_eq!(first[0].label, again[0].label);
        assert_eq!(first[0].confidence.to_bits(), again[0].confidence.to_bits());
    }

    #[test]
    fn mixed_stream_groups_by_tenant_and_places_answers_in_order() {
        let (config, encoder, model_a, rows) = small_pipeline(5);
        let (config_b, encoder_b, model_b, _) = small_pipeline(99);
        let mut fleet = ModelRegistry::new(FleetConfig::default());
        fleet
            .register_trained("a", &config, 6, &model_a)
            .expect("register a");
        fleet
            .register_trained("b", &config_b, 6, &model_b)
            .expect("register b");
        let stream: Vec<(&str, &[f64])> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| (if i % 2 == 0 { "a" } else { "b" }, r.as_slice()))
            .collect();
        let answers = fleet.route_batch(&stream).expect("route");
        let engine = BatchEngine::from_env();
        for (i, row) in rows.iter().enumerate() {
            let (enc, model, beta) = if i % 2 == 0 {
                (&encoder, &model_a, config.softmax_beta)
            } else {
                (&encoder_b, &model_b, config_b.softmax_beta)
            };
            let solo = engine.evaluate_raw_batch(enc, model, &[row.as_slice()], beta);
            assert_eq!(answers[i].label, Some(solo[0].predicted));
            assert_eq!(
                answers[i].confidence.to_bits(),
                solo[0].confidence.confidence.to_bits()
            );
        }
    }

    /// Rows clustered tightly around per-class centers, so class
    /// hypervectors are meaningful prototypes (the regime LogHD targets)
    /// rather than bundles of unrelated patterns.
    fn clustered_pipeline(
        seed: u64,
        classes: usize,
    ) -> (HdcConfig, RecordEncoder, TrainedModel, Vec<Vec<f64>>) {
        let config = HdcConfig::builder()
            .dimension(2048)
            .seed(seed)
            .build()
            .expect("valid config");
        let features = 8;
        let encoder = RecordEncoder::new(&config, features);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..classes {
            for s in 0..6usize {
                rows.push(
                    (0..features)
                        .map(|f| {
                            let center = ((c * 31 + f * 17) % 97) as f64 / 97.0;
                            let jitter = ((s * 13 + f * 7) % 5) as f64 / 500.0;
                            (center + jitter).min(1.0)
                        })
                        .collect::<Vec<f64>>(),
                );
                labels.push(c);
            }
        }
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let encoded = encoder.encode_batch_refs(&refs);
        let model = TrainedModel::train(&encoded, &labels, classes, &config);
        (config, encoder, model, rows)
    }

    #[test]
    fn loghd_compresses_and_mostly_agrees() {
        let (config, encoder, model, rows) = clustered_pipeline(6, 8);
        let loghd = LogHdModel::encode(&model);
        assert_eq!(loghd.slots(), 3, "8 classes → codewords 0..8 → 3 bits");
        assert!(loghd.compression_ratio() > 1.0);
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let encoded = encoder.encode_batch_refs(&refs);
        let agree = encoded
            .iter()
            .filter(|q| loghd.predict(q) == model.predict(q))
            .count();
        // Lossy, but on clustered traffic the compressed model should agree
        // with the full model far above chance (1/8 here).
        assert!(
            agree * 4 >= encoded.len() * 3,
            "LogHD agreed on only {agree}/{} rows",
            encoded.len()
        );
        let conf = loghd.evaluate(&encoded[0], config.softmax_beta);
        assert!(conf.confidence > 0.0 && conf.confidence <= 1.0);
    }

    #[test]
    fn loghd_flag_routes_through_composites() {
        let (config, _, model, rows) = small_pipeline(7);
        let fleet_config = FleetConfig::builder().loghd(true).build().expect("valid");
        let mut fleet = ModelRegistry::new(fleet_config);
        fleet
            .register_trained("a", &config, 6, &model)
            .expect("register");
        let queries: Vec<(&str, &[f64])> = rows.iter().map(|r| ("a", r.as_slice())).collect();
        let answers = fleet.route_batch(&queries).expect("route");
        // The compressed path must produce the LogHD decode answers.
        let encoder = RecordEncoder::new(&config, 6);
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let encoded = encoder.encode_batch_refs(&refs);
        let loghd = LogHdModel::encode(&model);
        for (answer, q) in answers.iter().zip(&encoded) {
            assert_eq!(answer.label, Some(loghd.predict(q)));
        }
    }

    #[test]
    fn codeword_bits_covers_class_counts() {
        assert_eq!(codeword_bits(1), 1);
        assert_eq!(codeword_bits(2), 1);
        assert_eq!(codeword_bits(3), 2);
        assert_eq!(codeword_bits(4), 2);
        assert_eq!(codeword_bits(5), 3);
        assert_eq!(codeword_bits(100), 7, "100 classes fit in 7-bit codewords");
    }

    #[test]
    fn supervised_serving_isolates_tenants() {
        let (config, encoder, model, rows) = small_pipeline(8);
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let canaries = encoder.encode_batch_refs(&refs);
        let recovery = RecoveryConfig::builder()
            .confidence_threshold(0.45)
            .substitution_rate(0.5)
            .build()
            .expect("valid recovery");
        let policy = SupervisorConfig::builder()
            .window(8)
            .build()
            .expect("valid policy");
        let mut fleet = ModelRegistry::new(FleetConfig::default());
        for id in ["a", "b"] {
            fleet
                .register_trained(id, &config, 6, &model)
                .expect("register");
            fleet
                .calibrate(id, recovery.clone(), policy.clone(), &canaries)
                .expect("calibrate");
        }
        // Quarantine class 0 on tenant a only; b must be unaffected.
        fleet
            .supervisor_mut("a")
            .expect("calibrated")
            .set_quarantine(0, true);
        let stream: Vec<(&str, &[f64])> = rows
            .iter()
            .flat_map(|r| [("a", r.as_slice()), ("b", r.as_slice())])
            .collect();
        let answers = fleet.serve_supervised(&stream).expect("serve");
        let mut gated_a = 0;
        let mut gated_b = 0;
        for (i, answer) in answers.iter().enumerate() {
            if answer.label.is_none() {
                if i % 2 == 0 {
                    gated_a += 1;
                } else {
                    gated_b += 1;
                }
            }
        }
        assert!(gated_a > 0, "tenant a's quarantine must gate its answers");
        assert_eq!(gated_b, 0, "tenant b must not inherit a's quarantine");
        assert!(matches!(
            fleet.serve_supervised(&[("ghost", rows[0].as_slice())]),
            Err(FleetError::UnknownModel(_))
        ));
    }

    #[test]
    fn encoders_are_shared_across_same_cohort_tenants() {
        let (config, _, model, rows) = small_pipeline(9);
        let mut fleet = ModelRegistry::new(FleetConfig::default());
        for i in 0..4 {
            fleet
                .register_trained(&format!("t{i}"), &config, 6, &model)
                .expect("register");
        }
        let ids: Vec<String> = (0..4).map(|i| format!("t{i}")).collect();
        let queries: Vec<(&str, &[f64])> = ids
            .iter()
            .map(|id| (id.as_str(), rows[0].as_slice()))
            .collect();
        fleet.route_batch(&queries).expect("route");
        assert_eq!(
            fleet.stats().shared_encoders,
            1,
            "same (config, features) cohort must share one encoder"
        );
    }
}
