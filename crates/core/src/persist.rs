//! Model persistence: a small, versioned, dependency-free binary format
//! for trained RobustHD pipelines.
//!
//! A saved file carries everything needed to rebuild the deployed pipeline:
//! the [`HdcConfig`] (from which the encoder's codebooks regenerate
//! deterministically), the input feature count, and the class
//! hypervectors' raw words. Layout (all integers little-endian):
//!
//! ```text
//! magic  b"RHD1"
//! u32    feature count
//! u64    dimension          u64  levels
//! u64    level_correlation  u64  retrain_epochs
//! u64    seed               f64  softmax_beta
//! u32    classes
//! u64 × classes × ceil(dimension / 64)   class hypervector words
//! ```

use crate::config::HdcConfig;
use crate::model::TrainedModel;
use hypervector::{BinaryHypervector, PackedBits};
use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"RHD1";

/// Error loading a persisted model.
#[derive(Debug)]
pub enum LoadModelError {
    /// The stream does not start with the `RHD1` magic.
    BadMagic,
    /// Structurally invalid contents (zero dims, impossible sizes, bad
    /// config values).
    Corrupt(String),
    /// Underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for LoadModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadModelError::BadMagic => f.write_str("not a RobustHD model file (bad magic)"),
            LoadModelError::Corrupt(msg) => write!(f, "corrupt model file: {msg}"),
            LoadModelError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl Error for LoadModelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LoadModelError::Io(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<io::Error> for LoadModelError {
    fn from(e: io::Error) -> Self {
        LoadModelError::Io(e)
    }
}

/// A deserialized pipeline: the pieces needed to serve predictions (the
/// encoder regenerates from `config` + `features`).
#[derive(Debug, Clone)]
pub struct SavedPipeline {
    /// The HDC configuration the pipeline was trained with.
    pub config: HdcConfig,
    /// Input feature count the encoder expects.
    pub features: usize,
    /// The trained class-hypervector model.
    pub model: TrainedModel,
}

/// Serializes a trained pipeline.
///
/// A `&mut` reference can be passed as the writer.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Example
///
/// ```
/// use hypervector::random::HypervectorSampler;
/// use robusthd::{persist, HdcConfig, TrainedModel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut sampler = HypervectorSampler::seed_from(1);
/// let model = TrainedModel::from_classes(vec![sampler.binary(256), sampler.binary(256)]);
/// let config = HdcConfig::builder().dimension(256).build()?;
///
/// let mut buffer = Vec::new();
/// persist::save_model(&mut buffer, &config, 16, &model)?;
/// let loaded = persist::load_model(buffer.as_slice())?;
/// assert_eq!(loaded.model, model);
/// assert_eq!(loaded.features, 16);
/// # Ok(())
/// # }
/// ```
pub fn save_model<W: Write>(
    mut writer: W,
    config: &HdcConfig,
    features: usize,
    model: &TrainedModel,
) -> io::Result<()> {
    writer.write_all(MAGIC)?;
    writer.write_all(&(features as u32).to_le_bytes())?;
    writer.write_all(&(config.dimension as u64).to_le_bytes())?;
    writer.write_all(&(config.levels as u64).to_le_bytes())?;
    writer.write_all(&(config.level_correlation as u64).to_le_bytes())?;
    writer.write_all(&(config.retrain_epochs as u64).to_le_bytes())?;
    writer.write_all(&config.seed.to_le_bytes())?;
    writer.write_all(&config.softmax_beta.to_le_bytes())?;
    writer.write_all(&(model.num_classes() as u32).to_le_bytes())?;
    for class in model.classes() {
        for &word in class.bits().words() {
            writer.write_all(&word.to_le_bytes())?;
        }
    }
    Ok(())
}

fn read_u32<R: Read>(reader: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    reader.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(reader: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    reader.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Deserializes a pipeline saved by [`save_model`].
///
/// A `&mut` reference can be passed as the reader.
///
/// # Errors
///
/// Returns [`LoadModelError`] on bad magic, truncated or structurally
/// invalid contents, or I/O failure.
pub fn load_model<R: Read>(mut reader: R) -> Result<SavedPipeline, LoadModelError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(LoadModelError::BadMagic);
    }
    let features = read_u32(&mut reader)? as usize;
    let dimension = read_u64(&mut reader)? as usize;
    let levels = read_u64(&mut reader)? as usize;
    let level_correlation = read_u64(&mut reader)? as usize;
    let retrain_epochs = read_u64(&mut reader)? as usize;
    let seed = read_u64(&mut reader)?;
    let softmax_beta = f64::from_le_bytes({
        let mut buf = [0u8; 8];
        reader.read_exact(&mut buf)?;
        buf
    });
    // Guard against absurd sizes before allocating.
    if features == 0 || features > 1 << 24 {
        return Err(LoadModelError::Corrupt(format!(
            "implausible feature count {features}"
        )));
    }
    if dimension == 0 || dimension > 1 << 26 {
        return Err(LoadModelError::Corrupt(format!(
            "implausible dimension {dimension}"
        )));
    }
    let config = HdcConfig::builder()
        .dimension(dimension)
        .levels(levels)
        .level_correlation(level_correlation)
        .retrain_epochs(retrain_epochs)
        .seed(seed)
        .softmax_beta(softmax_beta)
        .build()
        .map_err(|e| LoadModelError::Corrupt(e.to_string()))?;
    let classes = read_u32(&mut reader)? as usize;
    if classes == 0 || classes > 1 << 16 {
        return Err(LoadModelError::Corrupt(format!(
            "implausible class count {classes}"
        )));
    }
    let words_per_class = dimension.div_ceil(64);
    let mut class_vectors = Vec::with_capacity(classes);
    for _ in 0..classes {
        let mut bits = PackedBits::zeros(dimension);
        for word_idx in 0..words_per_class {
            bits.words_mut()[word_idx] = read_u64(&mut reader)?;
        }
        bits.mask_tail();
        class_vectors.push(BinaryHypervector::from_bits(bits));
    }
    Ok(SavedPipeline {
        config,
        features,
        model: TrainedModel::from_classes(class_vectors),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::{Encoder, RecordEncoder};
    use hypervector::random::HypervectorSampler;

    fn toy_pipeline() -> (HdcConfig, usize, TrainedModel) {
        let config = HdcConfig::builder()
            .dimension(500)
            .levels(16)
            .seed(77)
            .build()
            .expect("valid");
        let mut sampler = HypervectorSampler::seed_from(4);
        let model = TrainedModel::from_classes(vec![
            sampler.binary(500),
            sampler.binary(500),
            sampler.binary(500),
        ]);
        (config, 12, model)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let (config, features, model) = toy_pipeline();
        let mut buffer = Vec::new();
        save_model(&mut buffer, &config, features, &model).expect("save");
        let loaded = load_model(buffer.as_slice()).expect("load");
        assert_eq!(loaded.config, config);
        assert_eq!(loaded.features, features);
        assert_eq!(loaded.model, model);
    }

    #[test]
    fn encoder_rebuilt_from_loaded_config_matches_original() {
        let (config, features, model) = toy_pipeline();
        let mut buffer = Vec::new();
        save_model(&mut buffer, &config, features, &model).expect("save");
        let loaded = load_model(buffer.as_slice()).expect("load");
        let original = RecordEncoder::new(&config, features);
        let rebuilt = RecordEncoder::new(&loaded.config, loaded.features);
        let input: Vec<f64> = (0..features).map(|i| i as f64 / features as f64).collect();
        assert_eq!(original.encode(&input), rebuilt.encode(&input));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = load_model(&b"NOPE...."[..]).unwrap_err();
        assert!(matches!(err, LoadModelError::BadMagic));
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn truncated_file_is_an_io_error() {
        let (config, features, model) = toy_pipeline();
        let mut buffer = Vec::new();
        save_model(&mut buffer, &config, features, &model).expect("save");
        buffer.truncate(buffer.len() - 10);
        let err = load_model(buffer.as_slice()).unwrap_err();
        assert!(matches!(err, LoadModelError::Io(_)));
    }

    #[test]
    fn implausible_header_is_corrupt() {
        let mut buffer = Vec::new();
        buffer.extend_from_slice(MAGIC);
        buffer.extend_from_slice(&0u32.to_le_bytes()); // zero features
        buffer.extend_from_slice(&[0u8; 48]);
        buffer.extend_from_slice(&1u32.to_le_bytes());
        let err = load_model(buffer.as_slice()).unwrap_err();
        assert!(err.to_string().contains("feature count"));
    }

    #[test]
    fn non_word_aligned_dimension_roundtrips() {
        let config = HdcConfig::builder().dimension(100).build().expect("valid");
        let mut sampler = HypervectorSampler::seed_from(8);
        let model = TrainedModel::from_classes(vec![sampler.binary(100), sampler.binary(100)]);
        let mut buffer = Vec::new();
        save_model(&mut buffer, &config, 3, &model).expect("save");
        let loaded = load_model(buffer.as_slice()).expect("load");
        assert_eq!(loaded.model, model);
    }
}
