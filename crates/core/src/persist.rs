//! Model persistence: a small, versioned, dependency-free binary format
//! for trained RobustHD pipelines.
//!
//! A saved file carries everything needed to rebuild the deployed pipeline:
//! the [`HdcConfig`] (from which the encoder's codebooks regenerate
//! deterministically), the input feature count, and the class
//! hypervectors' raw words. Layout (all integers little-endian):
//!
//! ```text
//! magic  b"RHD2"
//! u32    feature count
//! u64    dimension          u64  levels
//! u64    level_correlation  u64  retrain_epochs
//! u64    seed               f64  softmax_beta
//! u32    classes
//! u64 × classes × ceil(dimension / 64)   class hypervector words
//! u32    CRC32 (IEEE) over every byte between magic and checksum
//! ```
//!
//! The trailing checksum makes checkpoints self-verifying: a rollback
//! target that was itself hit by the memory attack fails loudly at load
//! ([`LoadModelError::ChecksumMismatch`]) instead of silently restoring a
//! corrupted model. Legacy `RHD1` files (the same layout without the
//! checksum) still load.

use crate::config::HdcConfig;
use crate::model::TrainedModel;
use hypervector::{BinaryHypervector, PackedBits};
use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

const MAGIC_V2: &[u8; 4] = b"RHD2";
const MAGIC_V1: &[u8; 4] = b"RHD1";

/// Error loading a persisted model.
#[derive(Debug)]
pub enum LoadModelError {
    /// The stream starts with neither the `RHD2` nor the `RHD1` magic.
    BadMagic,
    /// The stored CRC32 does not match the file contents: the checkpoint
    /// was corrupted after it was written.
    ChecksumMismatch {
        /// Checksum recorded in the file.
        stored: u32,
        /// Checksum recomputed from the file's bytes.
        computed: u32,
    },
    /// Structurally invalid contents (zero dims, impossible sizes, bad
    /// config values).
    Corrupt(String),
    /// Underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for LoadModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadModelError::BadMagic => f.write_str("not a RobustHD model file (bad magic)"),
            LoadModelError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            LoadModelError::Corrupt(msg) => write!(f, "corrupt model file: {msg}"),
            LoadModelError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl Error for LoadModelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LoadModelError::Io(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<io::Error> for LoadModelError {
    fn from(e: io::Error) -> Self {
        LoadModelError::Io(e)
    }
}

/// A deserialized pipeline: the pieces needed to serve predictions (the
/// encoder regenerates from `config` + `features`).
#[derive(Debug, Clone)]
pub struct SavedPipeline {
    /// The HDC configuration the pipeline was trained with.
    pub config: HdcConfig,
    /// Input feature count the encoder expects.
    pub features: usize,
    /// The trained class-hypervector model.
    pub model: TrainedModel,
}

/// Serializes a trained pipeline.
///
/// A `&mut` reference can be passed as the writer.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Example
///
/// ```
/// use hypervector::random::HypervectorSampler;
/// use robusthd::{persist, HdcConfig, TrainedModel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut sampler = HypervectorSampler::seed_from(1);
/// let model = TrainedModel::from_classes(vec![sampler.binary(256), sampler.binary(256)]);
/// let config = HdcConfig::builder().dimension(256).build()?;
///
/// let mut buffer = Vec::new();
/// persist::save_model(&mut buffer, &config, 16, &model)?;
/// let loaded = persist::load_model(buffer.as_slice())?;
/// assert_eq!(loaded.model, model);
/// assert_eq!(loaded.features, 16);
/// # Ok(())
/// # }
/// ```
pub fn save_model<W: Write>(
    mut writer: W,
    config: &HdcConfig,
    features: usize,
    model: &TrainedModel,
) -> io::Result<()> {
    let body = encode_body(config, features, model);
    writer.write_all(MAGIC_V2)?;
    writer.write_all(&body)?;
    writer.write_all(&crc32(&body).to_le_bytes())?;
    Ok(())
}

/// Serializes the header + class words shared by both format versions.
fn encode_body(config: &HdcConfig, features: usize, model: &TrainedModel) -> Vec<u8> {
    let words = model.num_classes() * config.dimension.div_ceil(64);
    let mut body = Vec::with_capacity(56 + words * 8);
    body.extend_from_slice(&(features as u32).to_le_bytes()); // audit:allow(panic): feature counts sit far below the u32 format field
    body.extend_from_slice(&(config.dimension as u64).to_le_bytes());
    body.extend_from_slice(&(config.levels as u64).to_le_bytes());
    body.extend_from_slice(&(config.level_correlation as u64).to_le_bytes());
    body.extend_from_slice(&(config.retrain_epochs as u64).to_le_bytes());
    body.extend_from_slice(&config.seed.to_le_bytes());
    body.extend_from_slice(&config.softmax_beta.to_le_bytes());
    body.extend_from_slice(&(model.num_classes() as u32).to_le_bytes()); // audit:allow(panic): class counts sit far below the u32 format field
    for class in model.classes() {
        for &word in class.bits().words() {
            body.extend_from_slice(&word.to_le_bytes());
        }
    }
    body
}

/// CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`) of `bytes`.
// audit:allow(panic): 8-bit table arithmetic: i < 256 and masked indices
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 == 1 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    };
    let mut crc = u32::MAX;
    for &byte in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(byte)) & 0xFF) as usize];
    }
    !crc
}

fn read_u32<R: Read>(reader: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    reader.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(reader: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    reader.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Deserializes a pipeline saved by [`save_model`].
///
/// A `&mut` reference can be passed as the reader.
///
/// For `RHD2` files the trailing CRC32 is verified over the whole body
/// *before* any field is interpreted, so a corrupted checkpoint always
/// surfaces as [`LoadModelError::ChecksumMismatch`] rather than as a
/// downstream parse error. Legacy `RHD1` files carry no checksum and are
/// parsed as-is.
///
/// # Errors
///
/// Returns [`LoadModelError`] on bad magic, checksum mismatch, truncated
/// or structurally invalid contents, or I/O failure.
pub fn load_model<R: Read>(mut reader: R) -> Result<SavedPipeline, LoadModelError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic == MAGIC_V1 {
        return parse_body(&mut reader);
    }
    if &magic != MAGIC_V2 {
        return Err(LoadModelError::BadMagic);
    }
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest)?;
    if rest.len() < 4 {
        return Err(LoadModelError::Corrupt(
            "file too short to hold a checksum".to_string(),
        ));
    }
    let (body, crc_bytes) = rest.split_at(rest.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes")); // audit:allow(panic): split_at leaves exactly 4 bytes
    let computed = crc32(body);
    if stored != computed {
        return Err(LoadModelError::ChecksumMismatch { stored, computed });
    }
    let mut body_reader = body;
    let pipeline = parse_body(&mut body_reader)?;
    if !body_reader.is_empty() {
        return Err(LoadModelError::Corrupt(format!(
            "{} trailing bytes after class vectors",
            body_reader.len()
        )));
    }
    Ok(pipeline)
}

/// Parses the version-independent header + class words.
fn parse_body<R: Read>(reader: &mut R) -> Result<SavedPipeline, LoadModelError> {
    let features = read_u32(reader)? as usize;
    let dimension = read_u64(reader)? as usize;
    let levels = read_u64(reader)? as usize;
    let level_correlation = read_u64(reader)? as usize;
    let retrain_epochs = read_u64(reader)? as usize;
    let seed = read_u64(reader)?;
    let softmax_beta = f64::from_le_bytes({
        let mut buf = [0u8; 8];
        reader.read_exact(&mut buf)?;
        buf
    });
    // Guard against absurd sizes before allocating.
    if features == 0 || features > 1 << 24 {
        return Err(LoadModelError::Corrupt(format!(
            "implausible feature count {features}"
        )));
    }
    if dimension == 0 || dimension > 1 << 26 {
        return Err(LoadModelError::Corrupt(format!(
            "implausible dimension {dimension}"
        )));
    }
    let config = HdcConfig::builder()
        .dimension(dimension)
        .levels(levels)
        .level_correlation(level_correlation)
        .retrain_epochs(retrain_epochs)
        .seed(seed)
        .softmax_beta(softmax_beta)
        .build()
        .map_err(|e| LoadModelError::Corrupt(e.to_string()))?;
    let classes = read_u32(reader)? as usize;
    if classes == 0 || classes > 1 << 16 {
        return Err(LoadModelError::Corrupt(format!(
            "implausible class count {classes}"
        )));
    }
    let words_per_class = dimension.div_ceil(64);
    let mut class_vectors = Vec::with_capacity(classes);
    for _ in 0..classes {
        let mut bits = PackedBits::zeros(dimension);
        for word_idx in 0..words_per_class {
            bits.words_mut()[word_idx] = read_u64(reader)?; // audit:allow(panic): bits was sized to words_per_class
        }
        bits.mask_tail();
        class_vectors.push(BinaryHypervector::from_bits(bits));
    }
    Ok(SavedPipeline {
        config,
        features,
        model: TrainedModel::from_classes(class_vectors),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::{Encoder, RecordEncoder};
    use hypervector::random::HypervectorSampler;

    fn toy_pipeline() -> (HdcConfig, usize, TrainedModel) {
        let config = HdcConfig::builder()
            .dimension(500)
            .levels(16)
            .seed(77)
            .build()
            .expect("valid");
        let mut sampler = HypervectorSampler::seed_from(4);
        let model = TrainedModel::from_classes(vec![
            sampler.binary(500),
            sampler.binary(500),
            sampler.binary(500),
        ]);
        (config, 12, model)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let (config, features, model) = toy_pipeline();
        let mut buffer = Vec::new();
        save_model(&mut buffer, &config, features, &model).expect("save");
        let loaded = load_model(buffer.as_slice()).expect("load");
        assert_eq!(loaded.config, config);
        assert_eq!(loaded.features, features);
        assert_eq!(loaded.model, model);
    }

    #[test]
    fn encoder_rebuilt_from_loaded_config_matches_original() {
        let (config, features, model) = toy_pipeline();
        let mut buffer = Vec::new();
        save_model(&mut buffer, &config, features, &model).expect("save");
        let loaded = load_model(buffer.as_slice()).expect("load");
        let original = RecordEncoder::new(&config, features);
        let rebuilt = RecordEncoder::new(&loaded.config, loaded.features);
        let input: Vec<f64> = (0..features).map(|i| i as f64 / features as f64).collect();
        assert_eq!(original.encode(&input), rebuilt.encode(&input));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = load_model(&b"NOPE...."[..]).unwrap_err();
        assert!(matches!(err, LoadModelError::BadMagic));
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn truncated_v2_file_fails_the_checksum() {
        let (config, features, model) = toy_pipeline();
        let mut buffer = Vec::new();
        save_model(&mut buffer, &config, features, &model).expect("save");
        buffer.truncate(buffer.len() - 10);
        let err = load_model(buffer.as_slice()).unwrap_err();
        assert!(
            matches!(err, LoadModelError::ChecksumMismatch { .. }),
            "expected checksum mismatch, got {err}"
        );
    }

    #[test]
    fn truncated_legacy_file_is_an_io_error() {
        let (config, features, model) = toy_pipeline();
        let mut v1 = Vec::new();
        v1.extend_from_slice(MAGIC_V1);
        v1.extend_from_slice(&encode_body(&config, features, &model));
        v1.truncate(v1.len() - 10);
        let err = load_model(v1.as_slice()).unwrap_err();
        assert!(matches!(err, LoadModelError::Io(_)));
    }

    #[test]
    fn implausible_header_is_corrupt() {
        let mut buffer = Vec::new();
        buffer.extend_from_slice(MAGIC_V1);
        buffer.extend_from_slice(&0u32.to_le_bytes()); // zero features
        buffer.extend_from_slice(&[0u8; 48]);
        buffer.extend_from_slice(&1u32.to_le_bytes());
        let err = load_model(buffer.as_slice()).unwrap_err();
        assert!(err.to_string().contains("feature count"));
    }

    #[test]
    fn non_word_aligned_dimension_roundtrips() {
        let config = HdcConfig::builder().dimension(100).build().expect("valid");
        let mut sampler = HypervectorSampler::seed_from(8);
        let model = TrainedModel::from_classes(vec![sampler.binary(100), sampler.binary(100)]);
        let mut buffer = Vec::new();
        save_model(&mut buffer, &config, 3, &model).expect("save");
        let loaded = load_model(buffer.as_slice()).expect("load");
        assert_eq!(loaded.model, model);
    }

    #[test]
    fn saved_files_carry_the_v2_magic_and_checksum() {
        let (config, features, model) = toy_pipeline();
        let mut buffer = Vec::new();
        save_model(&mut buffer, &config, features, &model).expect("save");
        assert_eq!(&buffer[..4], MAGIC_V2);
        let stored = u32::from_le_bytes(buffer[buffer.len() - 4..].try_into().expect("4"));
        assert_eq!(stored, crc32(&buffer[4..buffer.len() - 4]));
    }

    #[test]
    fn any_flipped_bit_fails_the_checksum() {
        let (config, features, model) = toy_pipeline();
        let mut clean = Vec::new();
        save_model(&mut clean, &config, features, &model).expect("save");
        // Walk bit positions across the whole post-magic region — header,
        // class words, and the checksum itself — at a stride that keeps the
        // test fast while touching every byte class.
        for bit in (0..(clean.len() - 4) * 8)
            .step_by(97)
            .chain([(clean.len() - 5) * 8])
        {
            let mut corrupted = clean.clone();
            corrupted[4 + bit / 8] ^= 1 << (bit % 8);
            let err = load_model(corrupted.as_slice()).unwrap_err();
            assert!(
                matches!(err, LoadModelError::ChecksumMismatch { .. }),
                "bit {bit}: expected checksum mismatch, got {err}"
            );
        }
    }

    #[test]
    fn legacy_rhd1_files_still_load() {
        let (config, features, model) = toy_pipeline();
        let mut v1 = Vec::new();
        v1.extend_from_slice(MAGIC_V1);
        v1.extend_from_slice(&encode_body(&config, features, &model));
        let loaded = load_model(v1.as_slice()).expect("legacy load");
        assert_eq!(loaded.config, config);
        assert_eq!(loaded.features, features);
        assert_eq!(loaded.model, model);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Reference values of the IEEE polynomial ("check" value of the
        // catalogue entry, plus the empty string).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
