//! Unsupervised model-health monitoring: detecting that the deployed model
//! is under attack, without labels.
//!
//! The recovery framework (§4) *repairs* damage; this module *notices* it.
//! The same signals recovery relies on — prediction confidence and
//! chunk-vote agreement — shift measurably when stored bits corrupt, so a
//! monitor that tracks their moving averages against a calibration baseline
//! raises an alarm as corruption accumulates. This is the runtime-detection
//! extension the paper's framework implies (its Figure 1 pipeline computes
//! every needed quantity already; the monitor only adds the statistics).

use crate::confidence::Confidence;
use crate::model::TrainedModel;
use hypervector::BinaryHypervector;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Health statistics over a window of observed queries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HealthSnapshot {
    /// Queries in the window.
    pub window: usize,
    /// Mean top-class confidence.
    pub mean_confidence: f64,
    /// Mean raw similarity margin between the top two classes.
    pub mean_margin: f64,
    /// Median raw similarity margin between the top two classes.
    ///
    /// The median is the robust twin of [`HealthSnapshot::mean_margin`]: a
    /// handful of queries with inflated margins (for example traffic a
    /// misdirected repair overfitted to) can drag the mean back into the
    /// healthy band while the bulk of the window is still broken, but they
    /// cannot move the median.
    pub median_margin: f64,
}

/// Verdict of a health check against the calibration baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HealthVerdict {
    /// Statistics within the calibrated band.
    Healthy,
    /// Confidence/margin depressed beyond the alarm threshold —
    /// corruption (or distribution shift) likely.
    Degraded,
    /// Not enough traffic observed to judge.
    InsufficientTraffic,
}

/// Sliding-window health monitor for a deployed model.
///
/// Calibrate on known-good traffic once ([`HealthMonitor::calibrate`]),
/// then feed production queries ([`HealthMonitor::observe`]) and poll
/// [`HealthMonitor::verdict`].
///
/// # Example
///
/// ```
/// use hypervector::random::HypervectorSampler;
/// use robusthd::diagnostics::{HealthMonitor, HealthVerdict};
/// use robusthd::{HdcConfig, TrainedModel};
///
/// # fn main() -> Result<(), robusthd::ConfigError> {
/// let dim = 4096;
/// let mut sampler = HypervectorSampler::seed_from(2);
/// let common = sampler.binary(dim);
/// let protos = [sampler.flip_noise(&common, 0.2), sampler.flip_noise(&common, 0.2)];
/// let queries: Vec<_> = (0..60)
///     .map(|i| sampler.flip_noise(&protos[i % 2], 0.05))
///     .collect();
/// let labels: Vec<_> = (0..60).map(|i| i % 2).collect();
/// let config = HdcConfig::builder().dimension(dim).build()?;
/// let mut model = TrainedModel::train(&queries, &labels, 2, &config);
///
/// let mut monitor = HealthMonitor::new(32, 0.5);
/// monitor.calibrate(&model, &queries, config.softmax_beta);
///
/// // Healthy traffic keeps the verdict clean...
/// for q in &queries {
///     monitor.observe(&model, q, config.softmax_beta);
/// }
/// assert_eq!(monitor.verdict(), HealthVerdict::Healthy);
///
/// // ...then a heavy attack depresses margins and trips the alarm.
/// let corrupted = sampler.flip_noise(model.class(0), 0.4);
/// *model.class_mut(0) = corrupted;
/// let corrupted = sampler.flip_noise(model.class(1), 0.4);
/// *model.class_mut(1) = corrupted;
/// for q in &queries {
///     monitor.observe(&model, q, config.softmax_beta);
/// }
/// assert_eq!(monitor.verdict(), HealthVerdict::Degraded);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Serialize, Deserialize)]
pub struct HealthMonitor {
    window: usize,
    /// Alarm when the windowed margin falls below `sensitivity` times the
    /// calibrated margin.
    sensitivity: f64,
    baseline: Option<HealthSnapshot>,
    confidences: VecDeque<f64>,
    margins: VecDeque<f64>,
}

impl HealthMonitor {
    /// Creates a monitor with the given sliding-window size and alarm
    /// sensitivity (fraction of the calibrated margin below which the
    /// verdict degrades; e.g. `0.5` alarms when margins halve).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or `sensitivity` is not in `(0, 1]`.
    pub fn new(window: usize, sensitivity: f64) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(
            sensitivity > 0.0 && sensitivity <= 1.0,
            "sensitivity must lie in (0, 1]"
        );
        Self {
            window,
            sensitivity,
            baseline: None,
            confidences: VecDeque::with_capacity(window),
            margins: VecDeque::with_capacity(window),
        }
    }

    /// Establishes the healthy baseline from known-good traffic.
    ///
    /// # Panics
    ///
    /// Panics if `queries` is empty.
    pub fn calibrate(
        &mut self,
        model: &TrainedModel,
        queries: &[BinaryHypervector],
        softmax_beta: f64,
    ) {
        let assessments: Vec<Confidence> = queries
            .iter()
            .map(|q| Confidence::evaluate(model, q, softmax_beta))
            .collect();
        self.calibrate_from(&assessments);
    }

    /// Establishes the healthy baseline from already-computed confidence
    /// assessments (for example a batch the
    /// [`crate::batch::BatchEngine`] scored).
    ///
    /// # Panics
    ///
    /// Panics if `assessments` is empty.
    pub fn calibrate_from(&mut self, assessments: &[Confidence]) {
        assert!(
            !assessments.is_empty(),
            "calibration traffic must not be empty"
        );
        let confidence_sum: f64 = assessments.iter().map(|c| c.confidence).sum();
        let margins: Vec<f64> = assessments.iter().map(|c| c.margin).collect();
        self.baseline = Some(HealthSnapshot {
            window: assessments.len(),
            mean_confidence: confidence_sum / assessments.len() as f64,
            mean_margin: margins.iter().sum::<f64>() / assessments.len() as f64,
            median_margin: median(&margins),
        });
    }

    /// The calibrated baseline, if any.
    pub fn baseline(&self) -> Option<HealthSnapshot> {
        self.baseline
    }

    /// Feeds one production query into the window.
    pub fn observe(&mut self, model: &TrainedModel, query: &BinaryHypervector, softmax_beta: f64) {
        let c = Confidence::evaluate(model, query, softmax_beta);
        self.record(&c);
    }

    /// Feeds one already-computed confidence assessment into the window —
    /// the batch-serving entry point: the supervisor scores a whole batch
    /// through the [`crate::batch::BatchEngine`] and records each result
    /// here, in query order, with exactly the statistics
    /// [`HealthMonitor::observe`] would have pushed.
    pub fn record(&mut self, assessment: &Confidence) {
        if self.confidences.len() == self.window {
            self.confidences.pop_front();
            self.margins.pop_front();
        }
        self.confidences.push_back(assessment.confidence);
        self.margins.push_back(assessment.margin);
    }

    /// Current window statistics (`None` until any traffic arrives).
    pub fn snapshot(&self) -> Option<HealthSnapshot> {
        if self.confidences.is_empty() {
            return None;
        }
        let n = self.confidences.len() as f64;
        let margins: Vec<f64> = self.margins.iter().copied().collect();
        Some(HealthSnapshot {
            window: self.confidences.len(),
            mean_confidence: self.confidences.iter().sum::<f64>() / n,
            mean_margin: margins.iter().sum::<f64>() / n,
            median_margin: median(&margins),
        })
    }

    /// Configured sliding-window size.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Discards every buffered observation, keeping the calibration
    /// baseline. Used after a model rollback: the buffered statistics
    /// describe the pre-rollback model and would poison the next verdict.
    pub fn reset_window(&mut self) {
        self.confidences.clear();
        self.margins.clear();
    }

    /// Judges the current window against the calibration.
    ///
    /// The verdict degrades when either the windowed *mean* or the
    /// windowed *median* margin falls below `sensitivity` times its
    /// calibrated counterpart. The mean reacts to diffuse damage spread
    /// thinly over every query; the median resists being whitewashed by a
    /// few outlier queries with artificially inflated margins (the
    /// signature of a repair loop overfitting garbage traffic).
    ///
    /// # Panics
    ///
    /// Panics if the monitor was never calibrated.
    pub fn verdict(&self) -> HealthVerdict {
        let baseline = self.baseline.expect("monitor must be calibrated first"); // audit:allow(panic): documented precondition: calibrate before verdict
        let Some(current) = self.snapshot() else {
            return HealthVerdict::InsufficientTraffic;
        };
        if current.window < self.window {
            return HealthVerdict::InsufficientTraffic;
        }
        if current.mean_margin < baseline.mean_margin * self.sensitivity
            || current.median_margin < baseline.median_margin * self.sensitivity
        {
            HealthVerdict::Degraded
        } else {
            HealthVerdict::Healthy
        }
    }

    /// Judges an arbitrary query set against the calibrated baseline
    /// without touching the sliding window.
    ///
    /// This is the *canary probe*: re-scoring retained known-good traffic
    /// that live serving (and any repair loop feeding on it) has never
    /// seen. A repair that merely overfits the live window restores the
    /// windowed statistics but not the canaries', so probing catches
    /// whitewashed damage that [`HealthMonitor::verdict`] alone would miss.
    ///
    /// Returns [`HealthVerdict::InsufficientTraffic`] for an empty set.
    ///
    /// # Panics
    ///
    /// Panics if the monitor was never calibrated.
    pub fn probe(
        &self,
        model: &TrainedModel,
        queries: &[BinaryHypervector],
        softmax_beta: f64,
    ) -> HealthVerdict {
        let margins: Vec<f64> = queries
            .iter()
            .map(|q| Confidence::evaluate(model, q, softmax_beta).margin)
            .collect();
        self.judge_margins(&margins)
    }

    /// Judges a set of already-computed raw margins against the calibrated
    /// baseline, without touching the sliding window — the canary probe
    /// with batch-computed inputs (see [`HealthMonitor::probe`]).
    ///
    /// Returns [`HealthVerdict::InsufficientTraffic`] for an empty set.
    ///
    /// # Panics
    ///
    /// Panics if the monitor was never calibrated.
    pub fn judge_margins(&self, margins: &[f64]) -> HealthVerdict {
        let baseline = self.baseline.expect("monitor must be calibrated first"); // audit:allow(panic): documented precondition: calibrate before verdict
        if margins.is_empty() {
            return HealthVerdict::InsufficientTraffic;
        }
        let mean = margins.iter().sum::<f64>() / margins.len() as f64;
        if mean < baseline.mean_margin * self.sensitivity
            || median(margins) < baseline.median_margin * self.sensitivity
        {
            HealthVerdict::Degraded
        } else {
            HealthVerdict::Healthy
        }
    }
}

/// Median of a non-empty sample (mean of the two middle elements when the
/// length is even).
fn median(sample: &[f64]) -> f64 {
    let mut sorted = sample.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid] // audit:allow(panic): odd non-empty sample: mid < len
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0 // audit:allow(panic): even non-empty sample: 1 <= mid < len
    }
}

impl fmt::Debug for HealthMonitor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HealthMonitor")
            .field("window", &self.window)
            .field("sensitivity", &self.sensitivity)
            .field("calibrated", &self.baseline.is_some())
            .field("observed", &self.confidences.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HdcConfig;
    use hypervector::random::HypervectorSampler;

    #[test]
    fn median_handles_odd_even_and_outliers() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        // A single huge outlier moves the mean but not the median.
        assert_eq!(median(&[0.01, 0.01, 0.01, 0.01, 100.0]), 0.01);
    }

    fn setup() -> (TrainedModel, Vec<BinaryHypervector>, f64) {
        let dim = 4096;
        let mut sampler = HypervectorSampler::seed_from(3);
        let common = sampler.binary(dim);
        let protos: Vec<_> = (0..3).map(|_| sampler.flip_noise(&common, 0.15)).collect();
        let queries: Vec<_> = (0..90)
            .map(|i| sampler.flip_noise(&protos[i % 3], 0.05))
            .collect();
        let labels: Vec<_> = (0..90).map(|i| i % 3).collect();
        let config = HdcConfig::builder().dimension(dim).build().expect("valid");
        let model = TrainedModel::train(&queries, &labels, 3, &config);
        (model, queries, config.softmax_beta)
    }

    #[test]
    fn healthy_traffic_stays_healthy() {
        let (model, queries, beta) = setup();
        let mut monitor = HealthMonitor::new(30, 0.5);
        monitor.calibrate(&model, &queries, beta);
        for q in &queries {
            monitor.observe(&model, q, beta);
        }
        assert_eq!(monitor.verdict(), HealthVerdict::Healthy);
    }

    #[test]
    fn heavy_corruption_degrades_verdict() {
        let (mut model, queries, beta) = setup();
        let mut monitor = HealthMonitor::new(30, 0.5);
        monitor.calibrate(&model, &queries, beta);
        let mut sampler = HypervectorSampler::seed_from(9);
        for c in 0..3 {
            let corrupted = sampler.flip_noise(model.class(c), 0.4);
            *model.class_mut(c) = corrupted;
        }
        for q in &queries {
            monitor.observe(&model, q, beta);
        }
        assert_eq!(monitor.verdict(), HealthVerdict::Degraded);
    }

    #[test]
    fn short_traffic_is_insufficient() {
        let (model, queries, beta) = setup();
        let mut monitor = HealthMonitor::new(50, 0.5);
        monitor.calibrate(&model, &queries, beta);
        assert_eq!(monitor.verdict(), HealthVerdict::InsufficientTraffic);
        for q in queries.iter().take(10) {
            monitor.observe(&model, q, beta);
        }
        assert_eq!(monitor.verdict(), HealthVerdict::InsufficientTraffic);
    }

    #[test]
    fn window_slides() {
        let (model, queries, beta) = setup();
        let mut monitor = HealthMonitor::new(20, 0.5);
        monitor.calibrate(&model, &queries, beta);
        for q in &queries {
            monitor.observe(&model, q, beta);
        }
        let snap = monitor.snapshot().expect("has traffic");
        assert_eq!(snap.window, 20);
    }

    #[test]
    fn mild_corruption_does_not_false_alarm() {
        // 2% flips barely move margins; sensitivity 0.5 must not trip.
        let (mut model, queries, beta) = setup();
        let mut monitor = HealthMonitor::new(30, 0.5);
        monitor.calibrate(&model, &queries, beta);
        let mut sampler = HypervectorSampler::seed_from(11);
        for c in 0..3 {
            let corrupted = sampler.flip_noise(model.class(c), 0.02);
            *model.class_mut(c) = corrupted;
        }
        for q in &queries {
            monitor.observe(&model, q, beta);
        }
        assert_eq!(monitor.verdict(), HealthVerdict::Healthy);
    }

    #[test]
    fn reset_window_clears_traffic_but_not_baseline() {
        let (model, queries, beta) = setup();
        let mut monitor = HealthMonitor::new(30, 0.5);
        monitor.calibrate(&model, &queries, beta);
        for q in &queries {
            monitor.observe(&model, q, beta);
        }
        assert_eq!(monitor.verdict(), HealthVerdict::Healthy);
        monitor.reset_window();
        assert_eq!(monitor.verdict(), HealthVerdict::InsufficientTraffic);
        assert!(monitor.snapshot().is_none());
        assert!(monitor.baseline().is_some());
    }

    #[test]
    #[should_panic(expected = "calibrated first")]
    fn verdict_without_calibration_panics() {
        HealthMonitor::new(10, 0.5).verdict();
    }

    #[test]
    #[should_panic(expected = "sensitivity")]
    fn invalid_sensitivity_panics() {
        HealthMonitor::new(10, 0.0);
    }
}
