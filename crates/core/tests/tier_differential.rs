//! Differential suite pinning the Wide execution tier bit-identical to the
//! Reference tier across every kernel family it re-routes — XOR+popcount
//! distances (pairwise, masked ranges, class-major scoring), the carry-save
//! majority ripple kernels, bipolar count extraction, threshold extraction,
//! and the bound-pair codebook XOR — plus the [`KernelConfig`] flag surface
//! (`ROBUSTHD_KERNEL_TIER`) that selects between them.
//!
//! Dimensions deliberately straddle both the 64-bit word boundary
//! (63/64/65) and the 8-word wide-block boundary (511/512/513), because
//! those are exactly the seams where a wide kernel's full-block path hands
//! off to its scalar tail.

use hypervector::random::HypervectorSampler;
use hypervector::similarity::{chunked_hamming, PackedClasses};
use hypervector::tier::{self, KernelTier};
use hypervector::BinaryHypervector;
use robusthd::{KernelConfig, TrainedModel};

/// Dimensions straddling the word boundary and the 8-word block boundary.
const DIMS: &[usize] = &[
    1, 63, 64, 65, 127, 128, 129, 511, 512, 513, 1000, 1024, 1025,
];

const WORD_BITS: usize = 64;

fn words_for(dim: usize) -> usize {
    dim.div_ceil(WORD_BITS)
}

/// Bit-by-bit Hamming distance over a range — the slowest, most obviously
/// correct oracle, independent of every word-level kernel under test.
fn bitwise_hamming_range(
    a: &BinaryHypervector,
    b: &BinaryHypervector,
    start: usize,
    end: usize,
) -> usize {
    (start..end).filter(|&i| a.get(i) != b.get(i)).count()
}

#[test]
fn tiers_agree_on_pairwise_hamming_across_block_boundaries() {
    let mut sampler = HypervectorSampler::seed_from(801);
    for &dim in DIMS {
        let a = sampler.binary(dim);
        let b = sampler.flip_noise(&a, 0.3);
        let aw = a.bits().words();
        let bw = b.bits().words();
        let reference = tier::hamming_words(KernelTier::Reference, aw, bw);
        let wide = tier::hamming_words(KernelTier::Wide, aw, bw);
        assert_eq!(wide, reference, "dim={dim}");
        assert_eq!(
            reference,
            bitwise_hamming_range(&a, &b, 0, dim),
            "dim={dim}"
        );
        assert_eq!(a.hamming_distance(&b), reference, "dim={dim} (active tier)");
    }
}

#[test]
fn tiers_agree_on_masked_ranges_at_word_boundaries() {
    // Satellite: the shared masked-range helper behind both
    // `hamming_distance_range` and `chunked_hamming`, probed at every
    // word-boundary seam of the small (63/64/65) and block-boundary
    // (511/512/513) dimensions.
    let mut sampler = HypervectorSampler::seed_from(802);
    for &dim in &[63usize, 64, 65, 511, 512, 513] {
        let a = sampler.binary(dim);
        let b = sampler.flip_noise(&a, 0.4);
        let aw = a.bits().words();
        let bw = b.bits().words();
        let mut marks: Vec<usize> = vec![0, 1, 62, 63, 64, 65, 127, 128, 129, 448, 511, 512, 513]
            .into_iter()
            .filter(|&m| m <= dim)
            .collect();
        marks.push(dim);
        marks.dedup();
        for &start in &marks {
            for &end in marks.iter().filter(|&&e| e >= start) {
                let oracle = bitwise_hamming_range(&a, &b, start, end);
                for tier in KernelTier::ALL {
                    let got = tier::hamming_range_words(tier, aw, bw, start, end);
                    assert_eq!(
                        got,
                        oracle,
                        "dim={dim} range=({start},{end}) tier={}",
                        tier.name()
                    );
                }
                assert_eq!(a.hamming_distance_range(&b, start, end), oracle);
            }
        }
    }
}

#[test]
fn tiers_agree_on_class_major_scoring() {
    let mut sampler = HypervectorSampler::seed_from(803);
    for &dim in &[65usize, 511, 512, 513, 1025] {
        let classes: Vec<_> = (0..7).map(|_| sampler.binary(dim)).collect();
        let query = sampler.flip_noise(&classes[2], 0.2);
        let packed = PackedClasses::from_classes(&classes);
        let fused = packed.hamming_all(&query);
        for tier in KernelTier::ALL {
            let per_class: Vec<usize> = classes
                .iter()
                .map(|c| tier::hamming_words(tier, c.bits().words(), query.bits().words()))
                .collect();
            assert_eq!(fused, per_class, "dim={dim} tier={}", tier.name());
        }
    }
}

#[test]
fn chunked_hamming_matches_reference_tier_per_chunk() {
    let mut sampler = HypervectorSampler::seed_from(804);
    for &dim in &[63usize, 65, 511, 512, 513, 1000] {
        let a = sampler.binary(dim);
        let b = sampler.flip_noise(&a, 0.25);
        for chunks in [1usize, 2, 7, 8, 16] {
            let fused = chunked_hamming(&a, &b, chunks);
            let per_chunk: Vec<usize> = (0..chunks)
                .map(|i| {
                    let start = i * dim / chunks;
                    let end = (i + 1) * dim / chunks;
                    tier::hamming_range_words(
                        KernelTier::Reference,
                        a.bits().words(),
                        b.bits().words(),
                        start,
                        end,
                    )
                })
                .collect();
            assert_eq!(fused, per_chunk, "dim={dim} chunks={chunks}");
            let total: usize = fused.iter().sum();
            assert_eq!(total, a.hamming_distance(&b), "dim={dim} chunks={chunks}");
        }
    }
}

#[test]
fn similarities_are_float_bit_exact_against_reference_tier() {
    // The acceptance bar: not "close", identical down to `f64::to_bits`.
    // Both tiers produce the same exact integer distances, and the float
    // expression applied to them is the same, so the similarity floats must
    // be indistinguishable.
    let mut sampler = HypervectorSampler::seed_from(805);
    for &dim in &[511usize, 512, 513, 1024] {
        let classes: Vec<_> = (0..5).map(|_| sampler.binary(dim)).collect();
        let query = sampler.flip_noise(&classes[0], 0.15);
        let model = TrainedModel::from_classes(classes.clone());
        let sims = model.similarities(&query);
        for (c, class) in classes.iter().enumerate() {
            let d = tier::hamming_words(
                KernelTier::Reference,
                class.bits().words(),
                query.bits().words(),
            );
            let expected = 1.0 - d as f64 / dim as f64;
            assert_eq!(sims[c].to_bits(), expected.to_bits(), "dim={dim} class={c}");
        }
    }
}

#[test]
fn tiers_agree_on_codebook_xor() {
    let mut sampler = HypervectorSampler::seed_from(806);
    for &dim in DIMS {
        let a = sampler.binary(dim);
        let b = sampler.binary(dim);
        let words = words_for(dim);
        let mut reference = vec![0u64; words];
        let mut wide = vec![0u64; words];
        tier::xor_words_into(
            KernelTier::Reference,
            &mut reference,
            a.bits().words(),
            b.bits().words(),
        );
        tier::xor_words_into(
            KernelTier::Wide,
            &mut wide,
            a.bits().words(),
            b.bits().words(),
        );
        assert_eq!(wide, reference, "dim={dim}");
        assert_eq!(a.bind(&b).bits().words(), &reference[..], "dim={dim}");
    }
}

/// Builds majority bit-planes through the tier-explicit ripple kernels.
fn planes_via(tier: KernelTier, inputs: &[BinaryHypervector], words: usize) -> Vec<Vec<u64>> {
    let mut planes = vec![vec![0u64; words]; 12];
    for hv in inputs {
        tier::ripple_add(tier, &mut planes, hv.bits().words());
    }
    planes
}

#[test]
fn tiers_agree_on_majority_ripple_planes() {
    let mut sampler = HypervectorSampler::seed_from(807);
    for &dim in &[63usize, 65, 511, 512, 513, 1025] {
        for count in [1usize, 2, 7, 64, 129] {
            let inputs: Vec<_> = (0..count).map(|_| sampler.binary(dim)).collect();
            let words = words_for(dim);
            let reference = planes_via(KernelTier::Reference, &inputs, words);
            let wide = planes_via(KernelTier::Wide, &inputs, words);
            assert_eq!(wide, reference, "dim={dim} count={count}");

            // Fused xor-add path: pair each input with a rolling key.
            let key = sampler.binary(dim);
            let mut ref_xor = vec![vec![0u64; words]; 12];
            let mut wide_xor = vec![vec![0u64; words]; 12];
            for hv in &inputs {
                tier::ripple_add_xor(
                    KernelTier::Reference,
                    &mut ref_xor,
                    hv.bits().words(),
                    key.bits().words(),
                );
                tier::ripple_add_xor(
                    KernelTier::Wide,
                    &mut wide_xor,
                    hv.bits().words(),
                    key.bits().words(),
                );
            }
            assert_eq!(wide_xor, ref_xor, "xor dim={dim} count={count}");
        }
    }
}

#[test]
fn tiers_agree_on_bipolar_counts_and_threshold() {
    let mut sampler = HypervectorSampler::seed_from(808);
    const TIE_PARITY: u64 = 0x5555_5555_5555_5555;
    for &dim in &[65usize, 511, 512, 513] {
        for count in [2usize, 8, 57, 128] {
            let inputs: Vec<_> = (0..count).map(|_| sampler.binary(dim)).collect();
            let words = words_for(dim);
            let planes = planes_via(KernelTier::Reference, &inputs, words);
            let added = count as i64;

            let mut ref_counts = vec![0i64; dim];
            let mut wide_counts = vec![0i64; dim];
            tier::bipolar_accumulate(KernelTier::Reference, &planes, added, &mut ref_counts);
            tier::bipolar_accumulate(KernelTier::Wide, &planes, added, &mut wide_counts);
            assert_eq!(wide_counts, ref_counts, "counts dim={dim} count={count}");
            for (i, &c) in ref_counts.iter().enumerate() {
                let ones = inputs.iter().filter(|hv| hv.get(i)).count() as i64;
                assert_eq!(
                    c,
                    2 * ones - added,
                    "oracle dim={dim} count={count} bit {i}"
                );
            }

            let half = (count as u64) / 2;
            for tie_mask in [0u64, TIE_PARITY] {
                let mut reference = vec![0u64; words];
                let mut wide = vec![0u64; words];
                tier::threshold_words(
                    KernelTier::Reference,
                    &planes,
                    half,
                    tie_mask,
                    &mut reference,
                );
                tier::threshold_words(KernelTier::Wide, &planes, half, tie_mask, &mut wide);
                assert_eq!(
                    wide, reference,
                    "threshold dim={dim} count={count} tie_mask={tie_mask:#x}"
                );
            }
        }
    }
}

#[test]
fn kernel_config_selects_and_installs_tiers() {
    // `KernelConfig` is the registered owner of `ROBUSTHD_KERNEL_TIER`: the
    // default is the wide tier, `reference()` is the scalar opt-out, and
    // installation is first-caller-wins and sticky for the process.
    assert_eq!(KernelConfig::default(), KernelConfig::wide());
    assert_eq!(KernelConfig::wide().tier, KernelTier::Wide);
    assert_eq!(KernelConfig::reference().tier, KernelTier::Reference);
    assert_eq!(KernelConfig::wide().tier.name(), "wide");
    assert_eq!(KernelConfig::reference().tier.name(), "reference");

    // Whichever install wins the race (another test in this binary may have
    // resolved the tier already), repeat installs return the same winner.
    let first = KernelConfig::wide().install();
    let second = KernelConfig::reference().install();
    let third = KernelConfig::from_env().install();
    assert_eq!(first, second);
    assert_eq!(second, third);
}
