//! Metamorphic tests of batched inference: transformations of the input
//! with a known effect on the output — permuting the batch, XOR-binding
//! query and classes with a shared key, complementing every bit — must
//! change the engine's answers in exactly the predicted way.

use hypervector::random::HypervectorSampler;
use hypervector::{BinaryHypervector, PackedClasses};
use robusthd::{BatchConfig, BatchEngine, TrainedModel};

const DIM: usize = 2048;

fn setup(seed: u64, classes: usize, queries: usize) -> (TrainedModel, Vec<BinaryHypervector>) {
    let mut sampler = HypervectorSampler::seed_from(seed);
    let protos: Vec<_> = (0..classes).map(|_| sampler.binary(DIM)).collect();
    let queries = (0..queries)
        .map(|i| sampler.flip_noise(&protos[i % classes], 0.3))
        .collect();
    (TrainedModel::from_classes(protos), queries)
}

fn engine(threads: usize) -> BatchEngine {
    let mut engine = BatchEngine::from_env();
    engine.set_config(
        BatchConfig::builder()
            .threads(threads)
            .shard_size(11)
            .build()
            .expect("valid"),
    );
    engine
}

/// Deterministic pseudo-shuffle: maps index `i` to `(i * step) % len` with
/// `step` coprime to `len`, a full permutation without needing an RNG.
fn permutation(len: usize) -> Vec<usize> {
    let step = (0..)
        .map(|k| 5 + 2 * k)
        .find(|s| gcd(*s, len) == 1)
        .expect("coprime exists");
    (0..len).map(|i| (i * step) % len).collect()
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[test]
fn batch_order_permutation_permutes_answers() {
    let (model, queries) = setup(3, 5, 77);
    let engine = engine(4);
    let base = engine.predict_batch(&model, &queries);
    let scores = engine.evaluate_batch(&model, &queries, 128.0);

    let perm = permutation(queries.len());
    let shuffled: Vec<_> = perm.iter().map(|&i| queries[i].clone()).collect();
    let shuffled_predictions = engine.predict_batch(&model, &shuffled);
    let shuffled_scores = engine.evaluate_batch(&model, &shuffled, 128.0);
    for (pos, &src) in perm.iter().enumerate() {
        assert_eq!(shuffled_predictions[pos], base[src], "prediction moved");
        assert_eq!(shuffled_scores[pos], scores[src], "score moved");
    }
}

#[test]
fn binding_queries_and_classes_with_shared_key_preserves_everything() {
    let (model, queries) = setup(9, 4, 50);
    let key = HypervectorSampler::seed_from(0xDEAD).binary(DIM);

    let bound_classes: Vec<_> = model.classes().iter().map(|c| c.bind(&key)).collect();
    let bound_model = TrainedModel::from_classes(bound_classes);
    let bound_queries: Vec<_> = queries.iter().map(|q| q.bind(&key)).collect();

    let engine = engine(4);
    // XOR binding is an isometry of Hamming space, so every distance — and
    // therefore every prediction, confidence, and margin — is unchanged.
    assert_eq!(
        engine.evaluate_batch(&bound_model, &bound_queries, 128.0),
        engine.evaluate_batch(&model, &queries, 128.0)
    );
    let packed = PackedClasses::from_classes(model.classes());
    let bound_packed = PackedClasses::from_classes(bound_model.classes());
    for (q, bq) in queries.iter().zip(&bound_queries) {
        assert_eq!(
            bound_packed.hamming_all(bq),
            packed.hamming_all(q),
            "binding moved a raw distance"
        );
    }
}

#[test]
fn complementing_every_bit_preserves_argmin() {
    let (model, queries) = setup(27, 6, 60);
    let ones = BinaryHypervector::ones(DIM);
    let flipped_classes: Vec<_> = model.classes().iter().map(|c| c.bind(&ones)).collect();
    let flipped_model = TrainedModel::from_classes(flipped_classes);
    let flipped_queries: Vec<_> = queries.iter().map(|q| q.bind(&ones)).collect();

    let engine = engine(2);
    assert_eq!(
        engine.predict_batch(&flipped_model, &flipped_queries),
        engine.predict_batch(&model, &queries),
        "complementing both sides moved an argmin"
    );
}
