//! Differential suite for the multi-tenant fleet layer: serving a mixed
//! tenant stream through a memory-budgeted [`ModelRegistry`] must be
//! **bit-exact** with serving each tenant alone — labels equal and
//! confidences [`f64::to_bits`]-identical — across worker thread counts,
//! eviction/rehydration cycles (models leaving and re-entering the budget
//! through their RHD2 byte images), and interleaved tenant orderings.
//!
//! This file closes the config/test duality for `FleetConfig`: the budget
//! knob may only change *when* a model is resident, never *what* any query
//! scores.

use robusthd::supervisor::ResilienceSupervisor;
use robusthd::{
    BatchConfig, BatchEngine, Encoder, FleetConfig, HdcConfig, ModelRegistry, RecordEncoder,
    RecoveryConfig, SubstitutionMode, SupervisorConfig, TrainedModel,
};

const FEATURES: usize = 6;
const CLASSES: usize = 4;
const DIM: usize = 512;
const TENANTS: usize = 6;

struct Tenant {
    id: String,
    config: HdcConfig,
    encoder: RecordEncoder,
    model: TrainedModel,
    rows: Vec<Vec<f64>>,
    canaries: Vec<hypervector::BinaryHypervector>,
}

/// Deterministic clustered workload per tenant; tenants alternate between
/// two encoder cohorts so the registry's encoder sharing is in play.
fn build_tenants() -> Vec<Tenant> {
    (0..TENANTS)
        .map(|t| {
            let config = HdcConfig::builder()
                .dimension(DIM)
                .seed(100 + (t % 2) as u64)
                .build()
                .expect("valid config");
            let encoder = RecordEncoder::new(&config, FEATURES);
            let mut rows = Vec::new();
            let mut labels = Vec::new();
            for c in 0..CLASSES {
                for s in 0..5 {
                    rows.push(
                        (0..FEATURES)
                            .map(|f| {
                                let center = ((c * 31 + f * 17 + t * 7) % 97) as f64 / 97.0;
                                let jitter = ((s * 13 + f * 7) % 5) as f64 / 400.0;
                                (center + jitter).min(1.0)
                            })
                            .collect::<Vec<f64>>(),
                    );
                    labels.push(c);
                }
            }
            let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
            let encoded = encoder.encode_batch_refs(&refs);
            let model = TrainedModel::train(&encoded, &labels, CLASSES, &config);
            Tenant {
                id: format!("tenant-{t}"),
                config,
                encoder,
                model,
                rows,
                canaries: encoded,
            }
        })
        .collect()
}

/// A budget that fits only two of the six tenants, so every pass over the
/// interleaved stream forces eviction and rehydration.
fn tight_budget() -> usize {
    2 * 2 * CLASSES * DIM.div_ceil(64) * 8
}

fn batch_config(threads: usize) -> BatchConfig {
    BatchConfig::builder()
        .threads(threads)
        .shard_size(8)
        .build()
        .expect("valid batch config")
}

/// An interleaved mixed stream: several passes, each visiting tenants in a
/// rotating order so the LRU never settles.
fn interleaved_stream(tenants: &[Tenant]) -> Vec<(&str, &[f64])> {
    let mut stream = Vec::new();
    for pass in 0..4 {
        for slot in 0..tenants.len() {
            let tenant = &tenants[(slot + pass) % tenants.len()];
            for k in 0..3 {
                let row = &tenant.rows[(pass * 5 + slot + k) % tenant.rows.len()];
                stream.push((tenant.id.as_str(), row.as_slice()));
            }
        }
    }
    stream
}

/// Mirrors [`ModelRegistry::route_batch`]'s grouping: indices per tenant
/// in first-appearance order.
fn group_by_tenant<'a>(batch: &[(&'a str, &[f64])]) -> Vec<(&'a str, Vec<usize>)> {
    let mut groups: Vec<(&str, Vec<usize>)> = Vec::new();
    for (index, (id, _)) in batch.iter().enumerate() {
        match groups.iter_mut().find(|(gid, _)| gid == id) {
            Some((_, indices)) => indices.push(index),
            None => groups.push((id, vec![index])),
        }
    }
    groups
}

#[test]
fn route_batch_matches_solo_engine_bit_for_bit_across_threads() {
    let tenants = build_tenants();
    for threads in [1usize, 4] {
        let fleet_config = FleetConfig::builder()
            .budget_bytes(tight_budget())
            .build()
            .expect("valid fleet config");
        let mut registry = ModelRegistry::new(fleet_config);
        registry.set_batch_config(batch_config(threads));
        for tenant in &tenants {
            registry
                .register_trained(&tenant.id, &tenant.config, FEATURES, &tenant.model)
                .expect("registration succeeds");
        }

        let engine = BatchEngine::new(batch_config(threads));
        let stream = interleaved_stream(&tenants);
        for batch in stream.chunks(13) {
            let fleet = registry.route_batch(batch).expect("route succeeds");
            for (id, indices) in group_by_tenant(batch) {
                let tenant = tenants
                    .iter()
                    .find(|t| t.id == id)
                    .expect("stream only names built tenants");
                let rows: Vec<&[f64]> = indices.iter().map(|&i| batch[i].1).collect();
                let solo = engine.evaluate_raw_batch(
                    &tenant.encoder,
                    &tenant.model,
                    &rows,
                    tenant.config.softmax_beta,
                );
                for (&index, score) in indices.iter().zip(&solo) {
                    assert_eq!(
                        fleet[index].label,
                        Some(score.predicted),
                        "label diverges: threads={threads} tenant={id} index={index}"
                    );
                    assert_eq!(
                        fleet[index].confidence.to_bits(),
                        score.confidence.confidence.to_bits(),
                        "confidence bits diverge: threads={threads} tenant={id} index={index}"
                    );
                }
            }
        }

        let stats = registry.stats();
        assert!(
            stats.evictions > 0 && stats.rehydrations > 0,
            "the tight budget must force churn (evictions={}, rehydrations={})",
            stats.evictions,
            stats.rehydrations
        );
        assert!(
            stats.resident_bytes <= stats.budget_bytes,
            "resident set exceeds the budget"
        );
        assert!(
            stats.shared_encoders <= 2,
            "two cohorts must share two encoders, got {}",
            stats.shared_encoders
        );
    }
}

fn supervision() -> (RecoveryConfig, SupervisorConfig) {
    let recovery = RecoveryConfig::builder()
        .confidence_threshold(0.45)
        .substitution_rate(0.5)
        .substitution(SubstitutionMode::MajorityCounter { saturation: 3 })
        .seed(0x5EE4)
        .build()
        .expect("valid recovery config");
    let policy = SupervisorConfig::builder()
        .window(16)
        .checkpoint_interval(4)
        .build()
        .expect("valid policy");
    (recovery, policy)
}

#[test]
fn serve_supervised_matches_bare_supervisors_bit_for_bit_across_threads() {
    let tenants = build_tenants();
    for threads in [1usize, 4] {
        let fleet_config = FleetConfig::builder()
            .budget_bytes(tight_budget())
            .build()
            .expect("valid fleet config");
        let mut registry = ModelRegistry::new(fleet_config);
        registry.set_batch_config(batch_config(threads));
        let (recovery, policy) = supervision();
        for tenant in &tenants {
            registry
                .register_trained(&tenant.id, &tenant.config, FEATURES, &tenant.model)
                .expect("registration succeeds");
            registry
                .calibrate(
                    &tenant.id,
                    recovery.clone(),
                    policy.clone(),
                    &tenant.canaries,
                )
                .expect("calibration succeeds");
        }

        // Identically calibrated standalone supervisors: same recovery
        // seed, same policy, same batch config, same canaries.
        let mut solo: Vec<(TrainedModel, ResilienceSupervisor)> = tenants
            .iter()
            .map(|tenant| {
                let model = tenant.model.clone();
                let mut supervisor = ResilienceSupervisor::new(
                    &tenant.config,
                    recovery.clone(),
                    policy.clone(),
                    FEATURES,
                );
                supervisor.set_batch_config(batch_config(threads));
                supervisor.calibrate(&model, &tenant.canaries);
                (model, supervisor)
            })
            .collect();

        let stream = interleaved_stream(&tenants);
        for (round, batch) in stream.chunks(13).enumerate() {
            let fleet = registry.serve_supervised(batch).expect("serve succeeds");
            for (id, indices) in group_by_tenant(batch) {
                let slot = tenants
                    .iter()
                    .position(|t| t.id == id)
                    .expect("stream only names built tenants");
                let rows: Vec<&[f64]> = indices.iter().map(|&i| batch[i].1).collect();
                let (model, supervisor) = &mut solo[slot];
                let (report, scores) =
                    supervisor.serve_raw_batch_with_scores(&tenants[slot].encoder, model, &rows);
                for ((&index, label), score) in indices.iter().zip(&report.answers).zip(&scores) {
                    assert_eq!(
                        fleet[index].label, *label,
                        "label diverges: threads={threads} round={round} tenant={id}"
                    );
                    assert_eq!(
                        fleet[index].confidence.to_bits(),
                        score.confidence.confidence.to_bits(),
                        "confidence bits diverge: threads={threads} round={round} tenant={id}"
                    );
                }
            }

            // Force a full eviction cycle mid-stream: every answer after
            // this point is served by a model rehydrated from bytes.
            if round == 2 {
                for tenant in &tenants {
                    registry.evict(&tenant.id).expect("eviction succeeds");
                }
            }
        }

        let stats = registry.stats();
        assert!(
            stats.evictions > 0 && stats.rehydrations > 0,
            "supervised churn missing (evictions={}, rehydrations={})",
            stats.evictions,
            stats.rehydrations
        );
    }
}
