//! Differential tests: the parallel batch engine must be bit-identical to
//! the sequential inference path for every thread count and batch size, on
//! every model state a deployment can reach — clean, attacked,
//! mid-recovery, and with classes under active quarantine.

use faultsim::Attacker;
use hypervector::random::HypervectorSampler;
use hypervector::BinaryHypervector;
use robusthd::supervisor::ResilienceSupervisor;
use robusthd::{
    BatchConfig, BatchEngine, Confidence, HdcConfig, RecoveryConfig, RecoveryEngine,
    SubstitutionMode, SupervisorConfig, TrainedModel,
};

const DIM: usize = 2048;
const BETA: f64 = 128.0;

/// Synthetic deployment: class prototypes plus noisy queries drawn around
/// them, so predictions exercise real (non-degenerate) margins.
fn setup(seed: u64, classes: usize, queries: usize) -> (TrainedModel, Vec<BinaryHypervector>) {
    let mut sampler = HypervectorSampler::seed_from(seed);
    let protos: Vec<_> = (0..classes).map(|_| sampler.binary(DIM)).collect();
    let queries = (0..queries)
        .map(|i| sampler.flip_noise(&protos[i % classes], 0.25))
        .collect();
    (TrainedModel::from_classes(protos), queries)
}

fn engine(threads: usize, shard_size: usize) -> BatchEngine {
    let mut engine = BatchEngine::from_env();
    engine.set_config(
        BatchConfig::builder()
            .threads(threads)
            .shard_size(shard_size)
            .build()
            .expect("valid tuning"),
    );
    engine
}

fn attack(model: &TrainedModel, rate: f64, seed: u64) -> TrainedModel {
    let mut image = model.to_memory_image();
    let bits = image.len();
    Attacker::seed_from(seed).random_flips(image.words_mut(), bits, rate);
    image.mask_tail();
    let mut attacked = model.clone();
    attacked.load_memory_image(&image);
    attacked
}

/// Asserts the engine output is bit-identical to the sequential path on
/// this exact model state: same predictions, and `f64::to_bits`-equal
/// confidence, margin, and per-class probabilities.
fn assert_bit_identical(model: &TrainedModel, queries: &[BinaryHypervector], engine: &BatchEngine) {
    let sequential_predictions: Vec<usize> = queries.iter().map(|q| model.predict(q)).collect();
    assert_eq!(
        engine.predict_batch(model, queries),
        sequential_predictions,
        "predictions diverge"
    );
    let scores = engine.evaluate_batch(model, queries, BETA);
    assert_eq!(scores.len(), queries.len());
    for (score, query) in scores.iter().zip(queries) {
        let reference = Confidence::evaluate(model, query, BETA);
        assert_eq!(score.confidence.label, reference.label, "label diverges");
        assert_eq!(
            score.confidence.confidence.to_bits(),
            reference.confidence.to_bits(),
            "confidence not bit-identical"
        );
        assert_eq!(
            score.confidence.margin.to_bits(),
            reference.margin.to_bits(),
            "margin not bit-identical"
        );
        assert_eq!(
            score.confidence.probabilities.len(),
            reference.probabilities.len()
        );
        for (got, want) in score
            .confidence
            .probabilities
            .iter()
            .zip(&reference.probabilities)
        {
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "probability not bit-identical"
            );
        }
    }
}

#[test]
fn clean_models_are_bit_identical_across_the_tuning_grid() {
    for seed in [1u64, 42, 977] {
        for &batch in &[1usize, 7, 33, 96] {
            let (model, queries) = setup(seed, 5, batch);
            for &threads in &[1usize, 2, 4, 8] {
                assert_bit_identical(&model, &queries, &engine(threads, 13));
            }
        }
    }
}

#[test]
fn attacked_models_are_bit_identical_at_every_thread_count() {
    let (clean, queries) = setup(7, 6, 64);
    for &rate in &[0.05f64, 0.2, 0.45] {
        let attacked = attack(&clean, rate, 0xBAD ^ rate.to_bits());
        for &threads in &[1usize, 2, 4, 8] {
            assert_bit_identical(&attacked, &queries, &engine(threads, 8));
        }
    }
}

#[test]
fn mid_recovery_model_states_are_bit_identical() {
    let (clean, queries) = setup(13, 4, 48);
    let mut model = attack(&clean, 0.3, 0x5EED);
    let config = RecoveryConfig::builder()
        .confidence_threshold(0.3)
        .substitution_rate(0.5)
        .substitution(SubstitutionMode::MajorityCounter { saturation: 3 })
        .seed(99)
        .build()
        .expect("valid recovery config");
    let mut recovery = RecoveryEngine::new(config, BETA);
    // Interleave repair work with differential checks so the engine is
    // exercised against genuinely half-repaired models, not just the
    // endpoints.
    for round in 0..6 {
        for query in queries.iter().skip(round).step_by(3) {
            recovery.observe(&mut model, query);
        }
        for &threads in &[1usize, 4, 8] {
            assert_bit_identical(&model, &queries, &engine(threads, 7));
        }
    }
}

/// Builds a calibrated supervisor over the given thread count; everything
/// except the batch tuning is identical across calls.
fn supervised_deployment(
    threads: usize,
    model: &TrainedModel,
    canaries: &[BinaryHypervector],
) -> ResilienceSupervisor {
    let hdc = HdcConfig::builder()
        .dimension(DIM)
        .seed(5)
        .build()
        .expect("valid");
    let base = RecoveryConfig::builder()
        .confidence_threshold(0.45)
        .substitution_rate(0.5)
        .substitution(SubstitutionMode::MajorityCounter { saturation: 3 })
        .seed(21)
        .build()
        .expect("valid");
    let policy = SupervisorConfig::builder()
        .window(32)
        .sensitivity(0.9)
        .quarantine_min_chunks(1)
        .quarantine_fault_ceiling(0.01)
        .build()
        .expect("valid");
    let mut supervisor = ResilienceSupervisor::new(&hdc, base, policy, 0);
    supervisor.set_batch_config(
        BatchConfig::builder()
            .threads(threads)
            .shard_size(9)
            .build()
            .expect("valid"),
    );
    supervisor.calibrate(model, canaries);
    supervisor
}

#[test]
fn supervised_serving_is_bit_identical_including_under_quarantine() {
    let (clean, all_queries) = setup(31, 4, 128);
    let (canaries, served) = all_queries.split_at(64);

    let mut reports_by_threads = Vec::new();
    let mut quarantine_seen = false;
    for &threads in &[1usize, 4] {
        let mut supervisor = supervised_deployment(threads, &clean, canaries);
        let mut model = clean.clone();
        let mut reports = Vec::new();
        for step in 0..4 {
            // Corrupt between batches: diffuse background flips plus a
            // concentrated burst on class 0's leading chunks, so the loop
            // walks through degraded verdicts, repair, and active per-class
            // quarantine — the full state space the engine serves under.
            if step > 0 {
                model = attack(&model, 0.05, 0xC0DE + step as u64);
                let mut image = model.to_memory_image();
                for word in image.words_mut()[..6].iter_mut() {
                    *word = !*word;
                }
                image.mask_tail();
                model.load_memory_image(&image);
            }
            let report = supervisor.serve_batch(&mut model, served);
            quarantine_seen |= !report.quarantined.is_empty();
            reports.push(report);
        }
        reports_by_threads.push(reports);
    }
    assert_eq!(
        reports_by_threads[0], reports_by_threads[1],
        "supervised serving diverges between 1 and 4 threads"
    );
    assert!(
        quarantine_seen,
        "scenario never quarantined a class; differential coverage is incomplete"
    );
}

#[test]
fn fault_scans_are_bit_identical_across_thread_counts() {
    let (clean, queries) = setup(17, 5, 40);
    let attacked = attack(&clean, 0.25, 0xFA17);
    let predictions: Vec<usize> = queries.iter().map(|q| attacked.predict(q)).collect();
    let reference = engine(1, 1).scan_faults_batch(&attacked, &queries, &predictions, 8, 0.25);
    for &threads in &[2usize, 4, 8] {
        for &shard in &[3usize, 64] {
            assert_eq!(
                engine(threads, shard).scan_faults_batch(
                    &attacked,
                    &queries,
                    &predictions,
                    8,
                    0.25
                ),
                reference,
                "fault scan diverges at {threads} threads, shard {shard}"
            );
        }
    }
}
