//! Differential suite for the encoding fast path: the bound-pair codebook +
//! carry-save majority kernel must reproduce the scalar reference encoder
//! bit for bit — through encodings, trained models, fused batch serving
//! (down to `f64::to_bits` on every confidence), and the resilience
//! supervisor's raw-serving loop — across thread counts and
//! non-multiple-of-64 dimensions.

use robusthd::supervisor::ResilienceSupervisor;
use robusthd::{
    BatchConfig, BatchEngine, EncodeConfig, Encoder, HdcConfig, RecordEncoder, RecoveryConfig,
    SubstitutionMode, SupervisorConfig, TrainedModel,
};

/// Deterministic pseudo-random feature rows in `[0, 1]`, including exact
/// 0.0/1.0 extremes and out-of-range values (which must clamp).
fn feature_rows(count: usize, features: usize, salt: u64) -> Vec<Vec<f64>> {
    (0..count)
        .map(|i| {
            (0..features)
                .map(|k| {
                    let mix = (i as u64)
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        .wrapping_add(k as u64)
                        .wrapping_mul(salt | 1);
                    match mix % 11 {
                        0 => 0.0,
                        1 => 1.0,
                        2 => -0.25,
                        3 => 1.75,
                        _ => (mix % 1000) as f64 / 999.0,
                    }
                })
                .collect()
        })
        .collect()
}

fn encoder_pair(dim: usize, features: usize, seed: u64) -> (RecordEncoder, RecordEncoder) {
    let cfg = HdcConfig::builder()
        .dimension(dim)
        .seed(seed)
        .build()
        .expect("valid");
    let fast = RecordEncoder::with_encode_config(&cfg, features, EncodeConfig::fast());
    let reference = RecordEncoder::with_encode_config(&cfg, features, EncodeConfig::reference());
    assert!(fast.fast_path() && !reference.fast_path());
    (fast, reference)
}

fn engine(threads: usize) -> BatchEngine {
    BatchEngine::new(
        BatchConfig::builder()
            .threads(threads)
            .shard_size(7)
            .build()
            .expect("valid"),
    )
}

#[test]
fn encodings_agree_across_dims_and_feature_counts() {
    // Dimensions straddle word boundaries; feature counts cross every
    // carry-save plane-growth boundary and include even counts (tie
    // cases in the majority threshold).
    for &dim in &[63usize, 64, 65, 1000, 2113] {
        for &features in &[1usize, 2, 4, 5, 64, 129] {
            let (fast, reference) = encoder_pair(dim, features, 42);
            for row in feature_rows(8, features, dim as u64) {
                assert_eq!(
                    fast.encode(&row),
                    reference.encode(&row),
                    "dim={dim} features={features} row={row:?}"
                );
            }
        }
    }
}

#[test]
fn tie_heavy_even_feature_counts_agree() {
    // With an even number of bundled pairs, exact ties occur and resolve
    // by index parity — the hardest contract for the word-parallel
    // threshold. Constant rows maximize repeated level vectors.
    for &features in &[2usize, 4, 6, 64, 256] {
        let (fast, reference) = encoder_pair(193, features, 7);
        for value in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let row = vec![value; features];
            assert_eq!(
                fast.encode(&row),
                reference.encode(&row),
                "features={features} value={value}"
            );
        }
    }
}

#[test]
fn fused_serving_is_float_identical_across_threads() {
    let dim = 1000; // deliberately not a multiple of 64
    let features = 13;
    let (fast, reference) = encoder_pair(dim, features, 3);
    let rows = feature_rows(150, features, 9);
    let row_refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();

    let cfg = HdcConfig::builder()
        .dimension(dim)
        .seed(3)
        .build()
        .expect("valid");
    let encoded: Vec<_> = row_refs.iter().map(|r| fast.encode(r)).collect();
    let labels: Vec<usize> = (0..rows.len()).map(|i| i % 4).collect();
    let model = TrainedModel::train(&encoded, &labels, 4, &cfg);
    let beta = cfg.softmax_beta;

    let baseline = engine(1).evaluate_raw_batch(&reference, &model, &row_refs, beta);
    for threads in [1usize, 4] {
        for enc in [&fast, &reference] {
            let scores = engine(threads).evaluate_raw_batch(enc, &model, &row_refs, beta);
            assert_eq!(scores.len(), baseline.len());
            for (score, reference_score) in scores.iter().zip(&baseline) {
                assert_eq!(score.predicted, reference_score.predicted);
                assert_eq!(
                    score.confidence.confidence.to_bits(),
                    reference_score.confidence.confidence.to_bits(),
                    "threads={threads}"
                );
                assert_eq!(
                    score.confidence.margin.to_bits(),
                    reference_score.confidence.margin.to_bits(),
                    "threads={threads}"
                );
                for (p, q) in score
                    .confidence
                    .probabilities
                    .iter()
                    .zip(&reference_score.confidence.probabilities)
                {
                    assert_eq!(p.to_bits(), q.to_bits(), "threads={threads}");
                }
            }
        }
    }
}

#[test]
fn trained_models_are_identical_whichever_path_encoded_them() {
    let (fast, reference) = encoder_pair(1000, 9, 11);
    let rows = feature_rows(120, 9, 13);
    let row_refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
    let labels: Vec<usize> = (0..rows.len()).map(|i| i % 3).collect();
    let cfg = HdcConfig::builder()
        .dimension(1000)
        .seed(11)
        .build()
        .expect("valid");

    for threads in [1usize, 4] {
        let from_fast = TrainedModel::train(
            &engine(threads).encode_batch(&fast, &row_refs),
            &labels,
            3,
            &cfg,
        );
        let from_reference =
            TrainedModel::train(&reference.encode_batch_refs(&row_refs), &labels, 3, &cfg);
        assert_eq!(
            from_fast.to_memory_image().words(),
            from_reference.to_memory_image().words(),
            "threads={threads}"
        );
    }
}

fn supervisor_for(cfg: &HdcConfig) -> ResilienceSupervisor {
    let base = RecoveryConfig::builder()
        .confidence_threshold(0.45)
        .substitution_rate(0.5)
        .substitution(SubstitutionMode::MajorityCounter { saturation: 3 })
        .seed(1)
        .build()
        .expect("valid");
    let policy = SupervisorConfig::builder()
        .window(30)
        .sensitivity(0.6)
        .build()
        .expect("valid");
    ResilienceSupervisor::new(cfg, base, policy, 0)
}

#[test]
fn supervisor_raw_serving_matches_encoded_serving() {
    let dim = 1000;
    let features = 10;
    let cfg = HdcConfig::builder()
        .dimension(dim)
        .seed(21)
        .build()
        .expect("valid");
    let encoder = RecordEncoder::with_encode_config(&cfg, features, EncodeConfig::fast());
    let rows = feature_rows(90, features, 17);
    let row_refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
    let encoded = encoder.encode_batch_refs(&row_refs);
    let labels: Vec<usize> = (0..rows.len()).map(|i| i % 3).collect();
    let clean = TrainedModel::train(&encoded, &labels, 3, &cfg);

    // Two identical supervisors serve the same traffic — one pre-encoded,
    // one raw — through healthy batches and a degraded episode (class 1
    // vector corrupted so the lazy encode in the raw path actually runs).
    let mut model_a = clean.clone();
    let mut model_b = clean.clone();
    let mut sup_a = supervisor_for(&cfg);
    let mut sup_b = supervisor_for(&cfg);
    sup_a.calibrate(&model_a, &encoded);
    sup_b.calibrate(&model_b, &encoded);

    let mut saw_degraded = false;
    for round in 0..4 {
        if round == 2 {
            for i in (0..dim).step_by(2) {
                model_a.class_mut(1).flip(i);
                model_b.class_mut(1).flip(i);
            }
        }
        let report_a = sup_a.serve_batch(&mut model_a, &encoded);
        let report_b = sup_b.serve_raw_batch(&encoder, &mut model_b, &row_refs);
        saw_degraded |= report_a.verdict == robusthd::diagnostics::HealthVerdict::Degraded;
        assert_eq!(report_a, report_b, "round {round}");
        assert_eq!(
            model_a.to_memory_image().words(),
            model_b.to_memory_image().words(),
            "round {round}: models diverged after serving"
        );
    }
    assert!(
        saw_degraded,
        "corruption never tripped the monitor — the raw path's lazy encode went unexercised"
    );
}
