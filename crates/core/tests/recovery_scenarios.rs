//! Scenario tests of the recovery framework against the threat models it
//! was designed for: one-shot attacks, concentrated row damage, and
//! continuous noise accumulation.

use hypervector::random::HypervectorSampler;
use robusthd::{
    accuracy, Encoder, HdcConfig, RecordEncoder, RecoveryConfig, RecoveryEngine, SubstitutionMode,
    TrainedModel,
};
use synthdata::{DatasetSpec, GeneratorConfig};

struct Deployment {
    queries: Vec<hypervector::BinaryHypervector>,
    labels: Vec<usize>,
    model: TrainedModel,
    config: HdcConfig,
    clean_accuracy: f64,
}

fn deploy(seed: u64) -> Deployment {
    let spec = DatasetSpec::ucihar().with_sizes(1000, 600);
    let data = GeneratorConfig::new(seed).generate(&spec);
    let config = HdcConfig::builder()
        .dimension(4096)
        .seed(seed)
        .build()
        .expect("valid config");
    let encoder = RecordEncoder::new(&config, spec.features);
    let train: Vec<_> = data
        .train
        .iter()
        .map(|s| encoder.encode(&s.features))
        .collect();
    let train_labels: Vec<_> = data.train.iter().map(|s| s.label).collect();
    let queries: Vec<_> = data
        .test
        .iter()
        .map(|s| encoder.encode(&s.features))
        .collect();
    let labels: Vec<_> = data.test.iter().map(|s| s.label).collect();
    let model = TrainedModel::train(&train, &train_labels, spec.classes, &config);
    let clean_accuracy = accuracy(&model, &queries, &labels);
    Deployment {
        queries,
        labels,
        model,
        config,
        clean_accuracy,
    }
}

fn majority_engine(beta: f64, seed: u64) -> RecoveryEngine {
    let config = RecoveryConfig::builder()
        .confidence_threshold(0.45)
        .substitution_rate(0.5)
        .substitution(SubstitutionMode::MajorityCounter { saturation: 3 })
        .seed(seed)
        .build()
        .expect("valid recovery config");
    RecoveryEngine::new(config, beta)
}

#[test]
fn recovery_repairs_wiped_rows() {
    // A Row-Hammer-style wipe of whole 256-bit rows (~5% of the model).
    // The seed is chosen so the wiped rows spread across classes (at most
    // two rows per class vector): the plain engine can only repair classes
    // that still produce *trusted* traffic, and a draw that concentrates
    // several rows on one class needs the supervisor's escalation ladder
    // (tested in tests/soak.rs), not this baseline loop.
    let mut d = deploy(31);
    let model_bits = d.model.num_classes() * d.model.dim();
    let mut image = d.model.to_memory_image();
    faultsim::Attacker::seed_from(9).row_burst(
        image.words_mut(),
        model_bits,
        256,
        model_bits / 256 / 20,
    );
    image.mask_tail();
    d.model.load_memory_image(&image);
    let attacked = accuracy(&d.model, &d.queries, &d.labels);

    let mut engine = majority_engine(d.config.softmax_beta, 1);
    for _ in 0..12 {
        engine.run_stream(&mut d.model, &d.queries);
    }
    let recovered = accuracy(&d.model, &d.queries, &d.labels);
    assert!(
        recovered >= attacked,
        "row-wipe recovery regressed: {attacked} -> {recovered}"
    );
    assert!(
        d.clean_accuracy - recovered < 0.02,
        "residual loss too high: clean {}, recovered {recovered}",
        d.clean_accuracy
    );
}

#[test]
fn recovery_tracks_accumulating_noise() {
    // Noise accumulates 1.5%/interval to 12%; recovery runs in between.
    use faultsim::{AttackCampaign, ErrorRateSchedule};
    let mut d = deploy(32);
    let model_bits = d.model.num_classes() * d.model.dim();
    let schedule = ErrorRateSchedule::linear(0.0, 0.12, 8);
    let mut campaign = AttackCampaign::new(schedule, model_bits, 2);
    let mut engine = majority_engine(d.config.softmax_beta, 3);
    loop {
        let mut image = d.model.to_memory_image();
        if campaign.advance(image.words_mut()).is_none() {
            break;
        }
        image.mask_tail();
        d.model.load_memory_image(&image);
        engine.run_stream(&mut d.model, &d.queries);
        engine.run_stream(&mut d.model, &d.queries);
    }
    let final_accuracy = accuracy(&d.model, &d.queries, &d.labels);
    assert!(
        d.clean_accuracy - final_accuracy < 0.02,
        "accumulation defeated recovery: clean {}, final {final_accuracy}",
        d.clean_accuracy
    );
}

#[test]
fn overwrite_mode_repairs_concentrated_damage() {
    // The paper-literal §4.3 operator on its home turf: one class with
    // whole chunks annihilated, everything else clean.
    let mut d = deploy(33);
    let dim = d.model.dim();
    for chunk in [1usize, 9, 15] {
        for i in (chunk * dim / 20)..((chunk + 1) * dim / 20) {
            d.model.class_mut(2).flip(i);
        }
    }
    let attacked = accuracy(&d.model, &d.queries, &d.labels);
    let config = RecoveryConfig::builder()
        .confidence_threshold(0.6)
        .substitution_rate(0.5)
        .build()
        .expect("valid recovery config");
    let mut engine = RecoveryEngine::new(config, d.config.softmax_beta);
    for _ in 0..8 {
        engine.run_stream(&mut d.model, &d.queries);
    }
    let recovered = accuracy(&d.model, &d.queries, &d.labels);
    assert!(
        recovered + 1e-9 >= attacked,
        "overwrite regressed on burst: {attacked} -> {recovered}"
    );
    assert!(
        engine.stats().chunks_faulty > 0,
        "faulty chunks must be found"
    );
}

#[test]
fn recovery_engine_survives_garbage_traffic() {
    // Pure-noise queries: almost nothing should clear the confidence
    // threshold, and the model must remain essentially untouched.
    let mut d = deploy(34);
    let before = d.model.clone();
    let mut sampler = HypervectorSampler::seed_from(77);
    let garbage: Vec<_> = (0..300).map(|_| sampler.binary(4096)).collect();
    let mut engine = majority_engine(d.config.softmax_beta, 4);
    engine.run_stream(&mut d.model, &garbage);
    let drift: usize = (0..d.model.num_classes())
        .map(|c| d.model.class(c).hamming_distance(before.class(c)))
        .sum();
    let total = d.model.num_classes() * d.model.dim();
    assert!(
        (drift as f64) < total as f64 * 0.02,
        "garbage traffic moved {drift} of {total} bits"
    );
}

#[test]
fn packed_cache_invalidates_after_supervisor_repair_writes() {
    // Regression: the fused scoring path reads `TrainedModel::packed()`, a
    // lazily built `OnceLock` copy of the class vectors. A supervisor
    // quarantine-repair cycle writes repaired bits back into the stored
    // classes; if that write path ever stops dropping the packed copy, the
    // model keeps serving from the pre-repair image and every later fused
    // score silently disagrees with the repaired classes.
    use hypervector::PackedClasses;
    use robusthd::supervisor::ResilienceSupervisor;
    use robusthd::SupervisorConfig;

    let mut d = deploy(35);
    let model_bits = d.model.num_classes() * d.model.dim();
    let half = d.queries.len() / 2;
    let (canaries, served) = d.queries.split_at(half);

    let recovery = RecoveryConfig::builder()
        .confidence_threshold(0.45)
        .substitution_rate(0.5)
        .substitution(SubstitutionMode::MajorityCounter { saturation: 3 })
        .seed(6)
        .build()
        .expect("valid recovery config");
    let policy = SupervisorConfig::builder()
        .window(served.len())
        .checkpoint_interval(1)
        .build()
        .expect("valid policy");
    let mut sup = ResilienceSupervisor::new(&d.config, recovery, policy, 0);
    sup.calibrate(&d.model, canaries);

    // Moderate diffuse damage: degraded enough to trigger repair, mild
    // enough that trusted traffic still exists to repair from.
    let mut image = d.model.to_memory_image();
    faultsim::Attacker::seed_from(11).row_burst(
        image.words_mut(),
        model_bits,
        256,
        model_bits / 256 / 20,
    );
    image.mask_tail();
    d.model.load_memory_image(&image);

    // Prime the cache on the *corrupted* model, as serving traffic would.
    let before: Vec<u64> = d.model.packed().words().to_vec();

    let mut bits_repaired = 0;
    for _ in 0..4 {
        bits_repaired += sup.serve_batch(&mut d.model, served).bits_repaired;
    }
    assert!(
        bits_repaired > 0,
        "scenario must drive actual repair writes for the regression to bite"
    );

    let rebuilt = PackedClasses::from_classes(d.model.classes());
    assert_eq!(
        d.model.packed().words(),
        rebuilt.words(),
        "packed cache is stale after supervisor repair writes"
    );
    assert_ne!(
        d.model.packed().words(),
        before.as_slice(),
        "repairs changed stored bits, so the primed cache cannot still be current"
    );
}
