//! Differential suite for the parallel bit-sliced training engine: the
//! fast path (`TrainConfig::fast`) must equal the sequential scalar
//! reference path (`TrainConfig::reference`) **bit for bit** — not just
//! the thresholded model, but the raw `i64` accumulator counts — across
//! thread counts, shard sizes, retrain epochs, and dimensions straddling
//! word boundaries.
//!
//! This is what lets `ROBUSTHD_TRAIN_FAST` / `ROBUSTHD_THREADS` be pure
//! throughput knobs: the CI matrix runs this whole suite under several
//! `ROBUSTHD_THREADS` values and every assertion must hold unchanged.

use hypervector::random::HypervectorSampler;
use hypervector::{BinaryHypervector, Precision};
use robusthd::train::train_accumulators;
use robusthd::{
    BatchConfig, BatchEngine, HdcClassifier, HdcConfig, IntModel, TrainConfig, TrainedModel,
};

/// Dimensions deliberately straddling 64-bit word boundaries.
const DIMS: &[usize] = &[127, 192, 193, 1000];

/// Builds a noisy clustered task; `noise` controls how separable it is.
fn toy_task(
    k: usize,
    n: usize,
    dim: usize,
    noise: f64,
    seed: u64,
) -> (Vec<BinaryHypervector>, Vec<usize>) {
    let mut sampler = HypervectorSampler::seed_from(seed);
    let protos: Vec<_> = (0..k).map(|_| sampler.binary(dim)).collect();
    let mut encoded = Vec::new();
    let mut labels = Vec::new();
    for i in 0..n {
        let class = i % k;
        encoded.push(sampler.flip_noise(&protos[class], noise));
        labels.push(class);
    }
    (encoded, labels)
}

fn config(dim: usize, epochs: usize, seed: u64) -> HdcConfig {
    HdcConfig::builder()
        .dimension(dim)
        .retrain_epochs(epochs)
        .seed(seed)
        .build()
        .expect("valid")
}

fn engine(threads: usize, shard_size: usize) -> BatchEngine {
    BatchEngine::new(
        BatchConfig::builder()
            .threads(threads)
            .shard_size(shard_size)
            .build()
            .expect("valid"),
    )
}

#[test]
fn accumulators_match_across_threads_epochs_and_dims() {
    for &dim in DIMS {
        // Hard task (high noise) so retraining epochs keep making mistakes
        // and the add/subtract path stays exercised.
        let (encoded, labels) = toy_task(4, 60, dim, 0.42, dim as u64);
        for epochs in [0usize, 1, 5] {
            let cfg = config(dim, epochs, 7);
            let reference = train_accumulators(
                &encoded,
                &labels,
                4,
                &cfg,
                &TrainConfig::reference(),
                &engine(1, 32),
            );
            for threads in [1usize, 2, 4, 8] {
                let fast = train_accumulators(
                    &encoded,
                    &labels,
                    4,
                    &cfg,
                    &TrainConfig::fast(),
                    &engine(threads, 7),
                );
                assert_eq!(
                    fast.len(),
                    reference.len(),
                    "dim={dim} epochs={epochs} threads={threads}"
                );
                for (c, (f, r)) in fast.iter().zip(&reference).enumerate() {
                    // Explicit raw-counter equality, then full equality
                    // (counts + added) through PartialEq.
                    assert_eq!(
                        f.counts(),
                        r.counts(),
                        "class {c} counts diverged: dim={dim} epochs={epochs} threads={threads}"
                    );
                    assert_eq!(
                        f, r,
                        "class {c} diverged: dim={dim} epochs={epochs} threads={threads}"
                    );
                }
            }
        }
    }
}

#[test]
fn trained_models_are_bit_identical() {
    for &dim in &[193usize, 1000] {
        let (encoded, labels) = toy_task(3, 45, dim, 0.4, 100 + dim as u64);
        for epochs in [0usize, 1, 5] {
            let cfg = config(dim, epochs, 3);
            let reference = TrainedModel::train_with(
                &encoded,
                &labels,
                3,
                &cfg,
                &TrainConfig::reference(),
                &engine(1, 32),
            );
            for threads in [1usize, 4] {
                let fast = TrainedModel::train_with(
                    &encoded,
                    &labels,
                    3,
                    &cfg,
                    &TrainConfig::fast(),
                    &engine(threads, 8),
                );
                assert_eq!(
                    fast, reference,
                    "dim={dim} epochs={epochs} threads={threads}"
                );
                for c in 0..3 {
                    assert_eq!(
                        fast.class(c).hamming_distance(reference.class(c)),
                        0,
                        "class {c} bits diverged"
                    );
                }
            }
        }
    }
}

#[test]
fn int_models_are_bit_identical() {
    let (encoded, labels) = toy_task(3, 36, 193, 0.4, 55);
    for &bits in &[1u8, 2, 4] {
        let p = Precision::new(bits).expect("valid");
        let cfg = config(193, 3, 9);
        let reference = IntModel::train_with(
            &encoded,
            &labels,
            3,
            &cfg,
            p,
            &TrainConfig::reference(),
            &engine(1, 32),
        );
        for threads in [1usize, 4] {
            let fast = IntModel::train_with(
                &encoded,
                &labels,
                3,
                &cfg,
                p,
                &TrainConfig::fast(),
                &engine(threads, 5),
            );
            assert_eq!(fast, reference, "bits={bits} threads={threads}");
        }
    }
}

#[test]
fn epoch_early_exit_fires_identically_on_both_paths() {
    // A separable task converges: once an epoch has zero mistakes both
    // paths must stop updating, so any epoch budget at or past convergence
    // yields the same accumulators — on each path and across paths. If the
    // fast path's early-exit fired on a different epoch, the extra (or
    // missing) shuffles and updates would show up as diverging counts.
    let (encoded, labels) = toy_task(3, 30, 192, 0.08, 77);
    let budgets = [1usize, 5, 50];
    let mut per_budget = Vec::new();
    for &epochs in &budgets {
        let cfg = config(192, epochs, 13);
        let reference = train_accumulators(
            &encoded,
            &labels,
            3,
            &cfg,
            &TrainConfig::reference(),
            &engine(1, 32),
        );
        for threads in [1usize, 4] {
            let fast = train_accumulators(
                &encoded,
                &labels,
                3,
                &cfg,
                &TrainConfig::fast(),
                &engine(threads, 4),
            );
            assert_eq!(fast, reference, "epochs={epochs} threads={threads}");
        }
        per_budget.push(reference);
    }
    // Convergence before 5 epochs means budgets 5 and 50 are identical
    // (the early exit, not the budget, terminated training).
    assert_eq!(
        per_budget[1], per_budget[2],
        "early exit did not pin the result"
    );
}

#[test]
fn training_is_deterministic_across_engine_tunings() {
    // Thread count and shard size are pure throughput knobs for the fast
    // path: every tuning must produce the same accumulators.
    let (encoded, labels) = toy_task(5, 70, 257, 0.35, 31);
    let cfg = config(257, 2, 17);
    let baseline = train_accumulators(
        &encoded,
        &labels,
        5,
        &cfg,
        &TrainConfig::fast(),
        &engine(1, 32),
    );
    for threads in [2usize, 3, 8] {
        for shard in [1usize, 13, 64, 500] {
            let other = train_accumulators(
                &encoded,
                &labels,
                5,
                &cfg,
                &TrainConfig::fast(),
                &engine(threads, shard),
            );
            assert_eq!(other, baseline, "threads={threads} shard={shard}");
        }
    }
}

#[test]
fn pipeline_fit_matches_explicit_reference_train() {
    // End to end: HdcClassifier::fit (which routes through the engine
    // configured from the environment — the CI matrix varies
    // ROBUSTHD_THREADS / ROBUSTHD_TRAIN_FAST over this very test) must
    // equal an explicit reference-path retrain of the same encodings.
    let train: Vec<(Vec<f64>, usize)> = (0..48)
        .map(|i| {
            let label = i % 3;
            let base = 0.15 + 0.3 * label as f64;
            let features = (0..6).map(|j| base + 0.01 * ((i + j) % 7) as f64).collect();
            (features, label)
        })
        .collect();
    let cfg = HdcConfig::builder()
        .dimension(1000)
        .retrain_epochs(2)
        .seed(5)
        .build()
        .expect("valid");
    let clf = HdcClassifier::fit(&cfg, &train);
    let rows: Vec<&[f64]> = train.iter().map(|(f, _)| f.as_slice()).collect();
    let encoded = engine(1, 32).encode_batch(clf.encoder(), &rows);
    let labels: Vec<usize> = train.iter().map(|(_, l)| *l).collect();
    let reference = TrainedModel::train_with(
        &encoded,
        &labels,
        3,
        &cfg,
        &TrainConfig::reference(),
        &engine(1, 32),
    );
    assert_eq!(clf.model(), &reference);
}
