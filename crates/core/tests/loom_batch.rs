//! Exhaustive concurrency model of `BatchEngine`'s shard-claiming loop
//! (`crates/core/src/batch.rs`, `map_shards`/`fold_shards`): scoped
//! workers draw shard indices from a shared `AtomicUsize` with
//! `fetch_add(1, Ordering::Relaxed)`, process their shard, and the
//! spawning thread assembles results by shard index after joining.
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p robusthd --test
//! loom_batch --release`. Every interleaving at the modeled sizes is
//! explored; the properties proved:
//!
//! 1. **No shard is double-claimed or skipped** — the multiset of claims
//!    across workers is exactly `{0, …, num_shards-1}`, in every
//!    interleaving, even though the claims use `Relaxed` (RMW atomicity
//!    alone is sufficient; no ordering is needed for uniqueness).
//! 2. **By-index placement is race-free** — each claimed shard's result
//!    slot is written by exactly one worker, and the post-join read on
//!    the spawning thread is ordered by the join happens-before edge
//!    (the vendored loom's `UnsafeCell` checker would panic otherwise).
//!
//! Worker/shard sizes are kept small (≤ 3 workers, ≤ 4 shards) so the
//! exhaustive enumeration stays in the thousands of executions; the
//! claim protocol is size-generic, so these sizes cover its decision
//! structure (contended claim, exhausted counter, overshooting workers).

#![cfg(loom)]

use loom::cell::UnsafeCell;
use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::Arc;
use loom::thread;

/// The claim loop of `BatchEngine::map_shards`, verbatim in miniature:
/// draw until the counter runs past `num_shards`.
fn claim_shards(next: &AtomicUsize, num_shards: usize, mut on_shard: impl FnMut(usize)) {
    loop {
        let shard = next.fetch_add(1, Ordering::Relaxed);
        if shard >= num_shards {
            break;
        }
        on_shard(shard);
    }
}

/// Property 1: every shard claimed exactly once, no interleaving excepted.
fn check_unique_claims(workers: usize, num_shards: usize) {
    loom::model(move || {
        let next = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = Arc::clone(&next);
                thread::spawn(move || {
                    let mut claimed = Vec::new();
                    claim_shards(&next, num_shards, |shard| claimed.push(shard));
                    claimed
                })
            })
            .collect();
        let mut all_claims = Vec::new();
        for handle in handles {
            all_claims.extend(handle.join().expect("worker result"));
        }
        all_claims.sort_unstable();
        let expected: Vec<usize> = (0..num_shards).collect();
        assert_eq!(
            all_claims, expected,
            "a shard was double-claimed or skipped"
        );
    });
}

/// Property 2: by-index result placement — one writer per slot, and the
/// spawning thread's post-join reads are ordered by the join edge.
fn check_placement(workers: usize, num_shards: usize) {
    loom::model(move || {
        let next = Arc::new(AtomicUsize::new(0));
        let slots: Arc<Vec<UnsafeCell<Option<usize>>>> =
            Arc::new((0..num_shards).map(|_| UnsafeCell::new(None)).collect());
        let handles: Vec<_> = (0..workers)
            .map(|worker| {
                let next = Arc::clone(&next);
                let slots = Arc::clone(&slots);
                thread::spawn(move || {
                    claim_shards(&next, num_shards, |shard| {
                        slots[shard].with_mut(|slot| {
                            assert!(slot.is_none(), "slot {shard} written twice");
                            // Tag the result with worker and shard so the
                            // readback can verify by-index placement.
                            *slot = Some(worker * 100 + shard);
                        });
                    });
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("worker result");
        }
        for (shard, slot) in slots.iter().enumerate() {
            slot.with(|value| {
                let tagged = value.unwrap_or_else(|| panic!("shard {shard} never placed"));
                assert_eq!(tagged % 100, shard, "result landed in the wrong slot");
            });
        }
    });
}

#[test]
fn claims_unique_one_worker() {
    check_unique_claims(1, 4);
}

#[test]
fn claims_unique_two_workers() {
    check_unique_claims(2, 3);
}

#[test]
fn claims_unique_three_workers() {
    check_unique_claims(3, 2);
}

#[test]
fn placement_race_free_one_worker() {
    check_placement(1, 4);
}

#[test]
fn placement_race_free_two_workers() {
    check_placement(2, 3);
}

#[test]
fn placement_race_free_three_workers() {
    // Cell accesses add schedule points on top of the claim loop, so the
    // 3-worker placement model uses a single shard to keep the exhaustive
    // enumeration within budget; 3-worker × 2-shard claim contention is
    // already fully covered by `claims_unique_three_workers`, and the
    // placement protocol itself is shard-count-independent.
    check_placement(3, 1);
}

/// Sanity check that the model is not vacuous: breaking the protocol
/// (non-atomic load-then-store claiming) must be caught as a duplicate
/// claim in some interleaving.
#[test]
#[should_panic(expected = "loom model failed")]
fn broken_claim_protocol_is_rejected() {
    loom::model(|| {
        let next = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let next = Arc::clone(&next);
                thread::spawn(move || {
                    let mut claimed = Vec::new();
                    loop {
                        // The bug: a torn read-modify-write.
                        let shard = next.load(Ordering::Relaxed);
                        next.store(shard + 1, Ordering::Relaxed);
                        if shard >= 2 {
                            break;
                        }
                        claimed.push(shard);
                    }
                    claimed
                })
            })
            .collect();
        let mut all_claims = Vec::new();
        for handle in handles {
            all_claims.extend(handle.join().expect("worker result"));
        }
        all_claims.sort_unstable();
        assert_eq!(all_claims, vec![0, 1], "duplicate or skipped claim");
    });
}
