//! Chaos soak of the closed-loop resilience supervisor: a deterministic
//! attack campaign accumulates corruption (with a catastrophic concentrated
//! burst in the middle) while the supervisor monitors, repairs, escalates,
//! checkpoints, and rolls back. The run must hold serving accuracy within
//! five points of the clean baseline even though the cumulative injected
//! corruption exceeds 10% of the model image.

use faultsim::{AttackCampaign, ErrorRateSchedule};
use hypervector::BinaryHypervector;
use robusthd::diagnostics::{HealthMonitor, HealthVerdict};
use robusthd::supervisor::{run_soak, ResilienceSupervisor};
use robusthd::{
    Encoder, HdcConfig, RecordEncoder, RecoveryConfig, SubstitutionMode, SupervisorConfig,
    TrainedModel,
};
use synthdata::{DatasetSpec, GeneratorConfig};

struct Deployment {
    queries: Vec<BinaryHypervector>,
    labels: Vec<usize>,
    model: TrainedModel,
    config: HdcConfig,
    features: usize,
}

fn deploy(seed: u64) -> Deployment {
    let spec = DatasetSpec::ucihar().with_sizes(600, 300);
    let data = GeneratorConfig::new(seed).generate(&spec);
    let config = HdcConfig::builder()
        .dimension(4096)
        .seed(seed)
        .build()
        .expect("valid config");
    let encoder = RecordEncoder::new(&config, spec.features);
    let train: Vec<_> = data
        .train
        .iter()
        .map(|s| encoder.encode(&s.features))
        .collect();
    let train_labels: Vec<_> = data.train.iter().map(|s| s.label).collect();
    let queries: Vec<_> = data
        .test
        .iter()
        .map(|s| encoder.encode(&s.features))
        .collect();
    let labels: Vec<_> = data.test.iter().map(|s| s.label).collect();
    let model = TrainedModel::train(&train, &train_labels, spec.classes, &config);
    Deployment {
        queries,
        labels,
        model,
        config,
        features: spec.features,
    }
}

fn soak_recovery(seed: u64) -> RecoveryConfig {
    RecoveryConfig::builder()
        .confidence_threshold(0.45)
        .substitution_rate(0.5)
        .substitution(SubstitutionMode::MajorityCounter { saturation: 3 })
        .seed(seed)
        .build()
        .expect("valid recovery config")
}

#[test]
fn chaos_soak_survives_accumulation_and_a_catastrophic_burst() {
    let mut d = deploy(41);
    let model_bits = d.model.num_classes() * d.model.dim();

    // Calibrate (and keep as canaries) one half of the traffic, serve the
    // other half — disjoint, as in a real deployment, so a repair that
    // merely overfits the served batch cannot fool the canary probe.
    let half = d.queries.len() / 2;
    let (canaries, served) = d.queries.split_at(half);
    let served_labels = &d.labels[half..];

    // Window = batch size so every verdict judges exactly the served batch
    // against the calibration mean — deterministic, no sampling skew.
    let policy = SupervisorConfig::builder()
        .window(served.len())
        .sensitivity(0.9)
        .rollback_after(3)
        .checkpoint_interval(1)
        .build()
        .expect("valid policy");
    let mut sup = ResilienceSupervisor::new(&d.config, soak_recovery(1), policy, d.features);
    sup.calibrate(&d.model, canaries);

    // Diffuse accumulation to 9% before the burst, 12% total after it.
    let schedule = ErrorRateSchedule::from_cumulative(vec![
        0.015, 0.03, 0.045, 0.06, 0.075, 0.09, 0.10, 0.11, 0.12,
    ]);
    let mut campaign = AttackCampaign::new(schedule, model_bits, 5);
    let report = run_soak(
        &mut sup,
        &mut d.model,
        served,
        served_labels,
        |model, step| {
            if step == 6 {
                // Catastrophic burst: half of every stored word flipped.
                // All similarities collapse toward 0.5, so margins crater
                // (detectable) and no query clears any rung's confidence
                // threshold (unrecoverable) — the loop must escalate and
                // ultimately roll back to the last healthy checkpoint.
                let mut image = model.to_memory_image();
                for word in image.words_mut() {
                    *word ^= 0xAAAA_AAAA_AAAA_AAAA;
                }
                image.mask_tail();
                model.load_memory_image(&image);
                return Some(model_bits / 2);
            }
            let mut image = model.to_memory_image();
            let flipped = campaign.advance(image.words_mut())?;
            image.mask_tail();
            model.load_memory_image(&image);
            Some(flipped)
        },
    );
    let json = report.to_json();

    // ≥ 10% of the model image corrupted over the run.
    assert!(
        report.peak_error_rate() >= 0.10,
        "cumulative corruption too low: {} \ntrace: {json}",
        report.peak_error_rate()
    );
    // The ladder climbed and the loop rolled back at least once.
    assert!(
        report.escalations() >= 1,
        "no escalation exercised\ntrace: {json}"
    );
    assert!(
        report.rollbacks() >= 1,
        "no rollback exercised\ntrace: {json}"
    );
    // A healthy-batch checkpoint was written at some point.
    assert!(
        report.steps.iter().any(|s| s.report.checkpointed),
        "no checkpoint written\ntrace: {json}"
    );
    // Accuracy at the end of the soak stays within 5 points of clean.
    assert!(
        report.clean_accuracy - report.final_accuracy() < 0.05,
        "soak lost too much accuracy: clean {}, final {}\ntrace: {json}",
        report.clean_accuracy,
        report.final_accuracy()
    );
    // The JSON trace records every verdict/escalation/rollback transition.
    // 9 campaign steps plus the injected burst step.
    assert_eq!(report.steps.len(), 10);
    for marker in [
        "\"verdict\":\"healthy\"",
        "\"verdict\":\"degraded\"",
        "\"escalated\":true",
        "\"rolled_back\":true",
        "\"checkpointed\":true",
    ] {
        assert!(json.contains(marker), "trace missing {marker}: {json}");
    }
    // Determinism spot check: the trace length and transition counts are a
    // pure function of the seeds above, so rollback/escalation totals in
    // the JSON header must match the per-step records.
    assert!(json.contains(&format!("\"rollbacks\":{}", report.rollbacks())));
    assert!(json.contains(&format!("\"escalations\":{}", report.escalations())));

    // Visible under --nocapture: the headline soak numbers.
    eprintln!(
        "soak summary: clean {:.4}, final {:.4} at peak error rate {:.4}, \
         {} escalations, {} rollbacks",
        report.clean_accuracy,
        report.final_accuracy(),
        report.peak_error_rate(),
        report.escalations(),
        report.rollbacks()
    );
}

#[test]
fn monitor_degrades_under_msb_targeted_campaign_at_paper_rates() {
    // The paper's Table 4 error rates (2%, 6%, 10%) driven as an
    // MSB-targeted campaign over the stored words: the health monitor must
    // hold Healthy at 2% and flag Degraded by 10%.
    let mut d = deploy(42);
    let model_bits = d.model.num_classes() * d.model.dim();
    let schedule = ErrorRateSchedule::from_cumulative(vec![0.02, 0.06, 0.10]);
    let mut campaign = AttackCampaign::new(schedule, model_bits, 9);

    let mut monitor = HealthMonitor::new(d.queries.len(), 0.9);
    monitor.calibrate(&d.model, &d.queries, d.config.softmax_beta);

    let mut verdicts = Vec::new();
    loop {
        let mut image = d.model.to_memory_image();
        if campaign.advance_targeted(image.words_mut(), 64).is_none() {
            break;
        }
        image.mask_tail();
        d.model.load_memory_image(&image);
        for q in &d.queries {
            monitor.observe(&d.model, q, d.config.softmax_beta);
        }
        verdicts.push(monitor.verdict());
    }
    assert_eq!(verdicts.len(), 3);
    assert_eq!(
        verdicts[0],
        HealthVerdict::Healthy,
        "2% must stay healthy: {verdicts:?}"
    );
    assert_eq!(
        verdicts[2],
        HealthVerdict::Degraded,
        "10% must degrade: {verdicts:?}"
    );
}
