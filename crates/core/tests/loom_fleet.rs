//! Exhaustive interleaving exploration of the fleet registry's
//! copy-on-write image lineage under route/repair/evict churn.
//!
//! Compile with `RUSTFLAGS="--cfg loom"`; under a normal build this file
//! is empty. The model re-implements `robusthd::fleet`'s registry
//! protocol in miniature: per-tenant always-resident images (immutable
//! `Arc`s, shared between cohort siblings like the real interned RHD2
//! bytes), a hot arena rebuilt on rehydration, supervisor repairs that
//! dirty the hot state, and eviction that serializes dirty state into a
//! *fresh* image before dropping the hot entry — never mutating the
//! shared parent in place. All registry access goes through one Mutex,
//! mirroring the daemon where the drain thread owns the registry and
//! every other actor reaches it through that serialization point.
//!
//! Proved over every schedule:
//!
//! * **never stale**: a served answer always reflects every committed
//!   repair (the hot version equals the tenant's repair count, and a
//!   rehydration finds an image carrying all serialized repairs);
//! * **never torn**: an image observed at rehydration is internally
//!   consistent (its checksum word matches), because eviction publishes
//!   a fully-built image by pointer swap, not a field-by-field rewrite;
//! * **sibling isolation**: copy-on-write on one tenant leaves the
//!   cohort sibling's shared parent image untouched;
//! * **race freedom**: the hot arena is a race-checked
//!   [`loom::cell::UnsafeCell`], so any access not ordered by the
//!   registry lock fails the model (the negative test proves the
//!   detector is live).

#![cfg(loom)]

use loom::cell::UnsafeCell;
use loom::sync::{Arc, Mutex, PoisonError};
use loom::thread;

const TENANTS: usize = 2;

/// An immutable serialized model image. `words[0]` carries the version,
/// `words[1]` is a checksum over it — a torn (partially written) image
/// breaks the invariant checked at every rehydration.
#[derive(Debug)]
struct Image {
    version: usize,
    words: [usize; 2],
}

impl Image {
    fn new(version: usize) -> Self {
        Self {
            version,
            words: [version, version.wrapping_mul(31) + 7],
        }
    }

    fn assert_intact(&self) {
        assert_eq!(self.words[0], self.version, "torn image: version word");
        assert_eq!(
            self.words[1],
            self.version.wrapping_mul(31) + 7,
            "torn image: checksum word"
        );
    }
}

#[derive(Debug)]
struct Tenant {
    /// Always-resident serialized lineage (shared with cohort siblings
    /// until copy-on-write diverges it).
    image: Arc<Image>,
    /// Version of the hot arena entry, `None` when evicted.
    hot: Option<usize>,
    /// Hot state has repairs the image lacks.
    dirty: bool,
    /// Committed repairs — the version a serve must reflect.
    repairs: usize,
}

#[derive(Debug)]
struct Registry {
    tenants: Vec<Tenant>,
}

/// `ModelRegistry` in miniature: the lock serializes every route,
/// repair, and eviction; the arena cell is only touched under it.
#[derive(Debug)]
struct Fleet {
    registry: Mutex<Registry>,
    arena: UnsafeCell<[Option<usize>; TENANTS]>,
}

impl Fleet {
    /// Both tenants start from one shared parent image (a cohort).
    fn new() -> Self {
        let parent = Arc::new(Image::new(0));
        let tenants = (0..TENANTS)
            .map(|_| Tenant {
                image: Arc::clone(&parent),
                hot: None,
                dirty: false,
                repairs: 0,
            })
            .collect();
        Self {
            registry: Mutex::new(Registry { tenants }),
            arena: UnsafeCell::new([None; TENANTS]),
        }
    }

    /// Mirror of `ModelRegistry::ensure_hot`: rehydrate from the image
    /// if evicted, verifying the image is intact and carries every
    /// committed repair.
    fn ensure_hot(&self, reg: &mut Registry, tenant: usize) {
        if reg.tenants[tenant].hot.is_none() {
            let image = Arc::clone(&reg.tenants[tenant].image);
            image.assert_intact();
            assert_eq!(
                image.version, reg.tenants[tenant].repairs,
                "stale image: rehydration lost a committed repair"
            );
            reg.tenants[tenant].hot = Some(image.version);
            self.arena.with_mut(|a| a[tenant] = Some(image.version));
        }
    }

    /// Mirror of `route_batch` for one query: serve from hot state,
    /// rehydrating first if needed. Returns the served version.
    fn route(&self, tenant: usize) -> usize {
        let mut reg = self.registry.lock().unwrap_or_else(PoisonError::into_inner);
        self.ensure_hot(&mut reg, tenant);
        let served = self.arena.with(|a| a[tenant]).expect("hydrated above");
        assert_eq!(
            served, reg.tenants[tenant].repairs,
            "stale serve: answer predates a committed repair"
        );
        served
    }

    /// Mirror of a supervisor repair: bump the hot state and mark it
    /// dirty so eviction must serialize before dropping it.
    fn repair(&self, tenant: usize) {
        let mut reg = self.registry.lock().unwrap_or_else(PoisonError::into_inner);
        self.ensure_hot(&mut reg, tenant);
        let next = reg.tenants[tenant].repairs + 1;
        reg.tenants[tenant].hot = Some(next);
        reg.tenants[tenant].dirty = true;
        reg.tenants[tenant].repairs = next;
        self.arena.with_mut(|a| a[tenant] = Some(next));
    }

    /// Mirror of LRU eviction with copy-on-write: dirty hot state is
    /// serialized into a *fresh* image published by pointer swap — the
    /// shared parent is never written in place.
    fn evict(&self, tenant: usize) {
        let mut reg = self.registry.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(version) = reg.tenants[tenant].hot {
            if reg.tenants[tenant].dirty {
                reg.tenants[tenant].image = Arc::new(Image::new(version));
                reg.tenants[tenant].dirty = false;
            }
            reg.tenants[tenant].hot = None;
            self.arena.with_mut(|a| a[tenant] = None);
        }
    }
}

/// A repair→evict thread churns tenant 0 while a router serves both
/// tenants: every interleaving serves intact, repair-current images, and
/// the copy-on-write divergence leaves the sibling's parent untouched.
#[test]
fn churn_never_serves_a_stale_or_torn_image() {
    loom::model(|| {
        let fleet = Arc::new(Fleet::new());
        let churn = {
            let fleet = Arc::clone(&fleet);
            thread::spawn(move || {
                fleet.repair(0);
                fleet.evict(0);
            })
        };
        let router = {
            let fleet = Arc::clone(&fleet);
            thread::spawn(move || {
                fleet.route(0);
                fleet.route(1);
            })
        };
        churn.join().unwrap();
        router.join().unwrap();
        // The repair committed and survived the eviction round-trip...
        assert_eq!(fleet.route(0), 1, "repair lost across eviction");
        // ...and copy-on-write left the sibling's shared parent alone.
        assert_eq!(fleet.route(1), 0, "sibling image mutated");
        let reg = fleet
            .registry
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        assert_eq!(reg.tenants[0].image.version, 1, "CoW image not serialized");
        assert_eq!(reg.tenants[1].image.version, 0, "sibling lineage diverged");
    });
}

/// Two racing repair threads on one tenant: the registry lock makes the
/// repairs serialize (none lost), and an eviction afterwards serializes
/// both into the lineage — rehydration serves version 2 in every
/// interleaving.
#[test]
fn concurrent_repairs_all_commit_through_eviction() {
    loom::model(|| {
        let fleet = Arc::new(Fleet::new());
        let repairers: Vec<_> = (0..2)
            .map(|_| {
                let fleet = Arc::clone(&fleet);
                thread::spawn(move || fleet.repair(0))
            })
            .collect();
        for handle in repairers {
            handle.join().unwrap();
        }
        fleet.evict(0);
        assert_eq!(fleet.route(0), 2, "a racing repair was lost");
        let reg = fleet
            .registry
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        assert_eq!(reg.tenants[0].image.version, 2);
    });
}

/// Non-vacuity: touching the hot arena without holding the registry
/// lock is a data race with a concurrent route, and the race detector
/// must refuse it even when the interleaved values look plausible.
#[test]
#[should_panic(expected = "loom model failed")]
fn arena_access_outside_the_lock_is_caught_as_a_race() {
    loom::model(|| {
        let fleet = Arc::new(Fleet::new());
        let router = {
            let fleet = Arc::clone(&fleet);
            thread::spawn(move || fleet.route(0))
        };
        // Broken discipline: a "fast path" peeking at the arena with no
        // lock — unordered against the router's hydration write.
        fleet.arena.with_mut(|a| a[0] = Some(9));
        router.join().unwrap();
    });
}
