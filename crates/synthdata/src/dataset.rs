use crate::spec::DatasetSpec;
use serde::{Deserialize, Serialize};

/// One labelled data point: features normalized to `[0, 1]` plus a class
/// label in `0..classes`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Feature vector, each component in `[0, 1]`.
    pub features: Vec<f64>,
    /// Class label.
    pub label: usize,
}

/// A generated train/test corpus together with the spec that produced it.
///
/// Features are min-max normalized to `[0, 1]` using statistics of the
/// training split (the test split reuses the training normalization, as a
/// deployed pipeline would).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// The shape and difficulty parameters this corpus was generated from.
    pub spec: DatasetSpec,
    /// Training samples.
    pub train: Vec<Sample>,
    /// Held-out test samples.
    pub test: Vec<Sample>,
}

impl Dataset {
    /// Number of features per sample.
    pub fn features(&self) -> usize {
        self.spec.features
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.spec.classes
    }

    /// Per-class sample counts over the training split.
    pub fn train_class_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.spec.classes];
        for s in &self.train {
            hist[s.label] += 1;
        }
        hist
    }

    /// Checks the structural invariants of the corpus; used by tests and by
    /// callers loading untrusted serialized datasets.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant: wrong feature
    /// count, label out of range, or feature outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), String> {
        for (split, samples) in [("train", &self.train), ("test", &self.test)] {
            for (i, s) in samples.iter().enumerate() {
                if s.features.len() != self.spec.features {
                    return Err(format!(
                        "{split}[{i}] has {} features, expected {}",
                        s.features.len(),
                        self.spec.features
                    ));
                }
                if s.label >= self.spec.classes {
                    return Err(format!(
                        "{split}[{i}] label {} out of range {}",
                        s.label, self.spec.classes
                    ));
                }
                if let Some(f) = s.features.iter().find(|f| !(0.0..=1.0).contains(*f)) {
                    return Err(format!("{split}[{i}] feature {f} outside [0,1]"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::GeneratorConfig;

    fn tiny() -> Dataset {
        GeneratorConfig::new(1).generate(&DatasetSpec::pecan().with_sizes(90, 30))
    }

    #[test]
    fn validate_accepts_generated_data() {
        tiny().validate().expect("generated data must be valid");
    }

    #[test]
    fn histogram_is_roughly_balanced() {
        let data = tiny();
        let hist = data.train_class_histogram();
        assert_eq!(hist.iter().sum::<usize>(), 90);
        for (c, &count) in hist.iter().enumerate() {
            assert!(count >= 20, "class {c} underrepresented: {count}");
        }
    }

    #[test]
    fn validate_rejects_bad_label() {
        let mut data = tiny();
        data.train[0].label = 99;
        assert!(data.validate().is_err());
    }

    #[test]
    fn validate_rejects_out_of_range_feature() {
        let mut data = tiny();
        data.test[0].features[0] = 1.5;
        assert!(data.validate().unwrap_err().contains("outside"));
    }

    #[test]
    fn validate_rejects_wrong_feature_count() {
        let mut data = tiny();
        data.train[0].features.pop();
        assert!(data.validate().is_err());
    }
}
