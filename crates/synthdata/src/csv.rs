//! Dependency-free CSV import/export of labelled datasets.
//!
//! The format is the plain numeric layout ML tools exchange: one sample per
//! line, features first, the integer class label in the last column. An
//! optional header line is tolerated on read. This is how a downstream user
//! feeds *real* data (the paper's actual MNIST/ISOLET/… exports) into the
//! RobustHD pipeline in place of the synthetic stand-ins.

use crate::dataset::Sample;
use std::error::Error;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

/// Error parsing a CSV dataset.
#[derive(Debug)]
pub struct ParseCsvError {
    line: usize,
    message: String,
}

impl ParseCsvError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }

    /// 1-indexed line the error occurred on.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseCsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseCsvError {}

/// Writes samples as CSV: features then label, one sample per line.
///
/// A reference to a writer can be passed (`&mut file`) since `Write` is
/// implemented for mutable references.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Example
///
/// ```
/// use synthdata::{csv, Sample};
///
/// let samples = vec![Sample { features: vec![0.25, 0.5], label: 1 }];
/// let mut out = Vec::new();
/// csv::write_samples(&mut out, &samples)?;
/// assert_eq!(String::from_utf8(out).unwrap(), "0.25,0.5,1\n");
/// # Ok::<(), std::io::Error>(())
/// ```
pub fn write_samples<W: Write>(mut writer: W, samples: &[Sample]) -> std::io::Result<()> {
    for sample in samples {
        let mut first = true;
        for f in &sample.features {
            if !first {
                write!(writer, ",")?;
            }
            write!(writer, "{f}")?;
            first = false;
        }
        if !first {
            write!(writer, ",")?;
        }
        writeln!(writer, "{}", sample.label)?;
    }
    Ok(())
}

/// Reads samples from CSV: features then an integer label per line.
///
/// Blank lines are skipped; a first line containing any non-numeric field
/// is treated as a header and skipped. All samples must agree on the
/// feature count.
///
/// # Errors
///
/// Returns [`ParseCsvError`] on malformed numbers, inconsistent feature
/// counts, lines without a label column, or I/O failure.
///
/// # Example
///
/// ```
/// use synthdata::csv;
///
/// let text = "f0,f1,label\n0.1,0.9,0\n0.8,0.2,1\n";
/// let samples = csv::read_samples(text.as_bytes())?;
/// assert_eq!(samples.len(), 2);
/// assert_eq!(samples[1].label, 1);
/// # Ok::<(), synthdata::csv::ParseCsvError>(())
/// ```
pub fn read_samples<R: Read>(reader: R) -> Result<Vec<Sample>, ParseCsvError> {
    let mut samples: Vec<Sample> = Vec::new();
    let mut expected_features: Option<usize> = None;
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line_no = idx + 1;
        let line = line.map_err(|e| ParseCsvError::new(line_no, format!("i/o error: {e}")))?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        if fields.len() < 2 {
            return Err(ParseCsvError::new(
                line_no,
                "need at least one feature and a label",
            ));
        }
        let parsed: Result<Vec<f64>, _> = fields.iter().map(|f| f.parse::<f64>()).collect();
        let values = match parsed {
            Ok(values) => values,
            Err(_) if samples.is_empty() && expected_features.is_none() => {
                // Tolerate one header line before any data.
                continue;
            }
            Err(_) => {
                return Err(ParseCsvError::new(line_no, "non-numeric field"));
            }
        };
        let (label_field, feature_fields) = values.split_last().expect("len >= 2");
        if label_field.fract() != 0.0 || *label_field < 0.0 {
            return Err(ParseCsvError::new(
                line_no,
                format!("label column must be a non-negative integer, got {label_field}"),
            ));
        }
        match expected_features {
            None => expected_features = Some(feature_fields.len()),
            Some(n) if n != feature_fields.len() => {
                return Err(ParseCsvError::new(
                    line_no,
                    format!("expected {n} features, found {}", feature_fields.len()),
                ));
            }
            Some(_) => {}
        }
        samples.push(Sample {
            features: feature_fields.to_vec(),
            label: *label_field as usize,
        });
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_samples() {
        let samples = vec![
            Sample {
                features: vec![0.5, 0.25, 1.0],
                label: 2,
            },
            Sample {
                features: vec![0.0, 0.125, 0.75],
                label: 0,
            },
        ];
        let mut buffer = Vec::new();
        write_samples(&mut buffer, &samples).expect("write");
        let decoded = read_samples(buffer.as_slice()).expect("read");
        assert_eq!(decoded, samples);
    }

    #[test]
    fn header_line_is_skipped() {
        let text = "a,b,label\n0.1,0.2,1\n";
        let samples = read_samples(text.as_bytes()).expect("read");
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].label, 1);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = "\n0.1,0.2,1\n\n0.3,0.4,0\n";
        let samples = read_samples(text.as_bytes()).expect("read");
        assert_eq!(samples.len(), 2);
    }

    #[test]
    fn non_numeric_mid_file_is_an_error() {
        let text = "0.1,0.2,1\nxyz,0.4,0\n";
        let err = read_samples(text.as_bytes()).unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("non-numeric"));
    }

    #[test]
    fn inconsistent_width_is_an_error() {
        let text = "0.1,0.2,1\n0.3,0.4,0.5,0\n";
        let err = read_samples(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected 2 features"));
    }

    #[test]
    fn fractional_label_is_an_error() {
        let text = "0.1,0.2,1.5\n";
        let err = read_samples(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("label column"));
    }

    #[test]
    fn single_column_is_an_error() {
        let err = read_samples("5\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("at least one feature"));
    }

    #[test]
    fn empty_input_is_empty_dataset() {
        assert!(read_samples("".as_bytes()).expect("read").is_empty());
    }

    #[test]
    fn generated_dataset_roundtrips() {
        use crate::{DatasetSpec, GeneratorConfig};
        let data = GeneratorConfig::new(3).generate(&DatasetSpec::pecan().with_sizes(30, 9));
        let mut buffer = Vec::new();
        write_samples(&mut buffer, &data.train).expect("write");
        let decoded = read_samples(buffer.as_slice()).expect("read");
        assert_eq!(decoded.len(), 30);
        for (a, b) in decoded.iter().zip(&data.train) {
            assert_eq!(a.label, b.label);
            for (x, y) in a.features.iter().zip(&b.features) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }
}
