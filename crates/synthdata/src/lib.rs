//! Seeded synthetic dataset generators for the RobustHD evaluation.
//!
//! The paper evaluates on six real datasets (Table 2: MNIST, UCI HAR,
//! ISOLET, FACE, PAMAP, PECAN). Those corpora are not redistributable here,
//! so this crate generates **synthetic stand-ins with the same geometry**:
//! identical feature counts, class counts and (scalable) split sizes, with a
//! tunable class-separability that is calibrated so fault-free classifiers
//! reach accuracies comparable to the paper's baselines.
//!
//! This substitution preserves what the robustness experiments measure —
//! *quality loss relative to the fault-free model* — because that loss is a
//! property of the data representation (binary holographic vs fixed-point)
//! and the classifier margin structure, not of the provenance of the
//! features (see DESIGN.md §4).
//!
//! # Example
//!
//! ```
//! use synthdata::{DatasetSpec, GeneratorConfig};
//!
//! let spec = DatasetSpec::ucihar().scaled(0.1);
//! let data = GeneratorConfig::new(7).generate(&spec);
//! assert_eq!(data.train.len(), spec.train_size);
//! assert_eq!(data.test[0].features.len(), spec.features);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod csv;
mod dataset;
mod gaussian;
mod spec;

pub use dataset::{Dataset, Sample};
pub use gaussian::GeneratorConfig;
pub use spec::DatasetSpec;
