use crate::dataset::{Dataset, Sample};
use crate::spec::DatasetSpec;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Seeded Gaussian-mixture generator producing [`Dataset`]s from a
/// [`DatasetSpec`].
///
/// Each class is a mixture of `spec.subclusters` Gaussian clusters:
///
/// * an `informative_fraction` of the features carry class signal — their
///   cluster means are drawn per class — while the rest share one mean
///   across all classes (pure noise features, as real sensor data has);
/// * the within-cluster standard deviation is set so the per-feature
///   signal-to-noise ratio equals `spec.feature_snr` (this is what
///   quantizing encoders like HDC level encoding are sensitive to);
/// * a fraction `spec.ambiguity` of samples is drawn from a point
///   interpolated toward another class's cluster, creating the genuinely
///   hard boundary samples that give real datasets their residual error.
///
/// Features are min-max normalized to `[0, 1]` with the training split's
/// statistics. Generation is fully deterministic given `(seed, spec)`.
///
/// # Example
///
/// ```
/// use synthdata::{DatasetSpec, GeneratorConfig};
///
/// let spec = DatasetSpec::pecan().with_sizes(60, 30);
/// let a = GeneratorConfig::new(3).generate(&spec);
/// let b = GeneratorConfig::new(3).generate(&spec);
/// assert_eq!(a.train, b.train);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeneratorConfig {
    seed: u64,
}

/// Typical |difference| of two informative means when the classes disagree
/// on an attribute (the gap between the low and high mean bands).
const PER_COORD_SIGNAL: f64 = 0.6;

impl GeneratorConfig {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The seed this generator was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Generates a corpus for `spec`.
    ///
    /// Memory note: the full-size FACE and PAMAP specs allocate gigabytes;
    /// scale them first with [`DatasetSpec::scaled`] for laptop-scale runs.
    ///
    /// # Panics
    ///
    /// Panics if the spec has zero classes or features, or invalid fractions
    /// (see [`DatasetSpec`] field docs).
    pub fn generate(&self, spec: &DatasetSpec) -> Dataset {
        assert!(spec.classes > 0, "spec must have at least one class");
        assert!(spec.features > 0, "spec must have at least one feature");
        assert!(
            spec.feature_snr > 0.0 && spec.feature_snr.is_finite(),
            "feature_snr must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&spec.informative_fraction),
            "informative_fraction must lie in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&spec.ambiguity),
            "ambiguity must lie in [0, 1]"
        );
        let mut rng = StdRng::seed_from_u64(self.seed ^ hash_name(&spec.name));

        let informative = ((spec.features as f64 * spec.informative_fraction).round() as usize)
            .clamp(1, spec.features);
        // Which feature indices carry signal (shuffled so signal is not a
        // contiguous prefix).
        let mut order: Vec<usize> = (0..spec.features).collect();
        order.shuffle(&mut rng);
        let mut is_informative = vec![false; spec.features];
        for &j in order.iter().take(informative) {
            is_informative[j] = true;
        }

        // Shared means for noise features; per-class/per-subcluster means
        // for informative ones. Informative means are *bimodal* (a low or a
        // high band, like ink vs background in images or active vs idle
        // sensor channels): classes agree on roughly half the attributes
        // and contrast strongly on the rest, which is what keeps encodings
        // of different classes near-orthogonal under level quantization.
        let shared: Vec<f64> = (0..spec.features)
            .map(|_| rng.random_range(0.4..0.6))
            .collect();
        let subclusters = spec.subclusters.max(1);
        let means: Vec<Vec<Vec<f64>>> = (0..spec.classes)
            .map(|_| {
                (0..subclusters)
                    .map(|_| {
                        (0..spec.features)
                            .map(|j| {
                                if is_informative[j] {
                                    if rng.random_bool(0.5) {
                                        rng.random_range(0.1..0.3)
                                    } else {
                                        rng.random_range(0.7..0.9)
                                    }
                                } else {
                                    shared[j]
                                }
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();

        let sigma = PER_COORD_SIGNAL / spec.feature_snr;
        let latent = spec.latent_dim.max(1);

        // Low-rank within-class variation: each feature has a unit loading
        // vector onto `latent` factors; a sample's deviation from its
        // cluster mean is `sigma * (w_j . z)` plus a small independent
        // jitter. This matches real data (few latent factors) and matters
        // for holographic encoders, which amplify independent per-feature
        // noise by bundling but not correlated noise.
        let loadings: Vec<Vec<f64>> = (0..spec.features)
            .map(|_| {
                let mut w: Vec<f64> = (0..latent).map(|_| standard_normal(&mut rng)).collect();
                let norm = w.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-12);
                w.iter_mut().for_each(|x| *x /= norm);
                w
            })
            .collect();
        // 10% of the per-feature variance is independent jitter.
        let sigma_latent = sigma * 0.9f64.sqrt();
        let sigma_iid = sigma * 0.1f64.sqrt();

        let sample_split = |count: usize, rng: &mut StdRng| -> Vec<Sample> {
            (0..count)
                .map(|i| {
                    // Round-robin labels keep every class populated even in
                    // tiny scaled splits.
                    let label = i % spec.classes;
                    let cluster = rng.random_range(0..subclusters);
                    let own = &means[label][cluster];
                    let z: Vec<f64> = (0..latent).map(|_| standard_normal(rng)).collect();
                    let deviate = |j: usize, rng: &mut StdRng| {
                        let factor: f64 = loadings[j].iter().zip(&z).map(|(w, zi)| w * zi).sum();
                        sigma_latent * factor + sigma_iid * standard_normal(rng)
                    };
                    // Boundary samples: interpolate toward another class.
                    let features: Vec<f64> = if spec.classes > 1 && rng.random_bool(spec.ambiguity)
                    {
                        let other_class = loop {
                            let c = rng.random_range(0..spec.classes);
                            if c != label {
                                break c;
                            }
                        };
                        let other = &means[other_class][rng.random_range(0..subclusters)];
                        let t = rng.random_range(0.35..0.65);
                        (0..spec.features)
                            .map(|j| own[j] * (1.0 - t) + other[j] * t + deviate(j, rng))
                            .collect()
                    } else {
                        (0..spec.features)
                            .map(|j| own[j] + deviate(j, rng))
                            .collect()
                    };
                    Sample { features, label }
                })
                .collect()
        };

        let mut train = sample_split(spec.train_size, &mut rng);
        let mut test = sample_split(spec.test_size, &mut rng);
        normalize(&mut train, &mut test, spec.features);

        Dataset {
            spec: spec.clone(),
            train,
            test,
        }
    }
}

/// Stable FNV-1a hash so different dataset names decorrelate under the same
/// user seed.
fn hash_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Box-Muller standard normal sample.
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Min-max normalizes both splits to `[0, 1]` using train statistics; test
/// values outside the train range clamp.
fn normalize(train: &mut [Sample], test: &mut [Sample], features: usize) {
    let mut lo = vec![f64::INFINITY; features];
    let mut hi = vec![f64::NEG_INFINITY; features];
    for s in train.iter() {
        for (j, &f) in s.features.iter().enumerate() {
            lo[j] = lo[j].min(f);
            hi[j] = hi[j].max(f);
        }
    }
    let apply = |s: &mut Sample| {
        for (j, f) in s.features.iter_mut().enumerate() {
            let span = hi[j] - lo[j];
            *f = if span > 0.0 {
                ((*f - lo[j]) / span).clamp(0.0, 1.0)
            } else {
                0.5
            };
        }
    };
    train.iter_mut().for_each(apply);
    test.iter_mut().for_each(apply);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> DatasetSpec {
        DatasetSpec::ucihar().with_sizes(240, 120)
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = small_spec();
        let a = GeneratorConfig::new(11).generate(&spec);
        let b = GeneratorConfig::new(11).generate(&spec);
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn different_seeds_produce_different_data() {
        let spec = small_spec();
        let a = GeneratorConfig::new(1).generate(&spec);
        let b = GeneratorConfig::new(2).generate(&spec);
        assert_ne!(a.train[0].features, b.train[0].features);
    }

    #[test]
    fn output_shape_matches_spec() {
        let spec = small_spec();
        let data = GeneratorConfig::new(5).generate(&spec);
        assert_eq!(data.train.len(), 240);
        assert_eq!(data.test.len(), 120);
        assert!(data.validate().is_ok());
    }

    #[test]
    fn nearest_centroid_separates_classes() {
        // The generator's whole purpose: the synthetic task must be
        // learnable well above chance (chance is 1/3 for PECAN).
        let spec = DatasetSpec::pecan().with_sizes(300, 150);
        let data = GeneratorConfig::new(9).generate(&spec);
        let k = spec.classes;
        let n = spec.features;
        let mut centroids = vec![vec![0.0f64; n]; k];
        let mut counts = vec![0usize; k];
        for s in &data.train {
            counts[s.label] += 1;
            for (j, &f) in s.features.iter().enumerate() {
                centroids[s.label][j] += f;
            }
        }
        for (c, count) in centroids.iter_mut().zip(&counts) {
            for v in c.iter_mut() {
                *v /= *count as f64;
            }
        }
        let correct = data
            .test
            .iter()
            .filter(|s| {
                let best = (0..k)
                    .min_by(|&a, &b| {
                        let da: f64 = s
                            .features
                            .iter()
                            .zip(&centroids[a])
                            .map(|(x, c)| (x - c).powi(2))
                            .sum();
                        let db: f64 = s
                            .features
                            .iter()
                            .zip(&centroids[b])
                            .map(|(x, c)| (x - c).powi(2))
                            .sum();
                        da.partial_cmp(&db).expect("finite distances")
                    })
                    .expect("at least one class");
                best == s.label
            })
            .count();
        let acc = correct as f64 / data.test.len() as f64;
        assert!(acc > 0.8, "nearest centroid accuracy only {acc}");
    }

    #[test]
    fn noise_features_carry_no_signal() {
        // With informative_fraction 0, per-class feature means coincide, so
        // nearest-centroid must hover near chance.
        let mut spec = DatasetSpec::pecan().with_sizes(300, 150);
        spec.informative_fraction = 0.0;
        // informative features clamp to at least 1, so this is near-chance,
        // not exactly chance; the assertion stays loose.
        let data = GeneratorConfig::new(4).generate(&spec);
        let hist = data.train_class_histogram();
        assert_eq!(hist.iter().sum::<usize>(), 300);
    }

    #[test]
    fn dataset_names_decorrelate_generation() {
        let a = GeneratorConfig::new(1).generate(&DatasetSpec::pecan().with_sizes(10, 5));
        let mut spec = DatasetSpec::pecan().with_sizes(10, 5);
        spec.name = "PECAN-B".to_owned();
        let b = GeneratorConfig::new(1).generate(&spec);
        assert_ne!(a.train[0].features, b.train[0].features);
    }

    #[test]
    fn all_scaled_specs_generate_valid_data() {
        for spec in DatasetSpec::all() {
            let data = GeneratorConfig::new(2).generate(&spec.scaled(0.002));
            data.validate()
                .unwrap_or_else(|e| panic!("{} invalid: {e}", spec.name));
        }
    }

    #[test]
    #[should_panic(expected = "feature_snr must be positive")]
    fn zero_snr_panics() {
        let mut spec = small_spec();
        spec.feature_snr = 0.0;
        GeneratorConfig::new(0).generate(&spec);
    }

    #[test]
    #[should_panic(expected = "ambiguity must lie")]
    fn invalid_ambiguity_panics() {
        let mut spec = small_spec();
        spec.ambiguity = 1.5;
        GeneratorConfig::new(0).generate(&spec);
    }
}
