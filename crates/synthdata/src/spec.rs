use serde::{Deserialize, Serialize};

/// Shape of one evaluation dataset, mirroring Table 2 of the paper.
///
/// The six constructors ([`DatasetSpec::mnist`] …) carry the paper's feature
/// counts, class counts, and split sizes. [`DatasetSpec::scaled`] shrinks
/// the splits proportionally so experiments run at laptop scale while the
/// geometry (features, classes, class balance) is untouched.
///
/// # Example
///
/// ```
/// use synthdata::DatasetSpec;
///
/// let spec = DatasetSpec::mnist();
/// assert_eq!((spec.features, spec.classes), (784, 10));
/// let small = spec.scaled(0.01);
/// assert_eq!(small.train_size, 600);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Short dataset name as used in the paper's tables.
    pub name: String,
    /// Feature count `n`.
    pub features: usize,
    /// Class count `k`.
    pub classes: usize,
    /// Number of training samples.
    pub train_size: usize,
    /// Number of test samples.
    pub test_size: usize,
    /// Per-feature signal-to-noise ratio: the expected class-mean gap of an
    /// informative feature divided by the within-class standard deviation.
    /// Larger values make the task easier. Calibrated per dataset so the
    /// fault-free baseline accuracies land near the paper's.
    pub feature_snr: f64,
    /// Fraction of features that carry class signal (the rest are noise
    /// features sharing one mean across classes, as real sensor data has).
    pub informative_fraction: f64,
    /// Fraction of samples drawn near a class boundary (interpolated toward
    /// another class), producing the residual error real datasets exhibit.
    pub ambiguity: f64,
    /// Number of Gaussian sub-clusters composing each class (adds intra-class
    /// structure so the task is not linearly trivial).
    pub subclusters: usize,
    /// Intrinsic dimensionality of the within-class variation. Real sensor
    /// and image data varies along a few latent factors, not independently
    /// per feature; holographic encoders are sensitive to this (independent
    /// per-feature noise is amplified by bundling, low-rank noise is not).
    pub latent_dim: usize,
}

impl DatasetSpec {
    /// Handwritten-digit stand-in (paper: MNIST, 784 features, 10 classes).
    pub fn mnist() -> Self {
        Self {
            name: "MNIST".to_owned(),
            features: 784,
            classes: 10,
            train_size: 60_000,
            test_size: 10_000,
            feature_snr: 4.5,
            informative_fraction: 0.85,
            ambiguity: 0.03,
            subclusters: 3,
            latent_dim: 12,
        }
    }

    /// Smartphone activity-recognition stand-in (paper: UCI HAR, 561
    /// features, 12 classes).
    pub fn ucihar() -> Self {
        Self {
            name: "UCI HAR".to_owned(),
            features: 561,
            classes: 12,
            train_size: 6_213,
            test_size: 1_554,
            feature_snr: 4.0,
            informative_fraction: 0.80,
            ambiguity: 0.04,
            subclusters: 2,
            latent_dim: 8,
        }
    }

    /// Voice-recognition stand-in (paper: ISOLET, 617 features, 26 classes).
    pub fn isolet() -> Self {
        Self {
            name: "ISOLET".to_owned(),
            features: 617,
            classes: 26,
            train_size: 6_238,
            test_size: 1_559,
            feature_snr: 4.2,
            informative_fraction: 0.80,
            ambiguity: 0.05,
            subclusters: 2,
            latent_dim: 10,
        }
    }

    /// Face-recognition stand-in (paper: FACE, 608 features, 2 classes).
    pub fn face() -> Self {
        Self {
            name: "FACE".to_owned(),
            features: 608,
            classes: 2,
            train_size: 522_441,
            test_size: 2_494,
            feature_snr: 3.6,
            informative_fraction: 0.70,
            ambiguity: 0.04,
            subclusters: 4,
            latent_dim: 10,
        }
    }

    /// IMU activity-recognition stand-in (paper: PAMAP, 75 features, 5
    /// classes).
    pub fn pamap() -> Self {
        Self {
            name: "PAMAP".to_owned(),
            features: 75,
            classes: 5,
            train_size: 611_142,
            test_size: 101_582,
            feature_snr: 4.8,
            informative_fraction: 0.90,
            ambiguity: 0.05,
            subclusters: 3,
            latent_dim: 6,
        }
    }

    /// Urban electricity-prediction stand-in (paper: PECAN, 312 features, 3
    /// classes).
    pub fn pecan() -> Self {
        Self {
            name: "PECAN".to_owned(),
            features: 312,
            classes: 3,
            train_size: 22_290,
            test_size: 5_574,
            feature_snr: 3.4,
            informative_fraction: 0.75,
            ambiguity: 0.08,
            subclusters: 3,
            latent_dim: 8,
        }
    }

    /// All six paper datasets in table order.
    pub fn all() -> Vec<Self> {
        vec![
            Self::mnist(),
            Self::ucihar(),
            Self::isolet(),
            Self::face(),
            Self::pamap(),
            Self::pecan(),
        ]
    }

    /// Returns a copy with both splits scaled by `factor` (each split keeps
    /// at least one sample per class).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor {factor} must be positive"
        );
        let scale = |n: usize| ((n as f64 * factor).round() as usize).max(self.classes);
        Self {
            train_size: scale(self.train_size),
            test_size: scale(self.test_size),
            ..self.clone()
        }
    }

    /// Returns a copy with explicit split sizes (geometry unchanged).
    pub fn with_sizes(&self, train_size: usize, test_size: usize) -> Self {
        Self {
            train_size,
            test_size,
            ..self.clone()
        }
    }

    /// Returns a copy with a different per-feature signal-to-noise ratio
    /// (used by calibration tests and the difficulty ablation).
    pub fn with_feature_snr(&self, feature_snr: f64) -> Self {
        Self {
            feature_snr,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_paper_table2() {
        let expect = [
            ("MNIST", 784, 10, 60_000, 10_000),
            ("UCI HAR", 561, 12, 6_213, 1_554),
            ("ISOLET", 617, 26, 6_238, 1_559),
            ("FACE", 608, 2, 522_441, 2_494),
            ("PAMAP", 75, 5, 611_142, 101_582),
            ("PECAN", 312, 3, 22_290, 5_574),
        ];
        for (spec, (name, n, k, tr, te)) in DatasetSpec::all().iter().zip(expect) {
            assert_eq!(spec.name, name);
            assert_eq!(spec.features, n);
            assert_eq!(spec.classes, k);
            assert_eq!(spec.train_size, tr);
            assert_eq!(spec.test_size, te);
        }
    }

    #[test]
    fn scaled_preserves_geometry() {
        let s = DatasetSpec::isolet().scaled(0.1);
        assert_eq!(s.features, 617);
        assert_eq!(s.classes, 26);
        assert_eq!(s.train_size, 624);
    }

    #[test]
    fn scaled_keeps_one_sample_per_class() {
        let s = DatasetSpec::isolet().scaled(1e-9);
        assert!(s.train_size >= 26);
        assert!(s.test_size >= 26);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn scaled_rejects_zero() {
        DatasetSpec::mnist().scaled(0.0);
    }

    #[test]
    fn with_sizes_overrides() {
        let s = DatasetSpec::pecan().with_sizes(100, 50);
        assert_eq!((s.train_size, s.test_size), (100, 50));
    }
}
