//! Property-based tests of the dataset generator.

use proptest::prelude::*;
use synthdata::{DatasetSpec, GeneratorConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any scaled spec produces a structurally valid corpus with every
    /// class represented in both splits.
    #[test]
    fn generated_corpora_are_valid(
        seed in any::<u64>(),
        which in 0usize..6,
        train in 30usize..120,
        test in 30usize..120,
    ) {
        let spec = DatasetSpec::all()[which].with_sizes(train.max(30), test.max(30));
        let data = GeneratorConfig::new(seed).generate(&spec);
        prop_assert!(data.validate().is_ok());
        prop_assert_eq!(data.train.len(), spec.train_size);
        prop_assert_eq!(data.test.len(), spec.test_size);
        let hist = data.train_class_histogram();
        prop_assert!(hist.iter().all(|&c| c > 0), "class missing: {:?}", hist);
    }

    /// Generation is a pure function of (seed, spec).
    #[test]
    fn generation_is_pure(seed in any::<u64>()) {
        let spec = DatasetSpec::pecan().with_sizes(45, 30);
        let a = GeneratorConfig::new(seed).generate(&spec);
        let b = GeneratorConfig::new(seed).generate(&spec);
        prop_assert_eq!(a.train, b.train);
        prop_assert_eq!(a.test, b.test);
    }

    /// Scaling preserves geometry and never drops below one sample per
    /// class.
    #[test]
    fn scaling_invariants(factor in 1e-6f64..2.0, which in 0usize..6) {
        let spec = DatasetSpec::all()[which].clone();
        let scaled = spec.scaled(factor);
        prop_assert_eq!(scaled.features, spec.features);
        prop_assert_eq!(scaled.classes, spec.classes);
        prop_assert!(scaled.train_size >= spec.classes);
        prop_assert!(scaled.test_size >= spec.classes);
    }
}
