//! Differential suite for the adversarial scenario engine: a persisted
//! disagreement corpus must replay **bit-identically** — the fast encoder
//! against the scalar reference encoder, batched scoring against
//! sequential [`robusthd::Confidence::evaluate`] (down to `f64::to_bits`
//! on every confidence and margin), and recorded verdicts against live
//! models — at any engine thread count. The attacker's tuning flows
//! through [`robusthd::AdvConfig`]; its serving-path purity is what makes
//! "replayable" a theorem rather than a hope.

use advsim::{DisagreementCorpus, DisagreementHunter, HuntBudget};
use faultsim::Attacker;
use robusthd::{
    AdvConfig, BatchConfig, BatchEngine, EncodeConfig, Encoder, HdcConfig, RecordEncoder,
    TrainedModel,
};

fn engine(threads: usize) -> BatchEngine {
    BatchEngine::new(
        BatchConfig::builder()
            .threads(threads)
            .shard_size(7)
            .build()
            .expect("valid"),
    )
}

struct Fixture {
    config: HdcConfig,
    encoder: RecordEncoder,
    one_shot: TrainedModel,
    attacked: TrainedModel,
    rows: Vec<Vec<f64>>,
}

/// A workload guaranteed to yield disagreements: the one-shot model vs a
/// memory-corrupted copy of itself. Dimension 1000 leaves a 40-bit word
/// tail, so the replay also covers mask handling.
fn fixture() -> Fixture {
    let config = HdcConfig::builder()
        .dimension(1000)
        .seed(47)
        .build()
        .expect("valid");
    let encoder = RecordEncoder::new(&config, 6);
    let rows: Vec<Vec<f64>> = (0..32)
        .map(|i| {
            let base = if i % 2 == 0 { 0.25 } else { 0.75 };
            (0..6)
                .map(|f| base + 0.02 * f as f64 * if i % 3 == 0 { 1.0 } else { -1.0 })
                .collect()
        })
        .collect();
    let labels: Vec<usize> = (0..32).map(|i| i % 2).collect();
    let encoded = encoder.encode_batch(&rows);
    let one_shot = TrainedModel::train(&encoded, &labels, 2, &config);
    let mut attacked = one_shot.clone();
    let mut image = attacked.to_memory_image();
    let bits = attacked.num_classes() * attacked.dim();
    Attacker::seed_from(3).random_flips(image.words_mut(), bits, 0.3);
    image.mask_tail();
    attacked.load_memory_image(&image);
    Fixture {
        config,
        encoder,
        one_shot,
        attacked,
        rows,
    }
}

/// Hunt → persist → parse → replay: the round-tripped corpus replays
/// clean (no encode, score, or verdict mismatches) through the fast and
/// reference encoder pair, and the replay verdict is the same at 1 and 4
/// engine threads.
#[test]
fn persisted_corpus_replays_bit_identically() {
    let f = fixture();
    let beta = f.config.softmax_beta;
    let variants = [("one-shot", &f.one_shot), ("attacked", &f.attacked)];
    let hunter = DisagreementHunter::new(
        HuntBudget::new(6, 12)
            .with_feature_step(0.15)
            .with_seed(AdvConfig::default().seed),
    );
    let corpus = hunter.hunt(&engine(3), &f.encoder, &variants, &f.rows, beta);
    assert!(
        !corpus.cases.is_empty(),
        "a 30%-corrupted copy must disagree somewhere"
    );

    let parsed = DisagreementCorpus::from_text(&corpus.to_text()).expect("well-formed");
    assert_eq!(parsed, corpus, "text round trip must be lossless");

    let fast = RecordEncoder::with_encode_config(&f.config, 6, EncodeConfig::fast());
    let reference = RecordEncoder::with_encode_config(&f.config, 6, EncodeConfig::reference());
    assert!(fast.fast_path() && !reference.fast_path());
    for threads in [1usize, 4] {
        let report = parsed.replay(&engine(threads), &fast, &reference, &variants, beta);
        assert_eq!(report.cases, corpus.cases.len());
        assert!(
            report.is_clean(),
            "replay at {threads} threads not bit-exact: {report:?}"
        );
    }
}

/// The corpus's recorded verdicts match what each live variant predicts on
/// the reference (sequential, scalar) path — the recorded disagreements
/// are properties of the models, not artifacts of the batched search.
#[test]
fn recorded_verdicts_hold_on_the_reference_path() {
    let f = fixture();
    let beta = f.config.softmax_beta;
    let variants = [("one-shot", &f.one_shot), ("attacked", &f.attacked)];
    let hunter =
        DisagreementHunter::new(HuntBudget::new(6, 12).with_feature_step(0.15).with_seed(11));
    let corpus = hunter.hunt(&engine(2), &f.encoder, &variants, &f.rows, beta);
    assert!(!corpus.cases.is_empty(), "hunt came up empty");
    let reference = RecordEncoder::with_encode_config(&f.config, 6, EncodeConfig::reference());
    for case in &corpus.cases {
        let hv = reference.encode(&case.row);
        assert_eq!(f.one_shot.predict(&hv), case.verdicts[0]);
        assert_eq!(f.attacked.predict(&hv), case.verdicts[1]);
        assert_ne!(case.verdicts[0], case.verdicts[1], "not a disagreement");
    }
}
