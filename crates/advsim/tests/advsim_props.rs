//! Property suite for the adversarial scenario engine, pinning the
//! [`robusthd::AdvConfig`]-governed attacker to its contract: the hard
//! Hamming budget (metamorphic — the adversarial output never leaves the
//! ball, at any radius), seeded determinism at any engine thread count,
//! and lossless corpus text round-tripping.

use advsim::{
    AttackBudget, DisagreementCase, DisagreementCorpus, DisagreementHunter, HuntBudget,
    MarginAttacker,
};
use hypervector::random::HypervectorSampler;
use hypervector::BinaryHypervector;
use proptest::prelude::*;
use robusthd::{
    AdvConfig, BatchConfig, BatchEngine, Encoder, HdcConfig, RecordEncoder, TrainedModel,
};

fn engine(threads: usize) -> BatchEngine {
    BatchEngine::new(
        BatchConfig::builder()
            .threads(threads)
            .shard_size(5)
            .build()
            .expect("valid"),
    )
}

fn fixture(dim: usize) -> (TrainedModel, Vec<BinaryHypervector>) {
    let mut sampler = HypervectorSampler::seed_from(17);
    let classes: Vec<_> = (0..3).map(|_| sampler.binary(dim)).collect();
    let queries: Vec<_> = (0..6)
        .map(|i| sampler.flip_noise(&classes[i % 3], 0.25))
        .collect();
    (TrainedModel::from_classes(classes), queries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Metamorphic budget property: whatever the radius, candidate width,
    /// or seed — all fed through [`AdvConfig`], the registry-backed tuning
    /// struct — the adversarial query stays inside the Hamming ball, its
    /// distance from the original is exactly the accepted flip count, and
    /// no position is flipped twice or lands out of range. Dimension 250
    /// exercises a non-word-aligned tail.
    #[test]
    fn attack_never_leaves_the_hamming_ball(
        radius in 0usize..48,
        candidates in 1usize..24,
        seed in any::<u64>(),
    ) {
        let (model, queries) = fixture(250);
        let engine = engine(2);
        let budget = AttackBudget::with_adv_config(radius, &AdvConfig { candidates, seed });
        let attacker = MarginAttacker::new(budget);
        for (i, q) in queries.iter().take(3).enumerate() {
            let attack = attacker.attack(&engine, &model, q, 64.0, i);
            prop_assert!(attack.flipped_bits.len() <= radius);
            prop_assert_eq!(
                q.hamming_distance(&attack.adversarial),
                attack.flipped_bits.len()
            );
            let mut sorted = attack.flipped_bits.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), attack.flipped_bits.len(), "revisited a position");
            prop_assert!(attack.flipped_bits.iter().all(|&p| p < 250));
        }
    }

    /// The ADVC1 corpus text format round-trips bit-exactly: every f64 row
    /// value survives via its raw bits, verdicts and provenance verbatim.
    /// Each feature is drawn from a mix of uniform values and adversarial
    /// literals (exact bounds, `0.1 + 0.2`, the smallest positive normal).
    #[test]
    fn corpus_text_roundtrips(
        rows in prop::collection::vec(
            prop::collection::vec((0u8..5, 0.0f64..=1.0), 3),
            0..6,
        ),
        verdict in 0usize..4,
    ) {
        let mut corpus = DisagreementCorpus::new(vec!["a".to_owned(), "b".to_owned()]);
        for (i, row) in rows.iter().enumerate() {
            let row: Vec<f64> = row
                .iter()
                .map(|&(pick, uniform)| match pick {
                    0 => 0.0,
                    1 => 1.0,
                    2 => 0.1f64 + 0.2f64,
                    3 => f64::MIN_POSITIVE,
                    _ => uniform,
                })
                .collect();
            corpus.cases.push(DisagreementCase {
                seed_index: i,
                round: i % 3,
                row,
                verdicts: vec![verdict, (verdict + 1) % 4],
            });
        }
        let parsed = DisagreementCorpus::from_text(&corpus.to_text()).expect("well-formed");
        prop_assert_eq!(parsed, corpus);
    }
}

/// The attack is a pure function of `(budget, model, query, beta, index)`:
/// the engine's thread count must not leak into any field, down to the
/// `f64` margins the greedy search descends on.
#[test]
fn attack_is_identical_across_thread_counts() {
    let (model, queries) = fixture(512);
    let budget = AttackBudget::with_adv_config(32, &AdvConfig::default()).with_seed(13);
    let attacker = MarginAttacker::new(budget);
    let single = attacker.attack_batch(&engine(1), &model, &queries, 64.0);
    let parallel = attacker.attack_batch(&engine(4), &model, &queries, 64.0);
    assert_eq!(single.len(), parallel.len());
    for (a, b) in single.iter().zip(&parallel) {
        assert_eq!(a, b, "thread count leaked into the attack");
        assert_eq!(a.margin_after.to_bits(), b.margin_after.to_bits());
        assert_eq!(a.confidence_after.to_bits(), b.confidence_after.to_bits());
    }
}

/// The disagreement hunt is likewise thread-count invariant: the corpus it
/// produces (rows, rounds, verdicts) is identical at 1 and 4 workers.
#[test]
fn hunt_is_identical_across_thread_counts() {
    let config = HdcConfig::builder()
        .dimension(1024)
        .seed(29)
        .build()
        .expect("valid");
    let refined = HdcConfig::builder()
        .dimension(1024)
        .seed(29)
        .retrain_epochs(3)
        .build()
        .expect("valid");
    let encoder = RecordEncoder::new(&config, 5);
    let rows: Vec<Vec<f64>> = (0..24)
        .map(|i| {
            let base = if i % 2 == 0 { 0.3 } else { 0.7 };
            (0..5).map(|f| base + 0.03 * f as f64).collect()
        })
        .collect();
    let labels: Vec<usize> = (0..24).map(|i| i % 2).collect();
    let encoded = encoder.encode_batch(&rows);
    let one_shot = TrainedModel::train(&encoded, &labels, 2, &config);
    let retrained = TrainedModel::train(&encoded, &labels, 2, &refined);
    let variants = [("one-shot", &one_shot), ("retrained", &retrained)];
    let hunter =
        DisagreementHunter::new(HuntBudget::new(5, 10).with_seed(AdvConfig::default().seed));
    let a = hunter.hunt(&engine(1), &encoder, &variants, &rows, config.softmax_beta);
    let b = hunter.hunt(&engine(4), &encoder, &variants, &rows, config.softmax_beta);
    assert_eq!(a, b, "thread count leaked into the hunt");
}

/// `AttackBudget::new` is exactly the [`AdvConfig::default`] tuning — the
/// registered `ROBUSTHD_ADV_*` defaults and the programmatic default can
/// never drift apart.
#[test]
fn default_budget_matches_adv_config_defaults() {
    let config = AdvConfig::default();
    let budget = AttackBudget::new(7);
    assert_eq!(budget.radius, 7);
    assert_eq!(budget.candidates, config.candidates);
    assert_eq!(budget.seed, config.seed);
}
