//! HDXplore-style differential disagreement hunting.
//!
//! HDXplore (arXiv 2105.12770) finds a classifier's blind spots without
//! labels by mutating inputs until *model variants* disagree — any
//! disagreement is a guaranteed error in at least one variant. This repo
//! gets its variants for free: the one-shot bundled model vs its
//! retrained refinement, and the clean model vs a memory-attacked copy.
//!
//! The hunter is a seeded hill climb in raw feature space: each round
//! mutates the current row into a batch of candidates (a few features
//! nudged by `feature_step`, clamped to `[0, 1]`), encodes them once
//! through the batched fast path, scores them under every variant, and
//! either records a disagreement (and moves to the next seed row) or
//! descends toward the candidate with the smallest *worst-case* margin —
//! the direction in which some variant's decision boundary is nearest.

use crate::corpus::{DisagreementCase, DisagreementCorpus};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use robusthd::encoding::Encoder;
use robusthd::{BatchEngine, TrainedModel};

/// Odd 64-bit multiplier decorrelating per-seed-row mutation streams
/// (golden-ratio constant, as in SplitMix64).
const SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// The hunter's resources: rounds per seed row, mutants per round, the
/// per-feature mutation step, and the base seed.
///
/// # Example
///
/// ```
/// use advsim::HuntBudget;
///
/// let budget = HuntBudget::new(8, 16).with_feature_step(0.1).with_seed(3);
/// assert_eq!((budget.rounds, budget.mutants, budget.seed), (8, 16, 3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HuntBudget {
    /// Hill-climb rounds spent per seed row before giving up on it.
    pub rounds: usize,
    /// Mutated candidates generated (and batch-scored) per round.
    pub mutants: usize,
    /// Magnitude of one feature nudge; mutated values clamp to `[0, 1]`.
    pub feature_step: f64,
    /// Base seed; per-seed-row streams derive from it and the row index.
    pub seed: u64,
}

impl HuntBudget {
    /// A budget of `rounds` hill-climb rounds of `mutants` candidates
    /// each, with the default feature step (half a typical quantization
    /// level at 64 levels: 0.05) and seed 0.
    pub fn new(rounds: usize, mutants: usize) -> Self {
        Self {
            rounds,
            mutants: mutants.max(1),
            feature_step: 0.05,
            seed: 0,
        }
    }

    /// Replaces the feature mutation step.
    ///
    /// # Panics
    ///
    /// Panics if `feature_step` is not positive and finite.
    pub fn with_feature_step(mut self, feature_step: f64) -> Self {
        assert!(
            feature_step.is_finite() && feature_step > 0.0,
            "feature_step must be positive and finite"
        );
        self.feature_step = feature_step;
        self
    }

    /// Replaces the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Differential disagreement hunter (see the module docs).
///
/// Deterministic: for a fixed budget the produced corpus is a pure
/// function of `(variants, seed_rows, beta)`, at any engine thread count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DisagreementHunter {
    budget: HuntBudget,
}

impl DisagreementHunter {
    /// Creates a hunter with the given budget.
    pub fn new(budget: HuntBudget) -> Self {
        Self { budget }
    }

    /// The hunter's budget.
    pub fn budget(&self) -> &HuntBudget {
        &self.budget
    }

    /// Hunts for rows on which the `variants` disagree, starting from
    /// each of `seed_rows` in turn. All variants must share the encoder's
    /// dimensionality; `beta` is the confidence softmax inverse
    /// temperature.
    ///
    /// Returns the corpus of every disagreement found (at most one per
    /// seed row — the hunt moves on once a row's neighbourhood yields a
    /// disagreement, maximizing corpus diversity over depth).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two variants are given, a seed row's length
    /// differs from `encoder.features()`, or a variant's dimensionality
    /// differs from the encoder's.
    pub fn hunt<E: Encoder + Sync + ?Sized>(
        &self,
        engine: &BatchEngine,
        encoder: &E,
        variants: &[(&str, &TrainedModel)],
        seed_rows: &[Vec<f64>],
        beta: f64,
    ) -> DisagreementCorpus {
        assert!(
            variants.len() >= 2,
            "disagreement needs at least two model variants"
        );
        let features = encoder.features();
        for (name, model) in variants {
            assert_eq!(
                model.dim(),
                encoder.dim(),
                "variant {name} dimensionality differs from the encoder's"
            );
        }

        let mut corpus = DisagreementCorpus::new(
            variants
                .iter()
                .map(|(name, _)| (*name).to_owned())
                .collect(),
        );
        for (seed_index, row) in seed_rows.iter().enumerate() {
            assert_eq!(row.len(), features, "seed row {seed_index} feature count");
            let mut rng = StdRng::seed_from_u64(
                self.budget.seed ^ (seed_index as u64).wrapping_mul(SEED_STRIDE),
            );

            let (verdicts, mut fitness) =
                Self::judge(engine, encoder, variants, std::slice::from_ref(row), beta)[0].clone();
            if !all_equal(&verdicts) {
                corpus.cases.push(DisagreementCase {
                    seed_index,
                    round: 0,
                    row: row.clone(),
                    verdicts,
                });
                continue;
            }

            let mut current = row.clone();
            'rounds: for round in 1..=self.budget.rounds {
                let candidates: Vec<Vec<f64>> = (0..self.budget.mutants)
                    .map(|_| self.mutate(&current, &mut rng))
                    .collect();
                let judged = Self::judge(engine, encoder, variants, &candidates, beta);
                for (i, (verdicts, _)) in judged.iter().enumerate() {
                    if !all_equal(verdicts) {
                        corpus.cases.push(DisagreementCase {
                            seed_index,
                            round,
                            row: candidates[i].clone(),
                            verdicts: verdicts.clone(),
                        });
                        break 'rounds;
                    }
                }
                // No disagreement this round: descend toward the candidate
                // whose weakest variant margin is smallest (strict
                // improvement, lowest index on ties).
                let mut best: Option<(usize, f64)> = None;
                for (i, (_, candidate_fitness)) in judged.iter().enumerate() {
                    let improves = match best {
                        None => *candidate_fitness < fitness,
                        Some((_, so_far)) => *candidate_fitness < so_far,
                    };
                    if improves {
                        best = Some((i, *candidate_fitness));
                    }
                }
                if let Some((i, candidate_fitness)) = best {
                    current.clone_from(&candidates[i]);
                    fitness = candidate_fitness;
                }
            }
        }
        corpus
    }

    /// Encodes `rows` once through the batched fast path and scores them
    /// under every variant; per row, returns the variants' predicted
    /// labels and the minimum margin across variants (the hunt fitness).
    fn judge<E: Encoder + Sync + ?Sized>(
        engine: &BatchEngine,
        encoder: &E,
        variants: &[(&str, &TrainedModel)],
        rows: &[Vec<f64>],
        beta: f64,
    ) -> Vec<(Vec<usize>, f64)> {
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let encoded = engine.encode_batch(encoder, &refs);
        let per_variant: Vec<_> = variants
            .iter()
            .map(|(_, model)| engine.evaluate_batch(model, &encoded, beta))
            .collect();
        (0..rows.len())
            .map(|i| {
                let verdicts: Vec<usize> = per_variant
                    .iter()
                    .map(|scores| scores[i].predicted)
                    .collect();
                let fitness = per_variant
                    .iter()
                    .map(|scores| scores[i].confidence.margin)
                    .fold(f64::INFINITY, f64::min);
                (verdicts, fitness)
            })
            .collect()
    }

    /// One mutant: 1–3 features nudged by ±`feature_step`, clamped to the
    /// encoder's `[0, 1]` input domain.
    fn mutate(&self, row: &[f64], rng: &mut StdRng) -> Vec<f64> {
        let mut mutant = row.to_vec();
        let nudges = rng.random_range(1..=3usize).min(mutant.len());
        for _ in 0..nudges {
            let feature = rng.random_range(0..mutant.len());
            let step = if rng.random_bool(0.5) {
                self.budget.feature_step
            } else {
                -self.budget.feature_step
            };
            mutant[feature] = (mutant[feature] + step).clamp(0.0, 1.0);
        }
        mutant
    }
}

fn all_equal(verdicts: &[usize]) -> bool {
    verdicts.windows(2).all(|pair| pair[0] == pair[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use robusthd::encoding::RecordEncoder;
    use robusthd::HdcConfig;

    fn fixture() -> (
        HdcConfig,
        RecordEncoder,
        TrainedModel,
        TrainedModel,
        Vec<Vec<f64>>,
    ) {
        let config = HdcConfig::builder()
            .dimension(1024)
            .seed(13)
            .build()
            .expect("valid");
        let refined = HdcConfig::builder()
            .dimension(1024)
            .seed(13)
            .retrain_epochs(3)
            .build()
            .expect("valid");
        let encoder = RecordEncoder::new(&config, 6);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            let base = if i % 2 == 0 { 0.25 } else { 0.75 };
            let row: Vec<f64> = (0..6)
                .map(|f| base + 0.02 * (f as f64) * if i % 3 == 0 { 1.0 } else { -1.0 })
                .collect();
            rows.push(row);
            labels.push(i % 2);
        }
        let encoded = encoder.encode_batch(&rows);
        let one_shot = TrainedModel::train(&encoded, &labels, 2, &config);
        let retrained = TrainedModel::train(&encoded, &labels, 2, &refined);
        (config, encoder, one_shot, retrained, rows)
    }

    #[test]
    fn hunt_is_deterministic_per_seed() {
        let (config, encoder, one_shot, retrained, rows) = fixture();
        let engine = BatchEngine::from_env();
        let hunter = DisagreementHunter::new(HuntBudget::new(4, 8).with_seed(21));
        let variants = [("one-shot", &one_shot), ("retrained", &retrained)];
        let a = hunter.hunt(
            &engine,
            &encoder,
            &variants,
            &rows[..6],
            config.softmax_beta,
        );
        let b = hunter.hunt(
            &engine,
            &encoder,
            &variants,
            &rows[..6],
            config.softmax_beta,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn recorded_verdicts_actually_disagree() {
        let (config, encoder, one_shot, retrained, rows) = fixture();
        let engine = BatchEngine::from_env();
        let hunter =
            DisagreementHunter::new(HuntBudget::new(10, 16).with_seed(2).with_feature_step(0.15));
        let variants = [("one-shot", &one_shot), ("retrained", &retrained)];
        let corpus = hunter.hunt(&engine, &encoder, &variants, &rows, config.softmax_beta);
        for case in &corpus.cases {
            assert!(!all_equal(&case.verdicts), "case is not a disagreement");
            // Verdicts replay against the live variants.
            let hv = encoder.encode(&case.row);
            assert_eq!(one_shot.predict(&hv), case.verdicts[0]);
            assert_eq!(retrained.predict(&hv), case.verdicts[1]);
        }
    }

    #[test]
    #[should_panic(expected = "at least two model variants")]
    fn single_variant_panics() {
        let (config, encoder, one_shot, _, rows) = fixture();
        let engine = BatchEngine::from_env();
        let hunter = DisagreementHunter::new(HuntBudget::new(1, 1));
        hunter.hunt(
            &engine,
            &encoder,
            &[("solo", &one_shot)],
            &rows[..1],
            config.softmax_beta,
        );
    }
}
