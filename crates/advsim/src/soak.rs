//! Joint memory + input attack soak: the closed loop under fire from both
//! directions at once.
//!
//! The chaos soak (`bench::soak`) corrupts *stored memory* and lets the
//! resilience supervisor repair it; this module additionally corrupts the
//! *traffic*: each step, a [`faultsim::AttackCampaign`] advances the
//! memory corruption, a seeded fraction of the served queries is replaced
//! by [`crate::MarginAttacker`] outputs synthesized against the current
//! (corrupted) model, and the mixed batch is served through
//! [`robusthd::supervisor::ResilienceSupervisor::serve_batch_with_scores`].
//!
//! The question the report answers: does the confidence gate
//! ([`robusthd::Confidence::is_trusted`]) *detect* adversarial queries —
//! refuse to trust them — the way the health monitor detects bit-rot?
//! Detection here is per-query (an attacked query served below the trust
//! threshold), measured alongside the false-alarm rate on clean queries
//! and the end-to-end accuracy under the joint attack.

use crate::attack::{AttackBudget, MarginAttacker};
use faultsim::{AttackCampaign, ErrorRateSchedule};
use hypervector::BinaryHypervector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use robusthd::supervisor::ResilienceSupervisor;
use robusthd::{BatchEngine, TrainedModel};
use std::fmt::Write as _;

/// Configuration of one joint adversarial soak.
#[derive(Debug, Clone, PartialEq)]
pub struct AdvSoakConfig {
    /// Cumulative memory-corruption schedule (one entry per soak step).
    pub schedule: ErrorRateSchedule,
    /// The input-space attacker's budget (radius, candidate width, seed).
    pub budget: AttackBudget,
    /// Fraction of each step's served queries replaced by adversarial
    /// versions (rounded to a count; clamped to `[0, 1]`).
    pub attack_fraction: f64,
    /// The supervisor's trust threshold `T_C` — the detection boundary
    /// the report measures against.
    pub trust_threshold: f64,
}

/// One step of the joint soak.
#[derive(Debug, Clone, PartialEq)]
pub struct AdvSoakStep {
    /// 1-based step.
    pub step: usize,
    /// Memory bits flipped into the model image this step.
    pub memory_bits_flipped: usize,
    /// Cumulative injected memory corruption (fraction of the image).
    pub cumulative_error_rate: f64,
    /// Queries attacked this step.
    pub attacked: usize,
    /// Attacks that flipped the (corrupted) model's prediction before
    /// serving.
    pub attack_successes: usize,
    /// Successful attacks served *below* the trust threshold — the
    /// confidence gate caught them.
    pub detected_successes: usize,
    /// Clean (un-attacked) queries served below the trust threshold —
    /// the gate's false alarms this step.
    pub clean_false_alarms: usize,
    /// Clean queries served this step.
    pub clean: usize,
    /// Mean bits flipped per attacked query.
    pub mean_flips: f64,
    /// Accuracy over the mixed batch against the true labels (unreliable
    /// answers count as wrong).
    pub accuracy: f64,
    /// Supervisor escalation level after the step.
    pub level: usize,
    /// Whether the supervisor escalated this step.
    pub escalated: bool,
    /// Whether the supervisor rolled back to a checkpoint this step.
    pub rolled_back: bool,
}

/// Full trace of a joint adversarial soak.
#[derive(Debug, Clone, PartialEq)]
pub struct AdvSoakReport {
    /// Accuracy of the clean model on the clean traffic.
    pub clean_accuracy: f64,
    /// The trust threshold the detection numbers refer to.
    pub trust_threshold: f64,
    /// Per-step trace.
    pub steps: Vec<AdvSoakStep>,
}

impl AdvSoakReport {
    /// Accuracy at the last step (clean accuracy when no steps ran).
    pub fn final_accuracy(&self) -> f64 {
        self.steps
            .last()
            .map_or(self.clean_accuracy, |s| s.accuracy)
    }

    /// Attack success rate across the whole run (0 when nothing was
    /// attacked).
    pub fn attack_success_rate(&self) -> f64 {
        ratio(
            self.steps.iter().map(|s| s.attack_successes).sum(),
            self.steps.iter().map(|s| s.attacked).sum(),
        )
    }

    /// Fraction of successful attacks the confidence gate served below
    /// the trust threshold (0 when no attack succeeded).
    pub fn detection_rate(&self) -> f64 {
        ratio(
            self.steps.iter().map(|s| s.detected_successes).sum(),
            self.steps.iter().map(|s| s.attack_successes).sum(),
        )
    }

    /// False-alarm rate of the gate on clean queries across the run.
    pub fn false_alarm_rate(&self) -> f64 {
        ratio(
            self.steps.iter().map(|s| s.clean_false_alarms).sum(),
            self.steps.iter().map(|s| s.clean).sum(),
        )
    }

    /// Serializes the trace as one JSON object (hand-written, like
    /// [`robusthd::SoakReport::to_json`], so the format is identical with
    /// or without external serialization crates).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"clean_accuracy\":{},\"final_accuracy\":{},\"trust_threshold\":{},\
             \"attack_success_rate\":{},\"detection_rate\":{},\"false_alarm_rate\":{},\
             \"steps\":[",
            self.clean_accuracy,
            self.final_accuracy(),
            self.trust_threshold,
            self.attack_success_rate(),
            self.detection_rate(),
            self.false_alarm_rate(),
        );
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"step\":{},\"memory_bits_flipped\":{},\"cumulative_error_rate\":{},\
                 \"attacked\":{},\"attack_successes\":{},\"detected_successes\":{},\
                 \"clean_false_alarms\":{},\"clean\":{},\"mean_flips\":{},\
                 \"accuracy\":{},\"level\":{},\"escalated\":{},\"rolled_back\":{}}}",
                s.step,
                s.memory_bits_flipped,
                s.cumulative_error_rate,
                s.attacked,
                s.attack_successes,
                s.detected_successes,
                s.clean_false_alarms,
                s.clean,
                s.mean_flips,
                s.accuracy,
                s.level,
                s.escalated,
                s.rolled_back,
            );
        }
        out.push_str("]}");
        out
    }
}

/// One point of an attack-success-vs-budget curve (clean model, no
/// memory corruption): what a Hamming radius buys the adversary.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetPoint {
    /// The Hamming-ball radius evaluated.
    pub radius: usize,
    /// Queries attacked.
    pub attacks: usize,
    /// Attacks that flipped the prediction.
    pub successes: usize,
    /// Successful attacks whose final confidence fell below the trust
    /// threshold (the gate would have caught them).
    pub detected: usize,
    /// Mean bits actually flipped per attack (≤ radius).
    pub mean_flips: f64,
    /// Mean blackbox queries spent per attack.
    pub mean_queries: f64,
}

/// Sweeps the attacker's Hamming budget over `radii` against a clean
/// model: one [`BudgetPoint`] per radius, each attacking every query.
///
/// # Panics
///
/// Panics if `queries` is empty or `beta` is invalid.
pub fn budget_curve(
    engine: &BatchEngine,
    model: &TrainedModel,
    queries: &[BinaryHypervector],
    beta: f64,
    radii: &[usize],
    budget: &AttackBudget,
    trust_threshold: f64,
) -> Vec<BudgetPoint> {
    assert!(!queries.is_empty(), "budget curve needs queries");
    radii
        .iter()
        .map(|&radius| {
            let attacker = MarginAttacker::new(AttackBudget { radius, ..*budget });
            let attacks = attacker.attack_batch(engine, model, queries, beta);
            let successes = attacks.iter().filter(|a| a.success).count();
            let detected = attacks
                .iter()
                .filter(|a| a.success && a.is_detected(trust_threshold))
                .count();
            let total_flips: usize = attacks.iter().map(|a| a.flipped_bits.len()).sum();
            let total_queries: usize = attacks.iter().map(|a| a.queries_spent).sum();
            BudgetPoint {
                radius,
                attacks: attacks.len(),
                successes,
                detected,
                mean_flips: total_flips as f64 / attacks.len() as f64,
                mean_queries: total_queries as f64 / attacks.len() as f64,
            }
        })
        .collect()
}

/// Runs one joint memory + input attack soak (see the module docs).
///
/// The supervisor must already be calibrated; `queries`/`labels` are the
/// served traffic, re-served (freshly attacked) every step. Input attacks
/// are synthesized against the *current corrupted* model — the adversary
/// observes the same degraded blackbox the defender serves.
///
/// # Panics
///
/// Panics if `queries` and `labels` lengths differ, `queries` is empty,
/// `attack_fraction` is outside `[0, 1]`, or the supervisor was never
/// calibrated.
pub fn run_adv_soak(
    supervisor: &mut ResilienceSupervisor,
    model: &mut TrainedModel,
    queries: &[BinaryHypervector],
    labels: &[usize],
    config: &AdvSoakConfig,
) -> AdvSoakReport {
    assert_eq!(queries.len(), labels.len(), "queries and labels must align");
    assert!(!queries.is_empty(), "soak needs traffic");
    assert!(
        (0.0..=1.0).contains(&config.attack_fraction),
        "attack_fraction must lie in [0, 1]"
    );
    let beta = supervisor.hdc_config().softmax_beta;
    let clean_accuracy = robusthd::metrics::accuracy(model, queries, labels);
    let model_bits = model.num_classes() * model.dim();
    let mut campaign = AttackCampaign::new(config.schedule.clone(), model_bits, config.budget.seed);
    let engine = supervisor.batch_engine().clone();
    let attacker = MarginAttacker::new(config.budget);
    let attacked_per_step =
        hypervector::cast::round_to_usize(config.attack_fraction * queries.len() as f64)
            .min(queries.len());

    let mut steps = Vec::new();
    let mut injected = 0usize;
    let mut step = 0usize;
    loop {
        // Memory attack: advance the campaign over the model image.
        let mut image = model.to_memory_image();
        let Some(memory_bits_flipped) = campaign.advance(image.words_mut()) else {
            break;
        };
        image.mask_tail();
        model.load_memory_image(&image);
        step += 1;
        injected += memory_bits_flipped;

        // Input attack: a seeded per-step subset of the traffic, attacked
        // against the corrupted model the defender is about to serve.
        let mut rng = StdRng::seed_from_u64(
            config
                .budget
                .seed
                .wrapping_add(step as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let mut targets: Vec<usize> = Vec::with_capacity(attacked_per_step);
        let mut chosen = vec![false; queries.len()];
        while targets.len() < attacked_per_step {
            let i = rng.random_range(0..queries.len());
            if !chosen[i] {
                chosen[i] = true;
                targets.push(i);
            }
        }
        targets.sort_unstable();

        let mut mixed: Vec<BinaryHypervector> = queries.to_vec();
        let mut attack_successes = 0usize;
        let mut detected_successes = 0usize;
        let mut total_flips = 0usize;
        for (k, &i) in targets.iter().enumerate() {
            let attack =
                attacker.attack(&engine, model, &queries[i], beta, step * queries.len() + k);
            if attack.success {
                attack_successes += 1;
                // The attack's final confidence is bit-identical to what
                // the serving pass computes for this query (same model
                // state, same engine kernels), so the gate's verdict can
                // be read off the attack itself.
                if attack.is_detected(config.trust_threshold) {
                    detected_successes += 1;
                }
            }
            total_flips += attack.flipped_bits.len();
            mixed[i] = attack.adversarial;
        }

        // Serve the mixed batch through the closed loop; the returned
        // scores give the gate's view of the clean traffic.
        let (report, scores) = supervisor.serve_batch_with_scores(model, &mixed);
        let mut clean_false_alarms = 0usize;
        for (i, score) in scores.iter().enumerate() {
            if !chosen[i] && !score.confidence.is_trusted(config.trust_threshold) {
                clean_false_alarms += 1;
            }
        }
        let correct = report
            .answers
            .iter()
            .zip(labels)
            .filter(|(answer, label)| **answer == Some(**label))
            .count();

        steps.push(AdvSoakStep {
            step,
            memory_bits_flipped,
            cumulative_error_rate: injected as f64 / model_bits as f64,
            attacked: targets.len(),
            attack_successes,
            detected_successes,
            clean_false_alarms,
            clean: queries.len() - targets.len(),
            mean_flips: if targets.is_empty() {
                0.0
            } else {
                total_flips as f64 / targets.len() as f64
            },
            accuracy: correct as f64 / labels.len() as f64,
            level: report.level,
            escalated: report.escalated,
            rolled_back: report.rolled_back,
        });
    }
    AdvSoakReport {
        clean_accuracy,
        trust_threshold: config.trust_threshold,
        steps,
    }
}

fn ratio(numerator: usize, denominator: usize) -> f64 {
    if denominator == 0 {
        0.0
    } else {
        numerator as f64 / denominator as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypervector::random::HypervectorSampler;

    #[test]
    fn budget_curve_success_is_monotone_in_radius() {
        let mut sampler = HypervectorSampler::seed_from(31);
        let classes: Vec<_> = (0..3).map(|_| sampler.binary(1024)).collect();
        let queries: Vec<_> = (0..10)
            .map(|i| sampler.flip_noise(&classes[i % 3], 0.2))
            .collect();
        let model = TrainedModel::from_classes(classes);
        let engine = BatchEngine::from_env();
        let budget = AttackBudget::new(0).with_candidates(16).with_seed(5);
        let curve = budget_curve(&engine, &model, &queries, 64.0, &[0, 32, 512], &budget, 0.5);
        assert_eq!(curve.len(), 3);
        assert_eq!(curve[0].successes, 0, "zero radius flips nothing");
        assert!(curve[2].successes >= curve[1].successes);
        for point in &curve {
            assert!(point.mean_flips <= point.radius as f64);
        }
    }
}
