//! Gradient-free query-space attack synthesis.
//!
//! The attacker model follows adversarial attacks on HDC classifiers
//! (Yang & Ren, arXiv 2006.05594): the adversary holds an encoded query,
//! may flip at most `radius` of its bits (a hard Hamming ball), and
//! observes nothing but the classifier's blackbox output — the per-class
//! softmax probabilities and margin of [`robusthd::Confidence`]. No
//! gradients exist (the model is binary) and none are needed: because
//! every stored bit contributes one Hamming vote, the margin responds
//! almost linearly to single-bit flips, so a greedy coordinate descent on
//! the margin is close to the strongest attack this query model admits.
//!
//! Each search round samples a batch of fresh candidate positions, scores
//! *all* of them in one [`robusthd::BatchEngine`] pass (the serving fast
//! path — the attack is as parallel as the defender), keeps the flip that
//! shrinks the margin most, and stops on label flip, budget exhaustion,
//! or stall. Positions are never revisited, so the output's Hamming
//! distance from the input always equals the number of accepted flips —
//! the metamorphic budget property pinned by `tests/advsim_props.rs`.

use hypervector::BinaryHypervector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use robusthd::{AdvConfig, BatchEngine, TrainedModel};

/// Odd 64-bit multiplier decorrelating per-query search streams from the
/// campaign's base seed (golden-ratio constant, as in SplitMix64).
const SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// The attacker's resources: a hard Hamming-ball radius, the candidate
/// batch width per greedy round, and the base seed.
///
/// # Example
///
/// ```
/// use advsim::AttackBudget;
///
/// let budget = AttackBudget::new(32).with_candidates(16).with_seed(9);
/// assert_eq!((budget.radius, budget.candidates, budget.seed), (32, 16, 9));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackBudget {
    /// Maximum bits the adversary may flip per query (the Hamming-ball
    /// radius — never exceeded, enforced structurally by the search).
    pub radius: usize,
    /// Candidate positions scored per greedy round, in one batched engine
    /// pass.
    pub candidates: usize,
    /// Base seed; per-query streams derive from it and the query index.
    pub seed: u64,
}

impl AttackBudget {
    /// A budget of `radius` bit flips with candidate width and seed taken
    /// from [`AdvConfig::default`].
    pub fn new(radius: usize) -> Self {
        Self::with_adv_config(radius, &AdvConfig::default())
    }

    /// A budget of `radius` bit flips tuned by an explicit [`AdvConfig`]
    /// (use [`AdvConfig::from_env`] to honour `ROBUSTHD_ADV_CANDIDATES`
    /// and `ROBUSTHD_ADV_SEED`).
    pub fn with_adv_config(radius: usize, config: &AdvConfig) -> Self {
        Self {
            radius,
            candidates: config.candidates.max(1),
            seed: config.seed,
        }
    }

    /// Replaces the candidate batch width (clamped to at least 1).
    pub fn with_candidates(mut self, candidates: usize) -> Self {
        self.candidates = candidates.max(1);
        self
    }

    /// Replaces the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The outcome of attacking one query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryAttack {
    /// The perturbed query (within `radius` Hamming of the original).
    pub adversarial: BinaryHypervector,
    /// Accepted flip positions, in acceptance order. Its length *is* the
    /// Hamming distance to the original — positions are never revisited.
    pub flipped_bits: Vec<usize>,
    /// Whether the predicted label changed.
    pub success: bool,
    /// The clean model prediction on the unperturbed query.
    pub original_label: usize,
    /// The prediction on the adversarial query (equals `original_label`
    /// when the attack failed).
    pub adversarial_label: usize,
    /// The runner-up class of the clean prediction — the natural flip
    /// target the greedy descent drifts toward (`None` for single-class
    /// models).
    pub target_label: Option<usize>,
    /// Blackbox queries spent: every candidate scored, plus the baseline.
    pub queries_spent: usize,
    /// Raw similarity margin of the clean prediction.
    pub margin_before: f64,
    /// Raw similarity margin of the final adversarial prediction.
    pub margin_after: f64,
    /// Softmax confidence of the final adversarial prediction — what the
    /// supervisor's trust gate sees.
    pub confidence_after: f64,
}

impl QueryAttack {
    /// Whether the supervisor's confidence gate at threshold `t_c` would
    /// refuse to trust the adversarial prediction (the detection event the
    /// soak harness counts).
    pub fn is_detected(&self, t_c: f64) -> bool {
        self.confidence_after < t_c
    }
}

/// Greedy margin-guided bit-flip attacker (see the module docs).
///
/// Deterministic: for a fixed budget, the attack on query index `i` is a
/// pure function of `(model, query, beta, i)` — candidate scoring goes
/// through the bit-identical batch engine, candidate positions come from
/// a per-query seeded stream, and ties break toward the lowest position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarginAttacker {
    budget: AttackBudget,
}

impl MarginAttacker {
    /// Creates an attacker with the given budget.
    pub fn new(budget: AttackBudget) -> Self {
        Self { budget }
    }

    /// The attacker's budget.
    pub fn budget(&self) -> &AttackBudget {
        &self.budget
    }

    /// Attacks one query: greedy margin descent inside the Hamming ball.
    ///
    /// `index` is the query's position in its campaign, decorrelating the
    /// per-query search streams; `beta` is the confidence softmax inverse
    /// temperature (use the model's `HdcConfig::softmax_beta`).
    ///
    /// # Panics
    ///
    /// Panics if the query dimension is zero or differs from the model's,
    /// or `beta` is not positive and finite.
    pub fn attack(
        &self,
        engine: &BatchEngine,
        model: &TrainedModel,
        query: &BinaryHypervector,
        beta: f64,
        index: usize,
    ) -> QueryAttack {
        let dim = query.dim();
        assert!(dim > 0, "cannot attack a zero-dimensional query");
        // Score the baseline through the engine so the label carries
        // `TrainedModel::predict`'s tie-break (lowest label), exactly as
        // the serving path will see it.
        let Some(baseline) = engine
            .evaluate_batch(model, std::slice::from_ref(query), beta)
            .pop()
        else {
            unreachable!("one query in, one score out");
        };
        let original_label = baseline.predicted;
        let target_label = baseline.confidence.runner_up();
        let margin_before = baseline.confidence.margin;

        let mut rng =
            StdRng::seed_from_u64(self.budget.seed ^ (index as u64).wrapping_mul(SEED_STRIDE));
        let mut adversarial = query.clone();
        let mut flipped_bits: Vec<usize> = Vec::new();
        let mut touched = vec![false; dim];
        let mut predicted = baseline.predicted;
        let mut current = baseline.confidence;
        let mut queries_spent = 1usize; // the baseline observation

        while flipped_bits.len() < self.budget.radius && predicted == original_label {
            let fresh = dim - flipped_bits.len();
            let width = self.budget.candidates.min(fresh);
            if width == 0 {
                break;
            }
            // Sample `width` distinct untouched positions, then sort them so
            // the strict-improvement fold below breaks ties toward the
            // lowest position — the search stays order-deterministic.
            let mut positions = Vec::with_capacity(width);
            let mut staged = vec![false; dim];
            while positions.len() < width {
                let pos = rng.random_range(0..dim);
                if !touched[pos] && !staged[pos] {
                    staged[pos] = true;
                    positions.push(pos);
                }
            }
            positions.sort_unstable();

            let candidates: Vec<BinaryHypervector> = positions
                .iter()
                .map(|&pos| {
                    let mut cand = adversarial.clone();
                    cand.flip(pos);
                    cand
                })
                .collect();
            let scores = engine.evaluate_batch(model, &candidates, beta);
            queries_spent += scores.len();

            let current_objective = attack_objective(predicted, current.margin, original_label);
            let mut best: Option<(usize, f64)> = None;
            for (i, score) in scores.iter().enumerate() {
                let objective =
                    attack_objective(score.predicted, score.confidence.margin, original_label);
                let improves = match best {
                    None => objective < current_objective,
                    Some((_, so_far)) => objective < so_far,
                };
                if improves {
                    best = Some((i, objective));
                }
            }
            let Some((chosen, _)) = best else {
                break; // stalled: no candidate strictly shrinks the margin
            };
            let pos = positions[chosen];
            adversarial.flip(pos);
            touched[pos] = true;
            flipped_bits.push(pos);
            predicted = scores[chosen].predicted;
            current = scores[chosen].confidence.clone();
        }

        let success = predicted != original_label;
        QueryAttack {
            adversarial,
            flipped_bits,
            success,
            original_label,
            adversarial_label: predicted,
            target_label,
            queries_spent,
            margin_before,
            margin_after: current.margin,
            confidence_after: current.confidence,
        }
    }

    /// Attacks every query in a batch, threading the query index into each
    /// per-query seed stream. Results are in query order.
    pub fn attack_batch(
        &self,
        engine: &BatchEngine,
        model: &TrainedModel,
        queries: &[BinaryHypervector],
        beta: f64,
    ) -> Vec<QueryAttack> {
        queries
            .iter()
            .enumerate()
            .map(|(i, q)| self.attack(engine, model, q, beta, i))
            .collect()
    }
}

/// The quantity the greedy descent minimizes: the signed margin — positive
/// while the original label still wins (shrink it), negative once the
/// label flipped (deepen the flip). Strictly decreasing this can only move
/// the query toward, then across, the decision boundary.
fn attack_objective(predicted: usize, margin: f64, original_label: usize) -> f64 {
    if predicted == original_label {
        margin
    } else {
        -margin
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypervector::random::HypervectorSampler;

    fn fixture(dim: usize) -> (TrainedModel, Vec<BinaryHypervector>) {
        let mut sampler = HypervectorSampler::seed_from(41);
        let classes: Vec<_> = (0..4).map(|_| sampler.binary(dim)).collect();
        let queries: Vec<_> = (0..12)
            .map(|i| sampler.flip_noise(&classes[i % 4], 0.25))
            .collect();
        (TrainedModel::from_classes(classes), queries)
    }

    #[test]
    fn attack_never_exceeds_budget_and_distance_equals_flips() {
        let (model, queries) = fixture(1024);
        let engine = BatchEngine::from_env();
        let attacker = MarginAttacker::new(AttackBudget::new(24).with_candidates(16).with_seed(3));
        for (i, q) in queries.iter().enumerate() {
            let attack = attacker.attack(&engine, &model, q, 64.0, i);
            assert!(attack.flipped_bits.len() <= 24);
            assert_eq!(
                q.hamming_distance(&attack.adversarial),
                attack.flipped_bits.len()
            );
        }
    }

    #[test]
    fn attack_is_deterministic_per_seed_and_index() {
        let (model, queries) = fixture(512);
        let engine = BatchEngine::from_env();
        let attacker = MarginAttacker::new(AttackBudget::new(16).with_candidates(8).with_seed(5));
        let a = attacker.attack(&engine, &model, &queries[0], 64.0, 0);
        let b = attacker.attack(&engine, &model, &queries[0], 64.0, 0);
        assert_eq!(a, b);
        let c = attacker.attack(&engine, &model, &queries[0], 64.0, 1);
        assert_ne!(a.flipped_bits, c.flipped_bits, "index decorrelates streams");
    }

    #[test]
    fn successful_attack_changes_the_model_prediction() {
        let (model, queries) = fixture(512);
        let engine = BatchEngine::from_env();
        // A huge budget on a small model flips essentially every query.
        let attacker = MarginAttacker::new(AttackBudget::new(256).with_candidates(32).with_seed(7));
        let attacks = attacker.attack_batch(&engine, &model, &queries, 64.0);
        let successes = attacks.iter().filter(|a| a.success).count();
        assert!(successes * 2 > attacks.len(), "{successes}/12 succeeded");
        for attack in attacks.iter().filter(|a| a.success) {
            assert_eq!(model.predict(&attack.adversarial), attack.adversarial_label);
            assert_ne!(attack.adversarial_label, attack.original_label);
        }
    }

    #[test]
    fn zero_radius_spends_no_flips() {
        let (model, queries) = fixture(256);
        let engine = BatchEngine::from_env();
        let attacker = MarginAttacker::new(AttackBudget::new(0).with_seed(1));
        let attack = attacker.attack(&engine, &model, &queries[0], 64.0, 0);
        assert!(attack.flipped_bits.is_empty());
        assert!(!attack.success);
        assert_eq!(attack.adversarial, queries[0]);
        assert_eq!(attack.queries_spent, 1);
    }

    #[test]
    fn single_class_model_cannot_be_flipped() {
        let mut sampler = HypervectorSampler::seed_from(9);
        let model = TrainedModel::from_classes(vec![sampler.binary(256)]);
        let query = sampler.binary(256);
        let engine = BatchEngine::from_env();
        let attacker = MarginAttacker::new(AttackBudget::new(64).with_seed(2));
        let attack = attacker.attack(&engine, &model, &query, 64.0, 0);
        assert!(!attack.success);
        assert_eq!(attack.target_label, None);
        assert!(attack.flipped_bits.is_empty(), "zero margin cannot shrink");
    }

    #[test]
    fn detection_gate_matches_confidence_threshold() {
        let (model, queries) = fixture(512);
        let engine = BatchEngine::from_env();
        let attacker = MarginAttacker::new(AttackBudget::new(64).with_seed(11));
        let attack = attacker.attack(&engine, &model, &queries[2], 64.0, 2);
        assert!(attack.is_detected(attack.confidence_after + 1e-9));
        assert!(!attack.is_detected(attack.confidence_after - 1e-9));
    }
}
