//! Persisted, replayable disagreement corpora.
//!
//! A disagreement found by the [`crate::DisagreementHunter`] is only
//! useful if it can be *replayed* — re-run later (after a fix, on another
//! machine, in CI) and produce exactly the same verdicts. That demands
//! exact feature values: a decimal round-trip that perturbs one ULP can
//! move a feature across a quantization-level boundary and silently
//! change the encoded hypervector. The `ADVC1` text format therefore
//! stores every feature as the hexadecimal of its [`f64::to_bits`], and
//! [`DisagreementCorpus::replay`] checks the round trip all the way down:
//! fast and reference encoders must produce identical hypervectors, the
//! batched engine must match sequential scoring to the bit
//! ([`f64::to_bits`] on confidence and margin), and every variant must
//! reproduce its recorded verdict.

use robusthd::encoding::Encoder;
use robusthd::{BatchEngine, Confidence, TrainedModel};
use std::error::Error;
use std::fmt;

/// Magic first line of the corpus text format.
const MAGIC: &str = "ADVC1";

/// One input on which the model variants disagreed.
#[derive(Debug, Clone, PartialEq)]
pub struct DisagreementCase {
    /// Index of the seed row the hunt started from.
    pub seed_index: usize,
    /// Hill-climb round that produced the disagreement (0 = the seed row
    /// itself already disagreed).
    pub round: usize,
    /// The raw feature row (exact `f64` values).
    pub row: Vec<f64>,
    /// Predicted label per variant, in corpus variant order. Not all
    /// equal — that is what makes it a disagreement.
    pub verdicts: Vec<usize>,
}

/// A set of disagreement cases plus the variant names they refer to.
///
/// # Example
///
/// ```
/// use advsim::DisagreementCorpus;
///
/// let corpus = DisagreementCorpus::new(vec!["one-shot".into(), "retrained".into()]);
/// let text = corpus.to_text();
/// let parsed = DisagreementCorpus::from_text(&text).expect("round trip");
/// assert_eq!(corpus, parsed);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DisagreementCorpus {
    /// Names of the model variants, in verdict order. Names must be free
    /// of whitespace (they are space-separated in the text format).
    pub variants: Vec<String>,
    /// The recorded disagreements.
    pub cases: Vec<DisagreementCase>,
}

/// Error parsing a corpus from its text form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusError {
    message: String,
}

impl CorpusError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed disagreement corpus: {}", self.message)
    }
}

impl Error for CorpusError {}

impl DisagreementCorpus {
    /// An empty corpus over the given variant names.
    ///
    /// # Panics
    ///
    /// Panics if any variant name contains whitespace or is empty.
    pub fn new(variants: Vec<String>) -> Self {
        for name in &variants {
            assert!(
                !name.is_empty() && !name.chars().any(char::is_whitespace),
                "variant name {name:?} must be non-empty and whitespace-free"
            );
        }
        Self {
            variants,
            cases: Vec::new(),
        }
    }

    /// Serializes to the `ADVC1` text format (exact `f64` bits, one case
    /// per 3-line record). Stable across platforms and rust versions.
    pub fn to_text(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        out.push_str(MAGIC);
        out.push('\n');
        out.push_str("variants");
        for name in &self.variants {
            out.push(' ');
            out.push_str(name);
        }
        out.push('\n');
        for case in &self.cases {
            let _ = writeln!(out, "case {} {}", case.seed_index, case.round);
            out.push_str("row");
            for &value in &case.row {
                let _ = write!(out, " {:016x}", value.to_bits());
            }
            out.push('\n');
            out.push_str("verdicts");
            for &v in &case.verdicts {
                let _ = write!(out, " {v}");
            }
            out.push('\n');
        }
        out
    }

    /// Parses the `ADVC1` text format.
    ///
    /// # Errors
    ///
    /// Returns [`CorpusError`] on a missing magic line, a malformed
    /// record, or a case whose verdict count differs from the variant
    /// count.
    pub fn from_text(text: &str) -> Result<Self, CorpusError> {
        let mut lines = text.lines();
        match lines.next() {
            Some(MAGIC) => {}
            other => {
                return Err(CorpusError::new(format!(
                    "expected magic line {MAGIC:?}, found {other:?}"
                )))
            }
        }
        let variants: Vec<String> = match lines.next() {
            Some(line) if line.starts_with("variants") => {
                line.split_whitespace().skip(1).map(str::to_owned).collect()
            }
            other => {
                return Err(CorpusError::new(format!(
                    "expected variants line, found {other:?}"
                )))
            }
        };
        let mut corpus = Self {
            variants,
            cases: Vec::new(),
        };
        while let Some(case_line) = lines.next() {
            if case_line.trim().is_empty() {
                continue;
            }
            let mut head = case_line.split_whitespace();
            if head.next() != Some("case") {
                return Err(CorpusError::new(format!(
                    "expected case line, found {case_line:?}"
                )));
            }
            let seed_index = parse_usize(head.next(), "case seed index")?;
            let round = parse_usize(head.next(), "case round")?;

            let row_line = lines
                .next()
                .ok_or_else(|| CorpusError::new("truncated record: missing row line"))?;
            let mut row_parts = row_line.split_whitespace();
            if row_parts.next() != Some("row") {
                return Err(CorpusError::new(format!(
                    "expected row line, found {row_line:?}"
                )));
            }
            let row: Vec<f64> = row_parts
                .map(|hex| {
                    u64::from_str_radix(hex, 16)
                        .map(f64::from_bits)
                        .map_err(|_| CorpusError::new(format!("bad f64 bits {hex:?}")))
                })
                .collect::<Result<_, _>>()?;

            let verdict_line = lines
                .next()
                .ok_or_else(|| CorpusError::new("truncated record: missing verdicts line"))?;
            let mut verdict_parts = verdict_line.split_whitespace();
            if verdict_parts.next() != Some("verdicts") {
                return Err(CorpusError::new(format!(
                    "expected verdicts line, found {verdict_line:?}"
                )));
            }
            let verdicts: Vec<usize> = verdict_parts
                .map(|v| parse_usize(Some(v), "verdict"))
                .collect::<Result<_, _>>()?;
            if verdicts.len() != corpus.variants.len() {
                return Err(CorpusError::new(format!(
                    "case has {} verdicts for {} variants",
                    verdicts.len(),
                    corpus.variants.len()
                )));
            }
            corpus.cases.push(DisagreementCase {
                seed_index,
                round,
                row,
                verdicts,
            });
        }
        Ok(corpus)
    }

    /// Replays every case against live models and both encoder paths,
    /// counting exactness violations (see the module docs). `variants`
    /// must match the corpus's recorded variant order; `fast` and
    /// `reference` must be the same encoder pinned to its two execution
    /// paths.
    ///
    /// # Panics
    ///
    /// Panics if `variants` names differ from the corpus's.
    pub fn replay<E: Encoder + Sync + ?Sized, F: Encoder + Sync + ?Sized>(
        &self,
        engine: &BatchEngine,
        fast: &E,
        reference: &F,
        variants: &[(&str, &TrainedModel)],
        beta: f64,
    ) -> ReplayReport {
        assert_eq!(
            variants.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
            self.variants.iter().map(String::as_str).collect::<Vec<_>>(),
            "replay variants must match the corpus's"
        );
        let mut report = ReplayReport {
            cases: self.cases.len(),
            encode_mismatches: 0,
            score_mismatches: 0,
            verdict_mismatches: 0,
        };
        for case in &self.cases {
            let row: &[f64] = &case.row;
            let fast_hv = engine.encode_batch(fast, &[row]).remove(0);
            let reference_hv = reference.encode(row);
            if fast_hv != reference_hv {
                report.encode_mismatches += 1;
            }
            for ((_, model), &recorded) in variants.iter().zip(&case.verdicts) {
                let batched = engine
                    .evaluate_batch(model, std::slice::from_ref(&fast_hv), beta)
                    .remove(0);
                let sequential = Confidence::evaluate(model, &fast_hv, beta);
                // Compare like for like: `BatchScore::predicted` breaks
                // similarity ties toward the lowest label while
                // `Confidence::label` keeps the last maximum, so the
                // bit-identity check pins the batched confidence against
                // the sequential one, not across the two tie-break rules.
                let bit_identical = batched.confidence.confidence.to_bits()
                    == sequential.confidence.to_bits()
                    && batched.confidence.margin.to_bits() == sequential.margin.to_bits()
                    && batched.confidence.label == sequential.label;
                if !bit_identical {
                    report.score_mismatches += 1;
                }
                if batched.predicted != recorded {
                    report.verdict_mismatches += 1;
                }
            }
        }
        report
    }
}

/// Outcome of a corpus replay: how many cases were checked and how many
/// exactness violations of each kind were found. A clean replay has all
/// three mismatch counters at zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayReport {
    /// Cases replayed.
    pub cases: usize,
    /// Cases where the fast and reference encoders diverged.
    pub encode_mismatches: usize,
    /// (case, variant) pairs where batched and sequential scoring were
    /// not bit-identical.
    pub score_mismatches: usize,
    /// (case, variant) pairs whose live verdict differed from the
    /// recorded one.
    pub verdict_mismatches: usize,
}

impl ReplayReport {
    /// Whether the replay reproduced everything exactly.
    pub fn is_clean(&self) -> bool {
        self.encode_mismatches == 0 && self.score_mismatches == 0 && self.verdict_mismatches == 0
    }
}

fn parse_usize(token: Option<&str>, what: &str) -> Result<usize, CorpusError> {
    token
        .and_then(|t| t.parse::<usize>().ok())
        .ok_or_else(|| CorpusError::new(format!("bad or missing {what}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_corpus() -> DisagreementCorpus {
        let mut corpus = DisagreementCorpus::new(vec!["one-shot".into(), "retrained".into()]);
        corpus.cases.push(DisagreementCase {
            seed_index: 4,
            round: 2,
            row: vec![0.1, 0.2 + 1e-17, f64::MIN_POSITIVE, 1.0],
            verdicts: vec![1, 0],
        });
        corpus.cases.push(DisagreementCase {
            seed_index: 9,
            round: 0,
            row: vec![0.0, 0.5, 0.999999999999, 0.25],
            verdicts: vec![0, 2],
        });
        corpus
    }

    #[test]
    fn text_round_trip_is_bit_exact() {
        let corpus = sample_corpus();
        let parsed = DisagreementCorpus::from_text(&corpus.to_text()).expect("parses");
        assert_eq!(parsed, corpus);
        for (a, b) in parsed.cases[0].row.iter().zip(&corpus.cases[0].row) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn empty_corpus_round_trips() {
        let corpus = DisagreementCorpus::new(vec!["fast".into(), "reference".into()]);
        let parsed = DisagreementCorpus::from_text(&corpus.to_text()).expect("parses");
        assert!(parsed.cases.is_empty());
        assert_eq!(parsed.variants, corpus.variants);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = DisagreementCorpus::from_text("NOPE\nvariants a b\n").unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn verdict_count_mismatch_rejected() {
        let text = "ADVC1\nvariants a b\ncase 0 0\nrow 3fe0000000000000\nverdicts 1\n";
        let err = DisagreementCorpus::from_text(text).unwrap_err();
        assert!(err.to_string().contains("verdicts"));
    }

    #[test]
    fn truncated_record_rejected() {
        let text = "ADVC1\nvariants a b\ncase 0 0\n";
        assert!(DisagreementCorpus::from_text(text).is_err());
    }

    #[test]
    #[should_panic(expected = "whitespace-free")]
    fn whitespace_variant_name_panics() {
        DisagreementCorpus::new(vec!["one shot".into()]);
    }
}
