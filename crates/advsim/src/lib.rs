//! Adversarial scenario engine: input-space attack synthesis and
//! differential disagreement hunting for RobustHD classifiers.
//!
//! Every fault model in [`faultsim`] corrupts *stored model memory* — the
//! threat the paper evaluates. This crate attacks from the direction the
//! paper never measured: the *queries*. Two engines, both strictly
//! blackbox (they observe only per-class similarity margins through
//! [`robusthd::Confidence`], never model internals):
//!
//! * [`MarginAttacker`] — gradient-free query-space attack synthesis in
//!   the style of adversarial attacks on HDC classifiers (Yang & Ren,
//!   arXiv 2006.05594): a greedy bit-flip search inside a hard Hamming
//!   ball, guided only by the confidence margin, with every candidate
//!   round scored in one batched [`robusthd::BatchEngine`] pass so the
//!   search itself runs on the serving fast path.
//! * [`DisagreementHunter`] — HDXplore-style differential testing
//!   (arXiv 2105.12770): a seeded mutator evolves raw feature rows to
//!   minimize the weakest margin across several model *variants* (one-shot
//!   vs retrained, clean vs attacked) until they disagree, producing a
//!   persisted, replayable [`DisagreementCorpus`].
//!
//! The [`soak`] module closes the loop: [`run_adv_soak`] interleaves
//! memory corruption ([`faultsim::AttackCampaign`]) with input-space
//! attacks and measures whether the resilience supervisor's confidence
//! gate ([`robusthd::Confidence::is_trusted`]) detects adversarial
//! queries the way its health monitor detects bit-rot.
//!
//! Everything is deterministic per seed: for a fixed [`AttackBudget`] /
//! [`HuntBudget`] the whole campaign is a pure function of its inputs, at
//! any engine thread count (pinned by `tests/advsim_props.rs` and
//! `tests/advsim_differential.rs`).
//!
//! # Example
//!
//! ```
//! use advsim::{AttackBudget, MarginAttacker};
//! use hypervector::random::HypervectorSampler;
//! use robusthd::{BatchEngine, TrainedModel};
//!
//! let mut sampler = HypervectorSampler::seed_from(5);
//! let classes: Vec<_> = (0..3).map(|_| sampler.binary(2048)).collect();
//! let query = sampler.flip_noise(&classes[0], 0.2);
//! let model = TrainedModel::from_classes(classes);
//! let engine = BatchEngine::from_env();
//!
//! let attacker = MarginAttacker::new(AttackBudget::new(64).with_seed(7));
//! let attack = attacker.attack(&engine, &model, &query, 64.0, 0);
//! assert!(attack.flipped_bits.len() <= 64); // hard Hamming budget
//! assert_eq!(query.hamming_distance(&attack.adversarial), attack.flipped_bits.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod attack;
pub mod corpus;
pub mod hunter;
pub mod soak;

pub use attack::{AttackBudget, MarginAttacker, QueryAttack};
pub use corpus::{CorpusError, DisagreementCase, DisagreementCorpus, ReplayReport};
pub use hunter::{DisagreementHunter, HuntBudget};
pub use soak::{
    budget_curve, run_adv_soak, AdvSoakConfig, AdvSoakReport, AdvSoakStep, BudgetPoint,
};
