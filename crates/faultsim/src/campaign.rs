//! Multi-step attack campaigns: cumulative corruption over time.
//!
//! The paper's runtime story is not a single attack but *accumulation*:
//! every interval, a few more cells flip, and without recovery the damage
//! compounds until predictions break (§4: "overcome the noise accumulation").
//! An [`AttackCampaign`] drives that process: it owns the set of
//! already-corrupted positions and, at each step, flips enough *fresh*
//! positions to reach the next cumulative error rate exactly.

use crate::sampling::distinct_indices;
use crate::schedule::ErrorRateSchedule;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;
use std::fmt;

/// Stateful attacker walking an [`ErrorRateSchedule`] over a fixed image
/// size.
///
/// # Example
///
/// ```
/// use faultsim::{AttackCampaign, ErrorRateSchedule};
///
/// let schedule = ErrorRateSchedule::from_cumulative(vec![0.02, 0.06, 0.10]);
/// let mut campaign = AttackCampaign::new(schedule, 10_000, 1);
/// let mut image = vec![0u64; 10_000 / 64 + 1];
///
/// let mut cumulative = 0;
/// while let Some(flipped) = campaign.advance(&mut image) {
///     cumulative += flipped;
/// }
/// assert_eq!(cumulative, 1_000); // exactly 10% of the image, in 3 steps
/// ```
pub struct AttackCampaign {
    schedule: ErrorRateSchedule,
    bit_len: usize,
    corrupted: HashSet<usize>,
    step: usize,
    rng: StdRng,
}

impl AttackCampaign {
    /// Creates a campaign over `bit_len` stored bits.
    ///
    /// # Panics
    ///
    /// Panics if `bit_len` is zero.
    pub fn new(schedule: ErrorRateSchedule, bit_len: usize, seed: u64) -> Self {
        assert!(bit_len > 0, "campaign needs a non-empty image");
        Self {
            schedule,
            bit_len,
            corrupted: HashSet::new(),
            step: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Number of steps executed so far.
    pub fn step(&self) -> usize {
        self.step
    }

    /// Total steps in the schedule.
    pub fn len(&self) -> usize {
        self.schedule.len()
    }

    /// Returns `true` if the schedule has no steps.
    pub fn is_empty(&self) -> bool {
        self.schedule.is_empty()
    }

    /// Positions corrupted so far (unordered).
    pub fn corrupted_positions(&self) -> impl Iterator<Item = usize> + '_ {
        self.corrupted.iter().copied()
    }

    /// Cumulative fraction of the image corrupted so far.
    pub fn cumulative_rate(&self) -> f64 {
        self.corrupted.len() as f64 / self.bit_len as f64
    }

    /// Executes the next step: flips fresh positions in `image` until the
    /// cumulative corruption matches the schedule. Returns the number of
    /// bits flipped this step, or `None` when the schedule is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if the image is too small for the campaign's `bit_len`.
    pub fn advance(&mut self, image: &mut [u64]) -> Option<usize> {
        assert!(
            self.bit_len <= image.len() * 64,
            "image too small for campaign"
        );
        let target_rate = *self.schedule.cumulative_rates().get(self.step)?;
        self.step += 1;
        let target = (target_rate * self.bit_len as f64).round() as usize;
        let needed = target.saturating_sub(self.corrupted.len());
        let mut flipped = 0usize;
        // Rejection-sample fresh positions; the schedule caps at 100% so
        // this terminates.
        while flipped < needed && self.corrupted.len() < self.bit_len {
            for pos in distinct_indices(&mut self.rng, self.bit_len, needed - flipped) {
                if self.corrupted.insert(pos) {
                    image[pos / 64] ^= 1 << (pos % 64);
                    flipped += 1;
                }
            }
        }
        Some(flipped)
    }

    /// Executes the next step as a *targeted* attack: fresh positions are
    /// chosen MSB-first over `field_bits`-wide fields (see
    /// [`crate::Attacker::targeted_flips`]) until the cumulative corruption
    /// matches the schedule. Returns the number of bits flipped this step,
    /// or `None` when the schedule is exhausted.
    ///
    /// Shares the corrupted-position set with [`AttackCampaign::advance`],
    /// so mixed campaigns (random steps interleaved with targeted bursts)
    /// still never revisit a flipped position. Bits in a partial trailing
    /// field (when `field_bits` does not divide `bit_len`) are never
    /// targeted, so the reachable ceiling is `fields × field_bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `field_bits` is zero or the image is too small for the
    /// campaign's `bit_len`.
    pub fn advance_targeted(&mut self, image: &mut [u64], field_bits: usize) -> Option<usize> {
        assert!(field_bits > 0, "field_bits must be positive");
        assert!(
            self.bit_len <= image.len() * 64,
            "image too small for campaign"
        );
        let target_rate = *self.schedule.cumulative_rates().get(self.step)?;
        self.step += 1;
        let target = (target_rate * self.bit_len as f64).round() as usize;
        let mut needed = target.saturating_sub(self.corrupted.len());
        let fields = self.bit_len / field_bits;
        let mut flipped = 0usize;
        // Spend the budget from the MSB (bit field_bits-1) downwards,
        // skipping positions corrupted by earlier steps.
        for sig in (0..field_bits).rev() {
            if needed == 0 {
                break;
            }
            let fresh: Vec<usize> = (0..fields)
                .map(|field| field * field_bits + sig)
                .filter(|pos| !self.corrupted.contains(pos))
                .collect();
            let take = needed.min(fresh.len());
            for idx in distinct_indices(&mut self.rng, fresh.len(), take) {
                let pos = fresh[idx];
                self.corrupted.insert(pos);
                image[pos / 64] ^= 1 << (pos % 64);
                flipped += 1;
            }
            needed -= take;
        }
        Some(flipped)
    }
}

impl fmt::Debug for AttackCampaign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AttackCampaign")
            .field("bit_len", &self.bit_len)
            .field("step", &self.step)
            .field("corrupted", &self.corrupted.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ones(image: &[u64]) -> usize {
        image.iter().map(|w| w.count_ones() as usize).sum()
    }

    #[test]
    fn campaign_reaches_each_cumulative_rate_exactly() {
        let schedule = ErrorRateSchedule::from_cumulative(vec![0.01, 0.05, 0.10]);
        let mut campaign = AttackCampaign::new(schedule, 6400, 3);
        let mut image = vec![0u64; 100];
        let expected = [64usize, 320, 640];
        for (i, &total) in expected.iter().enumerate() {
            campaign.advance(&mut image).expect("step exists");
            assert_eq!(ones(&image), total, "after step {i}");
            assert!((campaign.cumulative_rate() - total as f64 / 6400.0).abs() < 1e-12);
        }
        assert!(campaign.advance(&mut image).is_none());
    }

    #[test]
    fn steps_never_reflip_corrupted_positions() {
        // If a step re-flipped an old position, total ones would drop.
        let schedule = ErrorRateSchedule::linear(0.0, 0.5, 10);
        let mut campaign = AttackCampaign::new(schedule, 1280, 7);
        let mut image = vec![0u64; 20];
        let mut prev = 0;
        while campaign.advance(&mut image).is_some() {
            let now = ones(&image);
            assert!(now >= prev, "ones decreased: {prev} -> {now}");
            prev = now;
        }
        assert_eq!(prev, 640);
    }

    #[test]
    fn campaign_is_deterministic() {
        let run = || {
            let schedule = ErrorRateSchedule::linear(0.0, 0.2, 4);
            let mut campaign = AttackCampaign::new(schedule, 640, 11);
            let mut image = vec![0u64; 10];
            while campaign.advance(&mut image).is_some() {}
            image
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_schedule_is_immediately_exhausted() {
        let schedule = ErrorRateSchedule::from_cumulative(vec![]);
        let mut campaign = AttackCampaign::new(schedule, 64, 0);
        assert!(campaign.is_empty());
        assert!(campaign.advance(&mut [0u64; 1]).is_none());
    }

    #[test]
    fn full_corruption_is_reachable() {
        let schedule = ErrorRateSchedule::from_cumulative(vec![1.0]);
        let mut campaign = AttackCampaign::new(schedule, 128, 5);
        let mut image = vec![0u64; 2];
        campaign.advance(&mut image);
        assert_eq!(ones(&image), 128);
    }

    #[test]
    #[should_panic(expected = "non-empty image")]
    fn zero_bits_panics() {
        AttackCampaign::new(ErrorRateSchedule::linear(0.0, 0.1, 1), 0, 0);
    }

    #[test]
    fn targeted_campaign_hits_msbs_first() {
        // 100 fields of 8 bits; cumulative rates keep the budget under 100
        // flips, so every flipped bit must be a field MSB (bit 7).
        let schedule = ErrorRateSchedule::from_cumulative(vec![0.05, 0.10]);
        let mut campaign = AttackCampaign::new(schedule, 800, 21);
        let mut image = vec![0u64; 13];
        while campaign.advance_targeted(&mut image, 8).is_some() {}
        assert_eq!(ones(&image), 80);
        for pos in campaign.corrupted_positions() {
            assert_eq!(pos % 8, 7, "non-MSB position {pos} flipped");
        }
    }

    #[test]
    fn targeted_campaign_descends_after_msbs_exhausted() {
        // 16 fields of 4 bits, cumulative 50% of 64 bits = 32 flips:
        // all 16 MSBs plus all 16 second bits, nothing deeper.
        let schedule = ErrorRateSchedule::from_cumulative(vec![0.5]);
        let mut campaign = AttackCampaign::new(schedule, 64, 22);
        let mut image = vec![0u64; 1];
        campaign
            .advance_targeted(&mut image, 4)
            .expect("step exists");
        assert_eq!(ones(&image), 32);
        for field in 0..16 {
            assert!(get(&image, field * 4 + 3), "MSB of field {field} missed");
            assert!(get(&image, field * 4 + 2), "bit 2 of field {field} missed");
            assert!(!get(&image, field * 4 + 1));
            assert!(!get(&image, field * 4));
        }
    }

    #[test]
    fn targeted_steps_never_reflip_corrupted_positions() {
        let schedule = ErrorRateSchedule::linear(0.0, 0.6, 12);
        let mut campaign = AttackCampaign::new(schedule, 1024, 23);
        let mut image = vec![0u64; 16];
        let mut prev = 0;
        while campaign.advance_targeted(&mut image, 8).is_some() {
            let now = ones(&image);
            assert!(now >= prev, "ones decreased: {prev} -> {now}");
            assert_eq!(now, campaign.corrupted_positions().count());
            prev = now;
        }
        assert_eq!(prev, 614);
    }

    #[test]
    fn mixed_random_and_targeted_steps_share_the_corruption_set() {
        // Alternate random and targeted steps; the XOR image must stay in
        // lockstep with the corrupted set (a revisit would clear a bit and
        // break the equality).
        let schedule = ErrorRateSchedule::linear(0.0, 0.4, 8);
        let mut campaign = AttackCampaign::new(schedule, 640, 24);
        let mut image = vec![0u64; 10];
        let mut step = 0;
        loop {
            let advanced = if step % 2 == 0 {
                campaign.advance(&mut image)
            } else {
                campaign.advance_targeted(&mut image, 64)
            };
            if advanced.is_none() {
                break;
            }
            assert_eq!(ones(&image), campaign.corrupted_positions().count());
            step += 1;
        }
        assert_eq!(ones(&image), 256);
    }

    #[test]
    fn targeted_campaign_is_deterministic() {
        let run = || {
            let schedule = ErrorRateSchedule::linear(0.0, 0.3, 5);
            let mut campaign = AttackCampaign::new(schedule, 512, 25);
            let mut image = vec![0u64; 8];
            while campaign.advance_targeted(&mut image, 8).is_some() {}
            image
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "field_bits must be positive")]
    fn targeted_zero_field_bits_panics() {
        let schedule = ErrorRateSchedule::from_cumulative(vec![0.1]);
        AttackCampaign::new(schedule, 64, 0).advance_targeted(&mut [0u64; 1], 0);
    }

    fn get(image: &[u64], pos: usize) -> bool {
        (image[pos / 64] >> (pos % 64)) & 1 == 1
    }
}
