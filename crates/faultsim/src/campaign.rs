//! Multi-step attack campaigns: cumulative corruption over time.
//!
//! The paper's runtime story is not a single attack but *accumulation*:
//! every interval, a few more cells flip, and without recovery the damage
//! compounds until predictions break (§4: "overcome the noise accumulation").
//! An [`AttackCampaign`] drives that process: it owns the set of
//! already-corrupted positions and, at each step, flips enough *fresh*
//! positions to reach the next cumulative error rate exactly.

use crate::sampling::distinct_indices;
use crate::schedule::ErrorRateSchedule;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;
use std::fmt;

/// Stateful attacker walking an [`ErrorRateSchedule`] over a fixed image
/// size.
///
/// # Example
///
/// ```
/// use faultsim::{AttackCampaign, ErrorRateSchedule};
///
/// let schedule = ErrorRateSchedule::from_cumulative(vec![0.02, 0.06, 0.10]);
/// let mut campaign = AttackCampaign::new(schedule, 10_000, 1);
/// let mut image = vec![0u64; 10_000 / 64 + 1];
///
/// let mut cumulative = 0;
/// while let Some(flipped) = campaign.advance(&mut image) {
///     cumulative += flipped;
/// }
/// assert_eq!(cumulative, 1_000); // exactly 10% of the image, in 3 steps
/// ```
pub struct AttackCampaign {
    schedule: ErrorRateSchedule,
    bit_len: usize,
    corrupted: HashSet<usize>,
    step: usize,
    rng: StdRng,
}

impl AttackCampaign {
    /// Creates a campaign over `bit_len` stored bits.
    ///
    /// # Panics
    ///
    /// Panics if `bit_len` is zero.
    pub fn new(schedule: ErrorRateSchedule, bit_len: usize, seed: u64) -> Self {
        assert!(bit_len > 0, "campaign needs a non-empty image");
        Self {
            schedule,
            bit_len,
            corrupted: HashSet::new(),
            step: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Number of steps executed so far.
    pub fn step(&self) -> usize {
        self.step
    }

    /// Total steps in the schedule.
    pub fn len(&self) -> usize {
        self.schedule.len()
    }

    /// Returns `true` if the schedule has no steps.
    pub fn is_empty(&self) -> bool {
        self.schedule.is_empty()
    }

    /// Positions corrupted so far (unordered).
    pub fn corrupted_positions(&self) -> impl Iterator<Item = usize> + '_ {
        self.corrupted.iter().copied()
    }

    /// Cumulative fraction of the image corrupted so far.
    pub fn cumulative_rate(&self) -> f64 {
        self.corrupted.len() as f64 / self.bit_len as f64
    }

    /// Executes the next step: flips fresh positions in `image` until the
    /// cumulative corruption matches the schedule. Returns the number of
    /// bits flipped this step, or `None` when the schedule is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if the image is too small for the campaign's `bit_len`.
    pub fn advance(&mut self, image: &mut [u64]) -> Option<usize> {
        assert!(
            self.bit_len <= image.len() * 64,
            "image too small for campaign"
        );
        let target_rate = *self.schedule.cumulative_rates().get(self.step)?;
        self.step += 1;
        let target = (target_rate * self.bit_len as f64).round() as usize;
        let needed = target.saturating_sub(self.corrupted.len());
        let mut flipped = 0usize;
        // Rejection-sample fresh positions; the schedule caps at 100% so
        // this terminates.
        while flipped < needed && self.corrupted.len() < self.bit_len {
            for pos in distinct_indices(&mut self.rng, self.bit_len, needed - flipped) {
                if self.corrupted.insert(pos) {
                    image[pos / 64] ^= 1 << (pos % 64);
                    flipped += 1;
                }
            }
        }
        Some(flipped)
    }
}

impl fmt::Debug for AttackCampaign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AttackCampaign")
            .field("bit_len", &self.bit_len)
            .field("step", &self.step)
            .field("corrupted", &self.corrupted.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ones(image: &[u64]) -> usize {
        image.iter().map(|w| w.count_ones() as usize).sum()
    }

    #[test]
    fn campaign_reaches_each_cumulative_rate_exactly() {
        let schedule = ErrorRateSchedule::from_cumulative(vec![0.01, 0.05, 0.10]);
        let mut campaign = AttackCampaign::new(schedule, 6400, 3);
        let mut image = vec![0u64; 100];
        let expected = [64usize, 320, 640];
        for (i, &total) in expected.iter().enumerate() {
            campaign.advance(&mut image).expect("step exists");
            assert_eq!(ones(&image), total, "after step {i}");
            assert!((campaign.cumulative_rate() - total as f64 / 6400.0).abs() < 1e-12);
        }
        assert!(campaign.advance(&mut image).is_none());
    }

    #[test]
    fn steps_never_reflip_corrupted_positions() {
        // If a step re-flipped an old position, total ones would drop.
        let schedule = ErrorRateSchedule::linear(0.0, 0.5, 10);
        let mut campaign = AttackCampaign::new(schedule, 1280, 7);
        let mut image = vec![0u64; 20];
        let mut prev = 0;
        while campaign.advance(&mut image).is_some() {
            let now = ones(&image);
            assert!(now >= prev, "ones decreased: {prev} -> {now}");
            prev = now;
        }
        assert_eq!(prev, 640);
    }

    #[test]
    fn campaign_is_deterministic() {
        let run = || {
            let schedule = ErrorRateSchedule::linear(0.0, 0.2, 4);
            let mut campaign = AttackCampaign::new(schedule, 640, 11);
            let mut image = vec![0u64; 10];
            while campaign.advance(&mut image).is_some() {}
            image
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_schedule_is_immediately_exhausted() {
        let schedule = ErrorRateSchedule::from_cumulative(vec![]);
        let mut campaign = AttackCampaign::new(schedule, 64, 0);
        assert!(campaign.is_empty());
        assert!(campaign.advance(&mut [0u64; 1]).is_none());
    }

    #[test]
    fn full_corruption_is_reachable() {
        let schedule = ErrorRateSchedule::from_cumulative(vec![1.0]);
        let mut campaign = AttackCampaign::new(schedule, 128, 5);
        let mut image = vec![0u64; 2];
        campaign.advance(&mut image);
        assert_eq!(ones(&image), 128);
    }

    #[test]
    #[should_panic(expected = "non-empty image")]
    fn zero_bits_panics() {
        AttackCampaign::new(ErrorRateSchedule::linear(0.0, 0.1, 1), 0, 0);
    }
}
