//! Bit-level fault and attack injection for model memory images.
//!
//! The RobustHD evaluation subjects *stored model weights* to bit flips:
//! random flips (technology noise, retention failures) and targeted flips
//! (adversarial attacks on the most significant bits, as in Row Hammer based
//! bit-flip attacks on DNNs). This crate implements those fault models over
//! raw `u64` word images, so any model — binary hypervectors, 8-bit
//! fixed-point DNN weights, AdaBoost stump parameters — can be attacked
//! through its packed representation.
//!
//! * [`Attacker`] — seeded injector with random / targeted / row-burst /
//!   stuck-at fault models.
//! * [`AttackReport`] — what was actually flipped.
//! * [`ErrorRateSchedule`] — cumulative error-rate sweeps for
//!   lifetime-style experiments.
//! * [`AttackCampaign`] — stateful multi-step corruption that accumulates
//!   over time, the runtime threat model RobustHD's recovery counteracts.
//!
//! # Example
//!
//! ```
//! use faultsim::Attacker;
//!
//! let mut image = vec![0u64; 64]; // 4096 stored bits
//! let report = Attacker::seed_from(1).random_flips(&mut image, 4096, 0.10);
//! assert_eq!(report.flipped_bits, 410); // exactly round(0.10 * 4096)
//! let ones: u32 = image.iter().map(|w| w.count_ones()).sum();
//! assert_eq!(ones, 410);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod attacker;
mod campaign;
mod report;
mod sampling;
mod schedule;

pub use attacker::Attacker;
pub use campaign::AttackCampaign;
pub use report::AttackReport;
pub use schedule::ErrorRateSchedule;
