use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashSet;

/// Samples `count` distinct indices from `0..len`, capping at `len`.
///
/// Uses rejection sampling for sparse draws and a partial Fisher-Yates
/// shuffle for dense draws, so both the 1%-of-a-megabit and the
/// flip-everything cases stay fast.
pub(crate) fn distinct_indices(rng: &mut StdRng, len: usize, count: usize) -> Vec<usize> {
    let count = count.min(len);
    if count == 0 {
        return Vec::new();
    }
    if count * 4 <= len {
        let mut chosen = HashSet::with_capacity(count);
        let mut out = Vec::with_capacity(count);
        while out.len() < count {
            let idx = rng.random_range(0..len);
            if chosen.insert(idx) {
                out.push(idx);
            }
        }
        out
    } else {
        let mut all: Vec<usize> = (0..len).collect();
        all.shuffle(rng);
        all.truncate(count);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn returns_exact_count_of_distinct_indices() {
        let mut rng = StdRng::seed_from_u64(1);
        for &(len, count) in &[(100usize, 3usize), (100, 50), (100, 100), (10, 0)] {
            let idx = distinct_indices(&mut rng, len, count);
            assert_eq!(idx.len(), count);
            let unique: HashSet<_> = idx.iter().collect();
            assert_eq!(unique.len(), count, "indices must be distinct");
            assert!(idx.iter().all(|&i| i < len));
        }
    }

    #[test]
    fn count_caps_at_len() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(distinct_indices(&mut rng, 10, 25).len(), 10);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = distinct_indices(&mut StdRng::seed_from_u64(3), 1000, 10);
        let b = distinct_indices(&mut StdRng::seed_from_u64(3), 1000, 10);
        assert_eq!(a, b);
    }
}
