use crate::report::AttackReport;
use crate::sampling::distinct_indices;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Seeded bit-flip injector implementing the paper's fault models.
///
/// All methods operate on a raw word image (`&mut [u64]` plus a bit length),
/// flipping **exactly** `round(rate × bit_len)` distinct bits so an
/// experiment at "10% error" is 10% by construction, not in expectation.
///
/// # Example
///
/// ```
/// use faultsim::Attacker;
///
/// let mut attacker = Attacker::seed_from(99);
/// // Attack an 8-bit fixed-point weight image, worst case: MSBs first.
/// let mut weights = vec![0u64; 16]; // 128 8-bit fields
/// let report = attacker.targeted_flips(&mut weights, 1024, 0.05, 8);
/// assert_eq!(report.flipped_bits, 51);
/// ```
pub struct Attacker {
    rng: StdRng,
}

impl Attacker {
    /// Creates an attacker from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// *Random attack*: flips `round(rate × bit_len)` uniformly chosen
    /// distinct bits. Models technology noise and untargeted Row Hammer
    /// disturbance.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]` or `bit_len` exceeds the image
    /// capacity.
    pub fn random_flips(&mut self, image: &mut [u64], bit_len: usize, rate: f64) -> AttackReport {
        validate(image, bit_len, rate);
        let count = (rate * bit_len as f64).round() as usize;
        let positions = distinct_indices(&mut self.rng, bit_len, count);
        for &pos in &positions {
            flip(image, pos);
        }
        AttackReport {
            requested_rate: rate,
            flipped_bits: positions.len(),
            bit_len,
        }
    }

    /// *Targeted attack*: the worst-case adversary of the paper, which
    /// concentrates the same flip budget on the **most significant bits** of
    /// each stored field.
    ///
    /// The image is interpreted as contiguous `field_bits`-wide fields (e.g.
    /// 8 for the 8-bit fixed-point baselines, 1 for a binary HDC model —
    /// where targeted degenerates to random, exactly the paper's
    /// observation). The budget is spent on the MSB of randomly chosen
    /// distinct fields; only if every field's MSB is already flipped does
    /// the attack descend to the next-most-significant bit.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`, `field_bits` is zero, or
    /// `bit_len` exceeds the image capacity.
    pub fn targeted_flips(
        &mut self,
        image: &mut [u64],
        bit_len: usize,
        rate: f64,
        field_bits: usize,
    ) -> AttackReport {
        validate(image, bit_len, rate);
        assert!(field_bits > 0, "field_bits must be positive");
        let mut budget = (rate * bit_len as f64).round() as usize;
        let fields = bit_len / field_bits;
        let mut flipped = 0usize;
        // Spend the budget from the MSB (bit field_bits-1) downwards.
        for sig in (0..field_bits).rev() {
            if budget == 0 || fields == 0 {
                break;
            }
            let take = budget.min(fields);
            let chosen = distinct_indices(&mut self.rng, fields, take);
            for field in chosen {
                let pos = field * field_bits + sig;
                if pos < bit_len {
                    flip(image, pos);
                    flipped += 1;
                }
            }
            budget -= take;
        }
        AttackReport {
            requested_rate: rate,
            flipped_bits: flipped,
            bit_len,
        }
    }

    /// *Row burst*: flips every bit of `rows` randomly chosen aligned rows
    /// of `row_bits` bits — a Row-Hammer-style disturbance that corrupts
    /// physically adjacent cells together.
    ///
    /// # Panics
    ///
    /// Panics if `row_bits` is zero or `bit_len` exceeds the image capacity.
    pub fn row_burst(
        &mut self,
        image: &mut [u64],
        bit_len: usize,
        row_bits: usize,
        rows: usize,
    ) -> AttackReport {
        assert!(row_bits > 0, "row_bits must be positive");
        assert!(bit_len <= image.len() * 64, "bit_len exceeds image");
        let total_rows = bit_len.div_ceil(row_bits);
        let chosen = distinct_indices(&mut self.rng, total_rows, rows);
        let mut flipped = 0usize;
        for row in chosen {
            let start = row * row_bits;
            let end = (start + row_bits).min(bit_len);
            for pos in start..end {
                flip(image, pos);
                flipped += 1;
            }
        }
        AttackReport {
            requested_rate: flipped as f64 / bit_len.max(1) as f64,
            flipped_bits: flipped,
            bit_len,
        }
    }

    /// *Stuck-at fault*: forces `round(rate × bit_len)` distinct cells to a
    /// fixed `value`, modelling worn-out NVM cells that no longer switch.
    ///
    /// The report counts *changed* bits (a cell already at `value` is stuck
    /// but unchanged).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]` or `bit_len` exceeds the image
    /// capacity.
    pub fn stuck_at(
        &mut self,
        image: &mut [u64],
        bit_len: usize,
        rate: f64,
        value: bool,
    ) -> AttackReport {
        validate(image, bit_len, rate);
        let count = (rate * bit_len as f64).round() as usize;
        let positions = distinct_indices(&mut self.rng, bit_len, count);
        let mut flipped = 0usize;
        for &pos in &positions {
            if get(image, pos) != value {
                flip(image, pos);
                flipped += 1;
            }
        }
        AttackReport {
            requested_rate: rate,
            flipped_bits: flipped,
            bit_len,
        }
    }

    /// Samples `count` distinct bit positions below `bit_len` without
    /// flipping anything — used by callers that need to apply the same fault
    /// pattern to several images (e.g. accumulating errors over a lifetime
    /// simulation).
    pub fn sample_positions(&mut self, bit_len: usize, count: usize) -> Vec<usize> {
        distinct_indices(&mut self.rng, bit_len, count)
    }
}

impl fmt::Debug for Attacker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Attacker(StdRng)")
    }
}

fn validate(image: &[u64], bit_len: usize, rate: f64) {
    assert!(
        (0.0..=1.0).contains(&rate),
        "error rate {rate} outside [0, 1]"
    );
    assert!(
        bit_len <= image.len() * 64,
        "bit_len {bit_len} exceeds image capacity {}",
        image.len() * 64
    );
}

fn flip(image: &mut [u64], pos: usize) {
    image[pos / 64] ^= 1u64 << (pos % 64);
}

fn get(image: &[u64], pos: usize) -> bool {
    (image[pos / 64] >> (pos % 64)) & 1 == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ones(image: &[u64]) -> usize {
        image.iter().map(|w| w.count_ones() as usize).sum()
    }

    #[test]
    fn random_flips_exact_count() {
        let mut image = vec![0u64; 100];
        let report = Attacker::seed_from(1).random_flips(&mut image, 6400, 0.1);
        assert_eq!(report.flipped_bits, 640);
        assert_eq!(ones(&image), 640);
    }

    #[test]
    fn random_flips_zero_rate_is_noop() {
        let mut image = vec![u64::MAX; 4];
        let report = Attacker::seed_from(2).random_flips(&mut image, 256, 0.0);
        assert_eq!(report.flipped_bits, 0);
        assert_eq!(ones(&image), 256);
    }

    #[test]
    fn random_flips_full_rate_flips_everything() {
        let mut image = vec![0u64; 4];
        Attacker::seed_from(3).random_flips(&mut image, 256, 1.0);
        assert_eq!(ones(&image), 256);
    }

    #[test]
    fn random_flips_respect_bit_len_boundary() {
        // Only the first 100 bits are in-bounds; the rest must stay zero.
        let mut image = vec![0u64; 4];
        Attacker::seed_from(4).random_flips(&mut image, 100, 1.0);
        assert_eq!(ones(&image), 100);
        assert_eq!(image[2], 0);
        assert_eq!(image[3], 0);
    }

    #[test]
    fn targeted_hits_msbs_first() {
        // 32 fields of 8 bits; 5% of 256 bits = 13 flips < 32 fields,
        // so every flip must land on an MSB (bit 7 of a field).
        let mut image = vec![0u64; 4];
        let report = Attacker::seed_from(5).targeted_flips(&mut image, 256, 0.05, 8);
        assert_eq!(report.flipped_bits, 13);
        for field in 0..32 {
            for bit in 0..8 {
                let pos = field * 8 + bit;
                if get(&image, pos) {
                    assert_eq!(bit, 7, "non-MSB bit {bit} of field {field} flipped");
                }
            }
        }
    }

    #[test]
    fn targeted_descends_after_msbs_exhausted() {
        // 4 fields of 8 bits, budget 6 > 4 MSBs: 4 MSBs + 2 second bits.
        let mut image = vec![0u64; 1];
        let report = Attacker::seed_from(6).targeted_flips(&mut image, 32, 6.0 / 32.0, 8);
        assert_eq!(report.flipped_bits, 6);
        let msbs = (0..4).filter(|f| get(&image, f * 8 + 7)).count();
        assert_eq!(msbs, 4, "all MSBs must be flipped before descending");
        let second = (0..4).filter(|f| get(&image, f * 8 + 6)).count();
        assert_eq!(second, 2);
    }

    #[test]
    fn targeted_on_one_bit_fields_equals_random_budget() {
        let mut image = vec![0u64; 16];
        let report = Attacker::seed_from(7).targeted_flips(&mut image, 1024, 0.1, 1);
        assert_eq!(report.flipped_bits, 102);
        assert_eq!(ones(&image), 102);
    }

    #[test]
    fn row_burst_flips_whole_rows() {
        let mut image = vec![0u64; 8];
        let report = Attacker::seed_from(8).row_burst(&mut image, 512, 64, 3);
        assert_eq!(report.flipped_bits, 192);
        // Each touched word is fully flipped because rows align with words.
        let full_words = image.iter().filter(|&&w| w == u64::MAX).count();
        assert_eq!(full_words, 3);
    }

    #[test]
    fn row_burst_is_deterministic_per_seed() {
        let mut a = vec![0u64; 8];
        let mut b = vec![0u64; 8];
        Attacker::seed_from(77).row_burst(&mut a, 512, 32, 5);
        Attacker::seed_from(77).row_burst(&mut b, 512, 32, 5);
        assert_eq!(a, b);
        let mut c = vec![0u64; 8];
        Attacker::seed_from(78).row_burst(&mut c, 512, 32, 5);
        assert_ne!(a, c, "different seeds must pick different rows");
    }

    #[test]
    fn row_burst_truncates_the_tail_row_at_bit_len() {
        // bit_len 100 with 64-bit rows: row 0 is full, row 1 holds only
        // bits 64..100. Bursting both rows flips exactly 100 bits and
        // never writes past the boundary.
        let mut image = vec![0u64; 4];
        let report = Attacker::seed_from(11).row_burst(&mut image, 100, 64, 2);
        assert_eq!(report.flipped_bits, 100);
        assert_eq!(ones(&image), 100);
        assert_eq!(image[0], u64::MAX);
        assert_eq!(image[1], (1u64 << 36) - 1);
        assert_eq!(image[2], 0);
        assert_eq!(image[3], 0);
        assert!((report.requested_rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn row_burst_single_bit_tail_row() {
        // bit_len 65: the second row is a single bit. Whichever rows are
        // chosen, no position at or above 65 may flip.
        for seed in 0..16 {
            let mut image = vec![0u64; 2];
            let report = Attacker::seed_from(seed).row_burst(&mut image, 65, 64, 1);
            assert!(report.flipped_bits == 64 || report.flipped_bits == 1);
            assert_eq!(ones(&image), report.flipped_bits);
            assert_eq!(image[1] & !1, 0, "bits above 65 flipped (seed {seed})");
        }
    }

    #[test]
    fn row_burst_caps_rows_at_available() {
        // Asking for more rows than exist flips the entire image, once.
        let mut image = vec![0u64; 2];
        let report = Attacker::seed_from(12).row_burst(&mut image, 128, 32, 100);
        assert_eq!(report.flipped_bits, 128);
        assert_eq!(ones(&image), 128);
    }

    #[test]
    fn stuck_at_is_deterministic_per_seed() {
        let mut a: Vec<u64> = (0..8).map(|i| 0xA5A5_5A5A_u64.rotate_left(i)).collect();
        let mut b = a.clone();
        Attacker::seed_from(91).stuck_at(&mut a, 512, 0.3, false);
        Attacker::seed_from(91).stuck_at(&mut b, 512, 0.3, false);
        assert_eq!(a, b);
    }

    #[test]
    fn stuck_at_exact_change_accounting() {
        // Alternating bits, full coverage, stuck at one: exactly the
        // zero half changes and the image saturates.
        let mut image = vec![0x5555_5555_5555_5555u64; 2];
        let report = Attacker::seed_from(13).stuck_at(&mut image, 128, 1.0, true);
        assert_eq!(report.flipped_bits, 64);
        assert_eq!(ones(&image), 128);
    }

    #[test]
    fn stuck_at_respects_bit_len_boundary() {
        // Sticking 100 of 256 capacity bits at one must leave everything
        // from bit 100 upward untouched.
        let mut image = vec![0u64; 4];
        let report = Attacker::seed_from(14).stuck_at(&mut image, 100, 1.0, true);
        assert_eq!(report.flipped_bits, 100);
        assert_eq!(ones(&image), 100);
        assert_eq!(image[1] >> 36, 0);
        assert_eq!(image[2], 0);
        assert_eq!(image[3], 0);
    }

    #[test]
    fn stuck_at_counts_only_changes() {
        let mut image = vec![u64::MAX; 2];
        let report = Attacker::seed_from(9).stuck_at(&mut image, 128, 0.5, true);
        // All bits were already one; sticking at one changes nothing.
        assert_eq!(report.flipped_bits, 0);
        assert_eq!(ones(&image), 128);
        let report = Attacker::seed_from(9).stuck_at(&mut image, 128, 0.5, false);
        assert_eq!(report.flipped_bits, 64);
        assert_eq!(ones(&image), 64);
    }

    #[test]
    fn attacks_are_deterministic_per_seed() {
        let mut a = vec![0u64; 10];
        let mut b = vec![0u64; 10];
        Attacker::seed_from(42).random_flips(&mut a, 640, 0.2);
        Attacker::seed_from(42).random_flips(&mut b, 640, 0.2);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn rate_above_one_panics() {
        Attacker::seed_from(0).random_flips(&mut [0u64; 1], 64, 1.5);
    }

    #[test]
    #[should_panic(expected = "exceeds image capacity")]
    fn bit_len_beyond_image_panics() {
        Attacker::seed_from(0).random_flips(&mut [0u64; 1], 65, 0.1);
    }

    #[test]
    fn sample_positions_distinct_and_bounded() {
        let pos = Attacker::seed_from(10).sample_positions(100, 40);
        assert_eq!(pos.len(), 40);
        assert!(pos.iter().all(|&p| p < 100));
    }
}
