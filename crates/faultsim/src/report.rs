use serde::{Deserialize, Serialize};

/// Summary of one fault-injection pass, returned by every [`crate::Attacker`]
/// method.
///
/// # Example
///
/// ```
/// use faultsim::Attacker;
///
/// let mut image = vec![0u64; 2];
/// let report = Attacker::seed_from(0).random_flips(&mut image, 128, 0.5);
/// assert_eq!(report.bit_len, 128);
/// assert!((report.achieved_rate() - 0.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackReport {
    /// Error rate that was requested (fraction of stored bits).
    pub requested_rate: f64,
    /// Number of bits actually flipped (distinct positions).
    pub flipped_bits: usize,
    /// Size of the attacked image in bits.
    pub bit_len: usize,
}

impl AttackReport {
    /// Fraction of stored bits actually flipped.
    pub fn achieved_rate(&self) -> f64 {
        if self.bit_len == 0 {
            0.0
        } else {
            self.flipped_bits as f64 / self.bit_len as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn achieved_rate_is_flips_over_len() {
        let r = AttackReport {
            requested_rate: 0.1,
            flipped_bits: 10,
            bit_len: 100,
        };
        assert!((r.achieved_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_image_rate_is_zero() {
        let r = AttackReport {
            requested_rate: 0.1,
            flipped_bits: 0,
            bit_len: 0,
        };
        assert_eq!(r.achieved_rate(), 0.0);
    }
}
