use serde::{Deserialize, Serialize};

/// A sweep of cumulative error rates for lifetime-style experiments.
///
/// Lifetime simulations (Figure 4a of the paper) inject *additional* faults
/// at each time step so that the total corruption grows over time. The
/// schedule converts a sequence of cumulative target rates into per-step
/// increments, clamping to the achievable range.
///
/// # Example
///
/// ```
/// use faultsim::ErrorRateSchedule;
///
/// let schedule = ErrorRateSchedule::linear(0.0, 0.10, 5);
/// let rates = schedule.cumulative_rates();
/// assert_eq!(rates.len(), 5);
/// assert!((rates[4] - 0.10).abs() < 1e-12);
/// let steps = schedule.increments();
/// let total: f64 = steps.iter().sum();
/// assert!((total - 0.10).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorRateSchedule {
    cumulative: Vec<f64>,
}

impl ErrorRateSchedule {
    /// Builds a schedule from explicit cumulative rates.
    ///
    /// # Panics
    ///
    /// Panics if any rate is outside `[0, 1]` or the sequence decreases.
    pub fn from_cumulative(cumulative: Vec<f64>) -> Self {
        let mut prev = 0.0;
        for (i, &r) in cumulative.iter().enumerate() {
            assert!(
                (0.0..=1.0).contains(&r),
                "rate {r} at step {i} outside [0,1]"
            );
            assert!(
                r >= prev,
                "cumulative rates must be non-decreasing at step {i}"
            );
            prev = r;
        }
        Self { cumulative }
    }

    /// Linear ramp from `start` to `end` over `steps` steps (the final step
    /// reaches `end` exactly).
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0`, rates are outside `[0, 1]`, or `end < start`.
    pub fn linear(start: f64, end: f64, steps: usize) -> Self {
        assert!(steps > 0, "schedule needs at least one step");
        assert!(end >= start, "end rate must not be below start rate");
        let cumulative = (1..=steps)
            .map(|i| start + (end - start) * i as f64 / steps as f64)
            .collect();
        Self::from_cumulative(cumulative)
    }

    /// The cumulative error rate at each step.
    pub fn cumulative_rates(&self) -> &[f64] {
        &self.cumulative
    }

    /// Per-step rate increments (what to inject *additionally* at each
    /// step). Sums to the final cumulative rate.
    pub fn increments(&self) -> Vec<f64> {
        let mut prev = 0.0;
        self.cumulative
            .iter()
            .map(|&r| {
                let inc = r - prev;
                prev = r;
                inc
            })
            .collect()
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Returns `true` if the schedule has no steps.
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_schedule_endpoints() {
        let s = ErrorRateSchedule::linear(0.0, 0.12, 6);
        assert_eq!(s.len(), 6);
        assert!((s.cumulative_rates()[0] - 0.02).abs() < 1e-12);
        assert!((s.cumulative_rates()[5] - 0.12).abs() < 1e-12);
    }

    #[test]
    fn increments_sum_to_final_rate() {
        let s = ErrorRateSchedule::from_cumulative(vec![0.02, 0.06, 0.10]);
        let incs = s.increments();
        assert_eq!(incs.len(), 3);
        assert!((incs.iter().sum::<f64>() - 0.10).abs() < 1e-12);
        assert!((incs[1] - 0.04).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_schedule_panics() {
        ErrorRateSchedule::from_cumulative(vec![0.1, 0.05]);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn out_of_range_rate_panics() {
        ErrorRateSchedule::from_cumulative(vec![1.5]);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_steps_panics() {
        ErrorRateSchedule::linear(0.0, 0.1, 0);
    }

    #[test]
    fn empty_schedule_properties() {
        let s = ErrorRateSchedule::from_cumulative(vec![]);
        assert!(s.is_empty());
        assert!(s.increments().is_empty());
    }
}
