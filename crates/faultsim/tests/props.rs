//! Property-based tests of the fault-injection models.

use faultsim::{AttackCampaign, Attacker, ErrorRateSchedule};
use proptest::prelude::*;

fn ones(image: &[u64]) -> usize {
    image.iter().map(|w| w.count_ones() as usize).sum()
}

proptest! {
    /// A targeted attack with budget below the field count only ever flips
    /// MSB positions.
    #[test]
    fn targeted_hits_only_msbs_when_budget_fits(
        fields in 4usize..40,
        seed in any::<u64>(),
    ) {
        let field_bits = 8usize;
        let bit_len = fields * field_bits;
        let mut image = vec![0u64; bit_len.div_ceil(64)];
        // Budget: half the fields.
        let rate = (fields / 2) as f64 / bit_len as f64;
        Attacker::seed_from(seed).targeted_flips(&mut image, bit_len, rate, field_bits);
        for pos in 0..bit_len {
            if (image[pos / 64] >> (pos % 64)) & 1 == 1 {
                prop_assert_eq!(pos % field_bits, field_bits - 1, "non-MSB bit {} flipped", pos);
            }
        }
    }

    /// Row bursts flip whole aligned rows and nothing else.
    #[test]
    fn row_burst_is_row_aligned(rows_total in 2usize..10, rows_hit in 1usize..10, seed in any::<u64>()) {
        let row_bits = 64usize;
        let bit_len = rows_total * row_bits;
        let mut image = vec![0u64; rows_total];
        let report = Attacker::seed_from(seed).row_burst(&mut image, bit_len, row_bits, rows_hit.min(rows_total));
        // Every word is either fully flipped or untouched.
        for &word in &image {
            prop_assert!(word == 0 || word == u64::MAX);
        }
        prop_assert_eq!(report.flipped_bits, ones(&image));
    }

    /// Stuck-at faults are idempotent: applying the same fault set twice
    /// changes nothing further.
    #[test]
    fn stuck_at_is_idempotent(words in 1usize..8, rate in 0.0f64..=1.0, seed in any::<u64>()) {
        let bit_len = words * 64;
        let mut image: Vec<u64> = (0..words as u64).map(|i| i.wrapping_mul(0xdeadbeef)).collect();
        Attacker::seed_from(seed).stuck_at(&mut image, bit_len, rate, true);
        let after_once = image.clone();
        Attacker::seed_from(seed).stuck_at(&mut image, bit_len, rate, true);
        prop_assert_eq!(image, after_once);
    }

    /// A campaign's cumulative corruption matches the schedule exactly at
    /// every step, never revisiting a position.
    #[test]
    fn campaign_tracks_schedule(
        steps in prop::collection::vec(0.0f64..=0.5, 1..6),
        seed in any::<u64>(),
    ) {
        let mut cumulative: Vec<f64> = steps.clone();
        cumulative.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let schedule = ErrorRateSchedule::from_cumulative(cumulative.clone());
        let bit_len = 1280usize;
        let mut campaign = AttackCampaign::new(schedule, bit_len, seed);
        let mut image = vec![0u64; bit_len / 64];
        for &rate in &cumulative {
            campaign.advance(&mut image).expect("step exists");
            let expected = (rate * bit_len as f64).round() as usize;
            prop_assert_eq!(ones(&image), expected, "at rate {}", rate);
        }
    }

    /// Campaign steps — random or MSB-targeted, freely interleaved — never
    /// revisit an already-flipped position: the XOR image always holds
    /// exactly as many set bits as the campaign's corrupted set.
    #[test]
    fn campaign_never_revisits_positions(
        steps in prop::collection::vec(0.0f64..=0.6, 2..8),
        targeted_mask in any::<u64>(),
        field_choice in 0usize..3,
        seed in any::<u64>(),
    ) {
        let field_bits = [1usize, 8, 64][field_choice];
        let mut cumulative: Vec<f64> = steps.clone();
        cumulative.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let schedule = ErrorRateSchedule::from_cumulative(cumulative);
        let bit_len = 1280usize;
        let mut campaign = AttackCampaign::new(schedule, bit_len, seed);
        let mut image = vec![0u64; bit_len / 64];
        let mut step = 0u32;
        let mut prev = 0usize;
        loop {
            let advanced = if (targeted_mask >> (step % 64)) & 1 == 1 {
                campaign.advance_targeted(&mut image, field_bits)
            } else {
                campaign.advance(&mut image)
            };
            if advanced.is_none() {
                break;
            }
            let now = ones(&image);
            prop_assert!(now >= prev, "a revisit cleared a bit: {} -> {}", prev, now);
            prop_assert_eq!(now, campaign.corrupted_positions().count());
            prev = now;
            step += 1;
        }
    }
}
