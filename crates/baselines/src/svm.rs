use crate::classifier::{BitStoredModel, Classifier};
use crate::mlp::{argmax, pack_tensors, unpack_tensors};
use crate::storage::QuantizedTensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use synthdata::Sample;

/// Hyperparameters of the linear SVM baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SvmConfig {
    /// Training epochs of hinge-loss SGD.
    pub epochs: usize,
    /// Initial learning rate (decays as `1 / (1 + t)` per epoch).
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub lambda: f64,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        Self {
            epochs: 40,
            learning_rate: 0.1,
            lambda: 1e-4,
            seed: 0,
        }
    }
}

/// One-vs-rest linear SVM trained with hinge-loss SGD, deployed with 8-bit
/// fixed-point weights.
///
/// # Example
///
/// ```
/// use baselines::{accuracy, LinearSvm, SvmConfig};
/// use synthdata::{DatasetSpec, GeneratorConfig};
///
/// let data = GeneratorConfig::new(2).generate(&DatasetSpec::pecan().with_sizes(150, 60));
/// let model = LinearSvm::fit(&SvmConfig::default(), &data.train);
/// assert!(accuracy(&model, &data.test) > 0.7);
/// ```
#[derive(Debug, Clone)]
pub struct LinearSvm {
    /// One weight row per class, laid out `[class][feature]`.
    weights: QuantizedTensor,
    biases: QuantizedTensor,
    features: usize,
    classes: usize,
}

impl LinearSvm {
    /// Trains one-vs-rest hinge-loss classifiers and quantizes them.
    ///
    /// # Panics
    ///
    /// Panics if `train` is empty or feature counts are inconsistent.
    pub fn fit(config: &SvmConfig, train: &[Sample]) -> Self {
        assert!(!train.is_empty(), "training set must not be empty");
        let features = train[0].features.len();
        assert!(
            train.iter().all(|s| s.features.len() == features),
            "inconsistent feature counts in training data"
        );
        let classes = train.iter().map(|s| s.label).max().expect("nonempty") + 1;

        let mut weights = vec![0.0f64; classes * features];
        let mut biases = vec![0.0f64; classes];
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut order: Vec<usize> = (0..train.len()).collect();
        for epoch in 0..config.epochs {
            let lr = config.learning_rate / (1.0 + epoch as f64);
            order.shuffle(&mut rng);
            for &idx in &order {
                let sample = &train[idx];
                for c in 0..classes {
                    let y = if sample.label == c { 1.0 } else { -1.0 };
                    let row = &mut weights[c * features..(c + 1) * features];
                    let margin = y
                        * (row
                            .iter()
                            .zip(&sample.features)
                            .map(|(w, x)| w * x)
                            .sum::<f64>()
                            + biases[c]);
                    // L2 shrinkage.
                    for w in row.iter_mut() {
                        *w *= 1.0 - lr * config.lambda;
                    }
                    if margin < 1.0 {
                        for (w, &x) in row.iter_mut().zip(&sample.features) {
                            *w += lr * y * x;
                        }
                        biases[c] += lr * y;
                    }
                }
            }
        }

        Self {
            weights: QuantizedTensor::quantize(&weights),
            biases: QuantizedTensor::quantize(&biases),
            features,
            classes,
        }
    }

    /// Per-class decision scores with the deployed quantized weights.
    ///
    /// # Panics
    ///
    /// Panics if the feature count differs from training.
    pub fn scores(&self, features: &[f64]) -> Vec<f64> {
        assert_eq!(
            features.len(),
            self.features,
            "expected {} features, got {}",
            self.features,
            features.len()
        );
        let weights = self.weights.dequantize();
        let biases = self.biases.dequantize();
        (0..self.classes)
            .map(|c| {
                weights[c * self.features..(c + 1) * self.features]
                    .iter()
                    .zip(features)
                    .map(|(w, x)| w * x)
                    .sum::<f64>()
                    + biases[c]
            })
            .collect()
    }

    /// Total number of deployed weights.
    pub fn parameter_count(&self) -> usize {
        self.weights.len() + self.biases.len()
    }
}

impl Classifier for LinearSvm {
    fn predict(&self, features: &[f64]) -> usize {
        argmax(&self.scores(features))
    }

    fn num_classes(&self) -> usize {
        self.classes
    }
}

impl BitStoredModel for LinearSvm {
    fn to_image(&self) -> Vec<u64> {
        pack_tensors(&[&self.weights, &self.biases])
    }

    fn bit_len(&self) -> usize {
        self.parameter_count() * 8
    }

    fn load_image(&mut self, image: &[u64]) {
        unpack_tensors(image, [&mut self.weights, &mut self.biases]);
    }

    fn field_bits(&self) -> usize {
        8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::accuracy;
    use synthdata::{DatasetSpec, GeneratorConfig};

    fn small_data() -> synthdata::Dataset {
        GeneratorConfig::new(4).generate(&DatasetSpec::pecan().with_sizes(180, 90))
    }

    #[test]
    fn learns_separable_data() {
        let data = small_data();
        let model = LinearSvm::fit(&SvmConfig::default(), &data.train);
        let acc = accuracy(&model, &data.test);
        assert!(acc > 0.8, "SVM accuracy only {acc}");
    }

    #[test]
    fn training_is_deterministic() {
        let data = small_data();
        let a = LinearSvm::fit(&SvmConfig::default(), &data.train);
        let b = LinearSvm::fit(&SvmConfig::default(), &data.train);
        assert_eq!(a.to_image(), b.to_image());
    }

    #[test]
    fn image_roundtrip_preserves_predictions() {
        let data = small_data();
        let mut model = LinearSvm::fit(&SvmConfig::default(), &data.train);
        let image = model.to_image();
        let before: Vec<usize> = data
            .test
            .iter()
            .map(|s| model.predict(&s.features))
            .collect();
        model.load_image(&image);
        let after: Vec<usize> = data
            .test
            .iter()
            .map(|s| model.predict(&s.features))
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn scores_align_with_predict() {
        let data = small_data();
        let model = LinearSvm::fit(&SvmConfig::default(), &data.train);
        let sample = &data.test[0];
        let scores = model.scores(&sample.features);
        assert_eq!(scores.len(), model.num_classes());
        assert_eq!(model.predict(&sample.features), argmax(&scores));
    }

    #[test]
    fn bit_len_counts_weights_and_biases() {
        let data = small_data();
        let model = LinearSvm::fit(&SvmConfig::default(), &data.train);
        assert_eq!(model.bit_len(), (3 * data.spec.features + 3) * 8);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_training_panics() {
        LinearSvm::fit(&SvmConfig::default(), &[]);
    }
}
