//! From-scratch comparator learners with attackable 8-bit fixed-point
//! weight storage.
//!
//! The RobustHD evaluation (Table 3) compares HDC against a DNN, a linear
//! SVM, and AdaBoost, all stored in 8-bit fixed point — the representation
//! used by quantized accelerators such as TPUs, and the one bit-flip
//! attacks target. This crate implements the three learners from scratch:
//!
//! * [`Mlp`] — a one-hidden-layer ReLU network trained with SGD and
//!   deployed with quantized weights,
//! * [`LinearSvm`] — one-vs-rest hinge-loss linear classifiers,
//! * [`AdaBoost`] — one-vs-rest boosted decision stumps,
//! * [`Knn`] — k-nearest-neighbour over quantized stored exemplars
//!   (LookNN-flavoured),
//!
//! plus the shared quantized-storage layer ([`QuantizedTensor`]) that
//! exposes every model's weights as a raw bit image. Each model implements
//! [`Classifier`] for evaluation and [`BitStoredModel`] for fault injection.
//!
//! # Example
//!
//! ```
//! use baselines::{Classifier, Mlp, MlpConfig};
//! use synthdata::{DatasetSpec, GeneratorConfig};
//!
//! let data = GeneratorConfig::new(5).generate(&DatasetSpec::pecan().with_sizes(150, 60));
//! let model = Mlp::fit(&MlpConfig::default(), &data.train);
//! let accuracy = baselines::accuracy(&model, &data.test);
//! assert!(accuracy > 0.7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod adaboost;
mod classifier;
mod fixedpoint;
mod knn;
mod mlp;
mod storage;
mod svm;

pub use adaboost::{AdaBoost, AdaBoostConfig};
pub use classifier::{accuracy, BitStoredModel, Classifier};
pub use fixedpoint::Fixed8Codec;
pub use knn::{Knn, KnnConfig};
pub use mlp::{Mlp, MlpConfig};
pub use storage::QuantizedTensor;
pub use svm::{LinearSvm, SvmConfig};
