use synthdata::Sample;

/// A trained classifier over raw feature vectors.
pub trait Classifier {
    /// Predicts the label of one feature vector.
    ///
    /// # Panics
    ///
    /// Implementations panic if the feature count differs from training.
    fn predict(&self, features: &[f64]) -> usize;

    /// Number of classes the model distinguishes.
    fn num_classes(&self) -> usize;
}

/// A model whose deployed weights live in an attackable bit image.
///
/// `to_image` serializes the quantized weights to `u64` words;
/// `load_image` re-deploys (possibly corrupted) words. `field_bits` tells
/// targeted attacks where each stored field's MSB is.
pub trait BitStoredModel {
    /// Serializes the deployed weights into a word image.
    fn to_image(&self) -> Vec<u64>;

    /// Number of meaningful bits in the image.
    fn bit_len(&self) -> usize;

    /// Replaces the deployed weights from a (possibly corrupted) image.
    ///
    /// # Panics
    ///
    /// Implementations panic if the image is shorter than
    /// [`BitStoredModel::bit_len`] requires.
    fn load_image(&mut self, image: &[u64]);

    /// Width of each stored field in bits (8 for the fixed-point models).
    fn field_bits(&self) -> usize;
}

/// Accuracy of a classifier over labelled samples.
///
/// # Panics
///
/// Panics if `samples` is empty.
///
/// # Example
///
/// ```
/// use baselines::{accuracy, Classifier};
///
/// struct Majority;
/// impl Classifier for Majority {
///     fn predict(&self, _: &[f64]) -> usize {
///         0
///     }
///     fn num_classes(&self) -> usize {
///         2
///     }
/// }
/// let samples = vec![
///     synthdata::Sample { features: vec![0.0], label: 0 },
///     synthdata::Sample { features: vec![1.0], label: 1 },
/// ];
/// assert_eq!(accuracy(&Majority, &samples), 0.5);
/// ```
pub fn accuracy<C: Classifier + ?Sized>(model: &C, samples: &[Sample]) -> f64 {
    assert!(!samples.is_empty(), "cannot score an empty evaluation set");
    let correct = samples
        .iter()
        .filter(|s| model.predict(&s.features) == s.label)
        .count();
    correct as f64 / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Constant(usize);

    impl Classifier for Constant {
        fn predict(&self, _: &[f64]) -> usize {
            self.0
        }
        fn num_classes(&self) -> usize {
            3
        }
    }

    #[test]
    fn accuracy_scores_constant_model() {
        let samples: Vec<Sample> = (0..10)
            .map(|i| Sample {
                features: vec![0.0],
                label: i % 3,
            })
            .collect();
        let acc = accuracy(&Constant(0), &samples);
        assert!((acc - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty evaluation set")]
    fn empty_set_panics() {
        accuracy(&Constant(0), &[]);
    }
}
