use crate::fixedpoint::Fixed8Codec;
use serde::{Deserialize, Serialize};

/// A quantized weight tensor: `i8` storage plus its codec.
///
/// This is the deployed form of every baseline model's parameters — the
/// memory image that bit-flip attacks corrupt. Words are packed 8 bytes per
/// `u64`, little-endian within the word, so byte `i` of the tensor occupies
/// stored bits `8 i .. 8 i + 8` (bit `8 i + 7` is the sign/MSB a targeted
/// attack goes for).
///
/// # Example
///
/// ```
/// use baselines::QuantizedTensor;
///
/// let tensor = QuantizedTensor::quantize(&[0.5, -0.25, 1.0]);
/// let values = tensor.dequantize();
/// assert!((values[0] - 0.5).abs() < 0.01);
/// let mut image = tensor.to_words();
/// image[0] ^= 1 << 7; // flip the sign bit of weight 0
/// let mut corrupted = tensor.clone();
/// corrupted.load_words(&image);
/// assert!(corrupted.dequantize()[0] < -0.4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedTensor {
    data: Vec<i8>,
    codec: Fixed8Codec,
}

impl QuantizedTensor {
    /// Quantizes a real-valued slice with a max-abs-fitted codec.
    pub fn quantize(values: &[f64]) -> Self {
        let codec = Fixed8Codec::fit(values);
        Self {
            data: values.iter().map(|&v| codec.encode(v)).collect(),
            codec,
        }
    }

    /// Number of stored weights.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor holds no weights.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The codec used for dequantization.
    pub fn codec(&self) -> Fixed8Codec {
        self.codec
    }

    /// Dequantizes every weight.
    pub fn dequantize(&self) -> Vec<f64> {
        self.data.iter().map(|&q| self.codec.decode(q)).collect()
    }

    /// Dequantizes one weight.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn get(&self, index: usize) -> f64 {
        self.codec.decode(self.data[index])
    }

    /// Number of stored bits (8 per weight).
    pub fn bit_len(&self) -> usize {
        self.data.len() * 8
    }

    /// Packs the bytes into `u64` words (8 bytes per word, little-endian).
    pub fn to_words(&self) -> Vec<u64> {
        let mut words = vec![0u64; self.data.len().div_ceil(8)];
        for (i, &b) in self.data.iter().enumerate() {
            words[i / 8] |= (b as u8 as u64) << ((i % 8) * 8);
        }
        words
    }

    /// Reloads the bytes from a (possibly corrupted) word image.
    ///
    /// # Panics
    ///
    /// Panics if `words` is shorter than [`QuantizedTensor::to_words`]
    /// produces.
    pub fn load_words(&mut self, words: &[u64]) {
        assert!(
            words.len() >= self.data.len().div_ceil(8),
            "image has {} words, need {}",
            words.len(),
            self.data.len().div_ceil(8)
        );
        for (i, b) in self.data.iter_mut().enumerate() {
            *b = ((words[i / 8] >> ((i % 8) * 8)) & 0xff) as u8 as i8;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_dequantize_roundtrip() {
        let values = [0.5, -0.25, 1.0, 0.0, -1.0];
        let tensor = QuantizedTensor::quantize(&values);
        for (orig, deq) in values.iter().zip(tensor.dequantize()) {
            assert!((orig - deq).abs() < 0.01, "{orig} vs {deq}");
        }
    }

    #[test]
    fn words_roundtrip() {
        let tensor =
            QuantizedTensor::quantize(&[0.1, -0.9, 0.33, 0.72, -0.01, 0.5, 0.6, -0.7, 0.8]);
        let words = tensor.to_words();
        assert_eq!(words.len(), 2);
        let mut copy = tensor.clone();
        copy.load_words(&words);
        assert_eq!(copy, tensor);
    }

    #[test]
    fn bit_len_is_eight_per_weight() {
        assert_eq!(QuantizedTensor::quantize(&[0.0; 10]).bit_len(), 80);
    }

    #[test]
    fn sign_bit_position_matches_layout() {
        // Weight i's sign bit must be stored bit 8 i + 7.
        let tensor = QuantizedTensor::quantize(&[0.5, 0.5, 0.5]);
        for i in 0..3 {
            let mut words = tensor.to_words();
            let pos = 8 * i + 7;
            words[pos / 64] ^= 1 << (pos % 64);
            let mut corrupted = tensor.clone();
            corrupted.load_words(&words);
            assert!(
                corrupted.get(i) < 0.0,
                "flipping bit {pos} did not negate weight {i}"
            );
            // Other weights untouched.
            for j in 0..3 {
                if j != i {
                    assert_eq!(corrupted.get(j), tensor.get(j));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "need")]
    fn short_image_panics() {
        QuantizedTensor::quantize(&[0.0; 9]).load_words(&[0u64; 1]);
    }
}
