//! k-nearest-neighbour baseline with quantized exemplar storage
//! (LookNN-flavoured — the paper's network configurations reference
//! multiplication-free lookup classification).
//!
//! Unlike the parametric baselines, kNN's "model" *is* its stored training
//! exemplars; attacking the memory corrupts the reference points
//! themselves. Robustness-wise it sits in interesting territory: each
//! exemplar is 8-bit fixed point (MSB flips hurl points across feature
//! space), but a prediction consults `k` neighbours, so a corrupted
//! exemplar only sways queries it lands near.

use crate::classifier::{BitStoredModel, Classifier};
use crate::storage::QuantizedTensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use synthdata::Sample;

/// Hyperparameters of the kNN baseline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KnnConfig {
    /// Neighbours consulted per query.
    pub k: usize,
    /// Maximum stored exemplars (subsamples the training set when
    /// exceeded; 0 = keep everything).
    pub max_exemplars: usize,
    /// Subsampling seed.
    pub seed: u64,
}

impl Default for KnnConfig {
    fn default() -> Self {
        Self {
            k: 5,
            max_exemplars: 2_000,
            seed: 0,
        }
    }
}

/// kNN over 8-bit quantized exemplars.
///
/// # Example
///
/// ```
/// use baselines::{accuracy, Knn, KnnConfig};
/// use synthdata::{DatasetSpec, GeneratorConfig};
///
/// let data = GeneratorConfig::new(4).generate(&DatasetSpec::pecan().with_sizes(150, 60));
/// let model = Knn::fit(&KnnConfig::default(), &data.train);
/// assert!(accuracy(&model, &data.test) > 0.8);
/// ```
#[derive(Debug, Clone)]
pub struct Knn {
    /// All exemplar features, row-major `[exemplar][feature]`, quantized.
    exemplars: QuantizedTensor,
    labels: Vec<usize>,
    features: usize,
    classes: usize,
    k: usize,
}

impl Knn {
    /// Stores (a subsample of) the training set as quantized exemplars.
    ///
    /// # Panics
    ///
    /// Panics if `train` is empty, `k` is zero, or feature counts are
    /// inconsistent.
    pub fn fit(config: &KnnConfig, train: &[Sample]) -> Self {
        assert!(!train.is_empty(), "training set must not be empty");
        assert!(config.k > 0, "k must be positive");
        let features = train[0].features.len();
        assert!(
            train.iter().all(|s| s.features.len() == features),
            "inconsistent feature counts in training data"
        );
        let classes = train.iter().map(|s| s.label).max().expect("nonempty") + 1;

        // A seeded shuffle avoids aliasing against any periodic label
        // layout (an even stride would sample one class of round-robin
        // data).
        let keep: Vec<&Sample> = if config.max_exemplars > 0 && train.len() > config.max_exemplars {
            let mut indices: Vec<usize> = (0..train.len()).collect();
            indices.shuffle(&mut StdRng::seed_from_u64(config.seed));
            indices.truncate(config.max_exemplars);
            indices.into_iter().map(|i| &train[i]).collect()
        } else {
            train.iter().collect()
        };

        let mut flat = Vec::with_capacity(keep.len() * features);
        let mut labels = Vec::with_capacity(keep.len());
        for sample in keep {
            flat.extend_from_slice(&sample.features);
            labels.push(sample.label);
        }
        Self {
            exemplars: QuantizedTensor::quantize(&flat),
            labels,
            features,
            classes,
            k: config.k,
        }
    }

    /// Number of stored exemplars.
    pub fn exemplar_count(&self) -> usize {
        self.labels.len()
    }

    /// Squared Euclidean distance from `features` to stored exemplar `row`.
    fn distance2(&self, row: usize, features: &[f64]) -> f64 {
        let base = row * self.features;
        features
            .iter()
            .enumerate()
            .map(|(j, &x)| {
                let e = self.exemplars.get(base + j);
                (x - e) * (x - e)
            })
            .sum()
    }
}

impl Classifier for Knn {
    fn predict(&self, features: &[f64]) -> usize {
        assert_eq!(
            features.len(),
            self.features,
            "expected {} features, got {}",
            self.features,
            features.len()
        );
        // Collect the k nearest by a partial selection.
        let mut scored: Vec<(f64, usize)> = (0..self.exemplar_count())
            .map(|row| (self.distance2(row, features), self.labels[row]))
            .collect();
        let k = self.k.min(scored.len());
        scored.select_nth_unstable_by(k - 1, |a, b| {
            a.0.partial_cmp(&b.0).expect("finite distances")
        });
        let mut votes = vec![0usize; self.classes];
        for &(_, label) in scored.iter().take(k) {
            votes[label] += 1;
        }
        votes
            .iter()
            .enumerate()
            .max_by_key(|&(i, &v)| (v, std::cmp::Reverse(i)))
            .map(|(i, _)| i)
            .expect("at least one class")
    }

    fn num_classes(&self) -> usize {
        self.classes
    }
}

impl BitStoredModel for Knn {
    fn to_image(&self) -> Vec<u64> {
        self.exemplars.to_words()
    }

    fn bit_len(&self) -> usize {
        self.exemplars.bit_len()
    }

    fn load_image(&mut self, image: &[u64]) {
        self.exemplars.load_words(image);
    }

    fn field_bits(&self) -> usize {
        8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::accuracy;
    use synthdata::{DatasetSpec, GeneratorConfig};

    fn small_data() -> synthdata::Dataset {
        GeneratorConfig::new(9).generate(&DatasetSpec::pecan().with_sizes(180, 90))
    }

    #[test]
    fn learns_separable_data() {
        let data = small_data();
        let model = Knn::fit(&KnnConfig::default(), &data.train);
        let acc = accuracy(&model, &data.test);
        assert!(acc > 0.85, "kNN accuracy only {acc}");
    }

    #[test]
    fn subsampling_caps_exemplars_and_keeps_classes() {
        let data = small_data();
        let model = Knn::fit(
            &KnnConfig {
                k: 3,
                max_exemplars: 60,
                seed: 1,
            },
            &data.train,
        );
        assert_eq!(model.exemplar_count(), 60);
        let mut classes_present = vec![false; model.num_classes()];
        for &l in &model.labels {
            classes_present[l] = true;
        }
        assert!(classes_present.iter().all(|&p| p));
    }

    #[test]
    fn image_roundtrip_preserves_predictions() {
        let data = small_data();
        let mut model = Knn::fit(&KnnConfig::default(), &data.train);
        let image = model.to_image();
        let before: Vec<usize> = data
            .test
            .iter()
            .map(|s| model.predict(&s.features))
            .collect();
        model.load_image(&image);
        let after: Vec<usize> = data
            .test
            .iter()
            .map(|s| model.predict(&s.features))
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn knn_is_middling_under_random_attack() {
        // The k-vote gives kNN meaningful robustness: a 6% random attack
        // should cost it far less than the single-path DNN loses (compare
        // Table 3), but it still degrades measurably at heavy rates.
        use faultsim::Attacker;
        let data = small_data();
        let model = Knn::fit(&KnnConfig::default(), &data.train);
        let clean = accuracy(&model, &data.test);
        let attacked_at = |rate: f64| {
            let mut image = model.to_image();
            Attacker::seed_from(3).random_flips(&mut image, model.bit_len(), rate);
            let mut m = model.clone();
            m.load_image(&image);
            accuracy(&m, &data.test)
        };
        let mild = clean - attacked_at(0.06);
        let heavy = clean - attacked_at(0.4);
        assert!(mild < 0.15, "6% attack cost kNN {mild}");
        assert!(heavy > mild, "heavier attack should cost more");
    }

    #[test]
    fn k_one_matches_nearest_exemplar() {
        let data = small_data();
        let model = Knn::fit(
            &KnnConfig {
                k: 1,
                max_exemplars: 0,
                seed: 0,
            },
            &data.train,
        );
        // A training point must classify as its own label under k=1.
        for s in data.train.iter().take(20) {
            assert_eq!(model.predict(&s.features), s.label);
        }
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let data = small_data();
        Knn::fit(
            &KnnConfig {
                k: 0,
                max_exemplars: 0,
                seed: 0,
            },
            &data.train,
        );
    }
}
