use crate::classifier::{BitStoredModel, Classifier};
use crate::mlp::{argmax, pack_tensors, unpack_tensors};
use crate::storage::QuantizedTensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use synthdata::Sample;

/// Hyperparameters of the AdaBoost baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaBoostConfig {
    /// Boosting rounds per one-vs-rest classifier.
    pub rounds: usize,
    /// Random features examined per round (stump search subsampling).
    pub feature_samples: usize,
    /// Candidate thresholds per examined feature (uniform grid on `[0,1]`).
    pub threshold_grid: usize,
    /// Feature-subsampling seed.
    pub seed: u64,
}

impl Default for AdaBoostConfig {
    fn default() -> Self {
        Self {
            rounds: 50,
            feature_samples: 24,
            threshold_grid: 16,
            seed: 0,
        }
    }
}

/// The fixed (non-attacked) part of one decision stump: which feature it
/// splits and in which direction it votes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct StumpShape {
    feature: usize,
    /// `true`: vote +1 when `x[feature] < threshold`.
    polarity: bool,
}

/// One-vs-rest AdaBoost over decision stumps, deployed with 8-bit
/// quantized thresholds and vote weights.
///
/// Each stored parameter influences only a single weak learner whose vote
/// is bounded by its `alpha`, so AdaBoost sits between the fixed-point
/// linear models and HDC in bit-flip robustness — the ordering Table 3 of
/// the paper reports.
///
/// # Example
///
/// ```
/// use baselines::{accuracy, AdaBoost, AdaBoostConfig};
/// use synthdata::{DatasetSpec, GeneratorConfig};
///
/// let data = GeneratorConfig::new(8).generate(&DatasetSpec::pecan().with_sizes(150, 60));
/// let model = AdaBoost::fit(&AdaBoostConfig::default(), &data.train);
/// assert!(accuracy(&model, &data.test) > 0.7);
/// ```
#[derive(Debug, Clone)]
pub struct AdaBoost {
    /// `classes × rounds` stump shapes.
    shapes: Vec<StumpShape>,
    /// Quantized split thresholds, one per stump (attackable).
    thresholds: QuantizedTensor,
    /// Quantized vote weights, one per stump (attackable).
    alphas: QuantizedTensor,
    features: usize,
    classes: usize,
    rounds: usize,
}

impl AdaBoost {
    /// Trains one-vs-rest boosted stumps and quantizes the deployed
    /// parameters.
    ///
    /// # Panics
    ///
    /// Panics if `train` is empty, feature counts are inconsistent, or the
    /// config has zero rounds / feature samples / grid points.
    pub fn fit(config: &AdaBoostConfig, train: &[Sample]) -> Self {
        assert!(!train.is_empty(), "training set must not be empty");
        assert!(config.rounds > 0, "need at least one boosting round");
        assert!(
            config.feature_samples > 0,
            "need at least one feature sample"
        );
        assert!(config.threshold_grid > 0, "need at least one threshold");
        let features = train[0].features.len();
        assert!(
            train.iter().all(|s| s.features.len() == features),
            "inconsistent feature counts in training data"
        );
        let classes = train.iter().map(|s| s.label).max().expect("nonempty") + 1;

        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut shapes = Vec::with_capacity(classes * config.rounds);
        let mut thresholds = Vec::with_capacity(classes * config.rounds);
        let mut alphas = Vec::with_capacity(classes * config.rounds);

        for class in 0..classes {
            let labels: Vec<f64> = train
                .iter()
                .map(|s| if s.label == class { 1.0 } else { -1.0 })
                .collect();
            let mut weights = vec![1.0 / train.len() as f64; train.len()];
            for _ in 0..config.rounds {
                // Stump search over a random feature subset and a uniform
                // threshold grid.
                let mut best = (
                    f64::INFINITY,
                    StumpShape {
                        feature: 0,
                        polarity: true,
                    },
                    0.5,
                );
                for _ in 0..config.feature_samples.min(features) {
                    let feature = rng.random_range(0..features);
                    for g in 0..config.threshold_grid {
                        let threshold = (g as f64 + 0.5) / config.threshold_grid as f64;
                        // Weighted error of the polarity-true stump; the
                        // polarity-false stump has error 1 - err.
                        let mut err = 0.0;
                        for (sample, (&y, &w)) in train.iter().zip(labels.iter().zip(&weights)) {
                            let vote = if sample.features[feature] < threshold {
                                1.0
                            } else {
                                -1.0
                            };
                            if vote != y {
                                err += w;
                            }
                        }
                        let (e, polarity) = if err <= 0.5 {
                            (err, true)
                        } else {
                            (1.0 - err, false)
                        };
                        if e < best.0 {
                            best = (e, StumpShape { feature, polarity }, threshold);
                        }
                    }
                }
                let (err, shape, threshold) = best;
                let err = err.clamp(1e-10, 0.5 - 1e-10);
                let alpha = 0.5 * ((1.0 - err) / err).ln();
                // Re-weight samples.
                let mut total = 0.0;
                for (sample, (&y, w)) in train.iter().zip(labels.iter().zip(weights.iter_mut())) {
                    let vote =
                        stump_vote(sample.features[shape.feature], threshold, shape.polarity);
                    *w *= (-alpha * y * vote).exp();
                    total += *w;
                }
                for w in weights.iter_mut() {
                    *w /= total;
                }
                shapes.push(shape);
                thresholds.push(threshold);
                alphas.push(alpha);
            }
        }

        Self {
            shapes,
            thresholds: QuantizedTensor::quantize(&thresholds),
            alphas: QuantizedTensor::quantize(&alphas),
            features,
            classes,
            rounds: config.rounds,
        }
    }

    /// Per-class boosted scores with the deployed quantized parameters.
    ///
    /// # Panics
    ///
    /// Panics if the feature count differs from training.
    pub fn scores(&self, features: &[f64]) -> Vec<f64> {
        assert_eq!(
            features.len(),
            self.features,
            "expected {} features, got {}",
            self.features,
            features.len()
        );
        (0..self.classes)
            .map(|c| {
                (0..self.rounds)
                    .map(|t| {
                        let idx = c * self.rounds + t;
                        let shape = self.shapes[idx];
                        let threshold = self.thresholds.get(idx);
                        let alpha = self.alphas.get(idx);
                        alpha * stump_vote(features[shape.feature], threshold, shape.polarity)
                    })
                    .sum()
            })
            .collect()
    }

    /// Number of deployed (attackable) parameters: one threshold and one
    /// alpha per stump.
    pub fn parameter_count(&self) -> usize {
        self.thresholds.len() + self.alphas.len()
    }
}

fn stump_vote(value: f64, threshold: f64, polarity: bool) -> f64 {
    let below = value < threshold;
    if below == polarity {
        1.0
    } else {
        -1.0
    }
}

impl Classifier for AdaBoost {
    fn predict(&self, features: &[f64]) -> usize {
        argmax(&self.scores(features))
    }

    fn num_classes(&self) -> usize {
        self.classes
    }
}

impl BitStoredModel for AdaBoost {
    fn to_image(&self) -> Vec<u64> {
        pack_tensors(&[&self.thresholds, &self.alphas])
    }

    fn bit_len(&self) -> usize {
        self.parameter_count() * 8
    }

    fn load_image(&mut self, image: &[u64]) {
        unpack_tensors(image, [&mut self.thresholds, &mut self.alphas]);
    }

    fn field_bits(&self) -> usize {
        8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::accuracy;
    use synthdata::{DatasetSpec, GeneratorConfig};

    fn small_data() -> synthdata::Dataset {
        GeneratorConfig::new(6).generate(&DatasetSpec::pecan().with_sizes(180, 90))
    }

    fn quick_config() -> AdaBoostConfig {
        AdaBoostConfig {
            rounds: 30,
            ..AdaBoostConfig::default()
        }
    }

    #[test]
    fn learns_separable_data() {
        let data = small_data();
        let model = AdaBoost::fit(&quick_config(), &data.train);
        let acc = accuracy(&model, &data.test);
        assert!(acc > 0.75, "AdaBoost accuracy only {acc}");
    }

    #[test]
    fn training_is_deterministic() {
        let data = small_data();
        let a = AdaBoost::fit(&quick_config(), &data.train);
        let b = AdaBoost::fit(&quick_config(), &data.train);
        assert_eq!(a.to_image(), b.to_image());
        assert_eq!(a.shapes, b.shapes);
    }

    #[test]
    fn image_roundtrip_preserves_predictions() {
        let data = small_data();
        let mut model = AdaBoost::fit(&quick_config(), &data.train);
        let image = model.to_image();
        let before: Vec<usize> = data
            .test
            .iter()
            .map(|s| model.predict(&s.features))
            .collect();
        model.load_image(&image);
        let after: Vec<usize> = data
            .test
            .iter()
            .map(|s| model.predict(&s.features))
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn single_parameter_corruption_is_bounded() {
        // Flipping one alpha's MSB changes one weak vote, not the whole
        // model — accuracy can move, but predictions on clearly-classified
        // samples mostly survive. This is the mechanism behind AdaBoost's
        // intermediate robustness in Table 3.
        let data = small_data();
        let mut model = AdaBoost::fit(&quick_config(), &data.train);
        let clean_acc = accuracy(&model, &data.test);
        let mut image = model.to_image();
        let alpha0_msb = model.thresholds.len() * 8 + 7;
        image[alpha0_msb / 64] ^= 1 << (alpha0_msb % 64);
        model.load_image(&image);
        let corrupted_acc = accuracy(&model, &data.test);
        assert!(
            (clean_acc - corrupted_acc).abs() < 0.25,
            "single alpha flip moved accuracy {clean_acc} -> {corrupted_acc}"
        );
    }

    #[test]
    fn parameter_count_is_two_per_stump() {
        let data = small_data();
        let model = AdaBoost::fit(&quick_config(), &data.train);
        assert_eq!(model.parameter_count(), 2 * 3 * 30);
        assert_eq!(model.bit_len(), 2 * 3 * 30 * 8);
    }

    #[test]
    #[should_panic(expected = "at least one boosting round")]
    fn zero_rounds_panics() {
        let data = small_data();
        AdaBoost::fit(
            &AdaBoostConfig {
                rounds: 0,
                ..AdaBoostConfig::default()
            },
            &data.train,
        );
    }
}
