use serde::{Deserialize, Serialize};

/// Symmetric 8-bit fixed-point codec: real values in `[-scale, scale]` map
/// linearly to `i8`.
///
/// This is the quantization scheme of 8-bit inference accelerators. The
/// crucial robustness property (Section 2 of the paper): a flip of the
/// stored sign/MSB bit shifts the decoded value by `(128/127) × scale` —
/// the entire representable magnitude — which is why fixed-point models
/// collapse under targeted attacks while binary HDC models do not.
///
/// # Example
///
/// ```
/// use baselines::Fixed8Codec;
///
/// let codec = Fixed8Codec::from_max_abs(2.0);
/// let q = codec.encode(1.0);
/// assert!((codec.decode(q) - 1.0).abs() < 0.02);
/// // Flipping the sign bit of the stored byte is catastrophic:
/// let corrupted = codec.decode((q as u8 ^ 0x80) as i8);
/// // The MSB flip moved the weight by the full representable magnitude.
/// assert!((corrupted - codec.decode(q)).abs() > 1.9); // 128/127 * scale = 2.016
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fixed8Codec {
    scale: f64,
}

impl Fixed8Codec {
    /// Creates a codec whose representable magnitude is `max_abs`.
    ///
    /// # Panics
    ///
    /// Panics if `max_abs` is not positive and finite.
    pub fn from_max_abs(max_abs: f64) -> Self {
        assert!(
            max_abs.is_finite() && max_abs > 0.0,
            "scale {max_abs} must be positive and finite"
        );
        Self { scale: max_abs }
    }

    /// Builds a codec sized for a weight slice (scale = max |w|, or 1 for
    /// an all-zero slice).
    pub fn fit(values: &[f64]) -> Self {
        let max_abs = values.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        Self::from_max_abs(if max_abs > 0.0 { max_abs } else { 1.0 })
    }

    /// The representable magnitude.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Quantizes a real value (clamping to the representable range).
    pub fn encode(&self, value: f64) -> i8 {
        let q = (value / self.scale * 127.0).round();
        q.clamp(-127.0, 127.0) as i8
    }

    /// Dequantizes a stored byte. Accepts the full `i8` range, including
    /// `-128` produced only by bit flips.
    pub fn decode(&self, stored: i8) -> f64 {
        stored as f64 / 127.0 * self.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_error_is_within_half_step() {
        let codec = Fixed8Codec::from_max_abs(3.0);
        let step = 3.0 / 127.0;
        for i in -20..=20 {
            let v = i as f64 * 0.14;
            let err = (codec.decode(codec.encode(v)) - v).abs();
            assert!(err <= step / 2.0 + 1e-12, "value {v} error {err}");
        }
    }

    #[test]
    fn encode_clamps_out_of_range() {
        let codec = Fixed8Codec::from_max_abs(1.0);
        assert_eq!(codec.encode(5.0), 127);
        assert_eq!(codec.encode(-5.0), -127);
    }

    #[test]
    fn fit_uses_max_abs() {
        let codec = Fixed8Codec::fit(&[0.5, -2.5, 1.0]);
        assert_eq!(codec.scale(), 2.5);
        assert_eq!(codec.encode(2.5), 127);
    }

    #[test]
    fn fit_of_zeros_is_unit_scale() {
        let codec = Fixed8Codec::fit(&[0.0, 0.0]);
        assert_eq!(codec.scale(), 1.0);
    }

    #[test]
    fn msb_flip_is_catastrophic() {
        // An MSB flip always shifts the stored byte by 128 steps, i.e. the
        // decoded value by (128/127) * scale, regardless of the value.
        let codec = Fixed8Codec::from_max_abs(1.0);
        for v in [0.1, -0.4, 0.9] {
            let q = codec.encode(v);
            let flipped = (q as u8 ^ 0x80) as i8;
            let delta = (codec.decode(flipped) - codec.decode(q)).abs();
            assert!(
                (delta - 128.0 / 127.0).abs() < 1e-9,
                "MSB flip at {v} moved value by {delta}"
            );
        }
    }

    #[test]
    fn lsb_flip_is_negligible() {
        let codec = Fixed8Codec::from_max_abs(1.0);
        let q = codec.encode(0.1);
        let flipped = (q as u8 ^ 0x01) as i8;
        let delta = (codec.decode(flipped) - codec.decode(q)).abs();
        assert!(delta < 0.01, "LSB flip moved value by {delta}");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_scale_panics() {
        Fixed8Codec::from_max_abs(0.0);
    }
}
