use crate::classifier::{BitStoredModel, Classifier};
use crate::storage::QuantizedTensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use synthdata::Sample;

/// Hyperparameters of the DNN baseline.
///
/// The defaults (one 128-unit ReLU hidden layer, SGD with momentum) follow
/// the LookNN-style configurations the paper's DNN baselines use: small
/// dense networks appropriate for the tabular evaluation datasets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Hidden-layer width.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// SGD momentum coefficient.
    pub momentum: f64,
    /// Mini-batch size.
    pub batch: usize,
    /// Weight-initialization / shuffling seed.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self {
            hidden: 128,
            epochs: 30,
            learning_rate: 0.05,
            momentum: 0.9,
            batch: 16,
            seed: 0,
        }
    }
}

/// One-hidden-layer ReLU network, trained in `f64` and deployed with 8-bit
/// fixed-point weights.
///
/// The deployed (quantized) weights are what [`Mlp::predict`] uses and what
/// [`BitStoredModel`] exposes to fault injection — exactly the threat model
/// of the paper: the trained model sits in unreliable memory, inference
/// reads it in place.
///
/// # Example
///
/// ```
/// use baselines::{accuracy, Mlp, MlpConfig};
/// use synthdata::{DatasetSpec, GeneratorConfig};
///
/// let data = GeneratorConfig::new(1).generate(&DatasetSpec::pecan().with_sizes(150, 60));
/// let model = Mlp::fit(&MlpConfig { epochs: 20, ..MlpConfig::default() }, &data.train);
/// assert!(accuracy(&model, &data.test) > 0.7);
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    // Deployed quantized parameters.
    w1: QuantizedTensor,
    b1: QuantizedTensor,
    w2: QuantizedTensor,
    b2: QuantizedTensor,
    features: usize,
    hidden: usize,
    classes: usize,
}

impl Mlp {
    /// Trains on labelled samples and quantizes the result for deployment.
    ///
    /// # Panics
    ///
    /// Panics if `train` is empty, a sample has an inconsistent feature
    /// count, or the config has a zero-sized hidden layer or batch.
    pub fn fit(config: &MlpConfig, train: &[Sample]) -> Self {
        assert!(!train.is_empty(), "training set must not be empty");
        assert!(config.hidden > 0, "hidden layer must not be empty");
        assert!(config.batch > 0, "batch size must be positive");
        let features = train[0].features.len();
        assert!(
            train.iter().all(|s| s.features.len() == features),
            "inconsistent feature counts in training data"
        );
        let classes = train.iter().map(|s| s.label).max().expect("nonempty") + 1;
        let hidden = config.hidden;

        let mut rng = StdRng::seed_from_u64(config.seed);
        // He initialization for the ReLU layer, Xavier-ish for the output.
        let mut w1: Vec<f64> = (0..features * hidden)
            .map(|_| normal(&mut rng) * (2.0 / features as f64).sqrt())
            .collect();
        let mut b1 = vec![0.0f64; hidden];
        let mut w2: Vec<f64> = (0..hidden * classes)
            .map(|_| normal(&mut rng) * (1.0 / hidden as f64).sqrt())
            .collect();
        let mut b2 = vec![0.0f64; classes];
        let mut v_w1 = vec![0.0f64; w1.len()];
        let mut v_b1 = vec![0.0f64; b1.len()];
        let mut v_w2 = vec![0.0f64; w2.len()];
        let mut v_b2 = vec![0.0f64; b2.len()];

        let mut order: Vec<usize> = (0..train.len()).collect();
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for batch in order.chunks(config.batch) {
                let mut g_w1 = vec![0.0f64; w1.len()];
                let mut g_b1 = vec![0.0f64; b1.len()];
                let mut g_w2 = vec![0.0f64; w2.len()];
                let mut g_b2 = vec![0.0f64; b2.len()];
                for &idx in batch {
                    let sample = &train[idx];
                    // Forward.
                    let mut h = vec![0.0f64; hidden];
                    for (j, hj) in h.iter_mut().enumerate() {
                        let mut sum = b1[j];
                        for (i, &x) in sample.features.iter().enumerate() {
                            sum += w1[i * hidden + j] * x;
                        }
                        *hj = sum.max(0.0);
                    }
                    let mut logits = vec![0.0f64; classes];
                    for (c, logit) in logits.iter_mut().enumerate() {
                        let mut sum = b2[c];
                        for (j, &hj) in h.iter().enumerate() {
                            sum += w2[j * classes + c] * hj;
                        }
                        *logit = sum;
                    }
                    let probs = softmax(&logits);
                    // Backward (cross-entropy).
                    let mut d_logits = probs;
                    d_logits[sample.label] -= 1.0;
                    let mut d_h = vec![0.0f64; hidden];
                    for (c, &dl) in d_logits.iter().enumerate() {
                        g_b2[c] += dl;
                        for (j, &hj) in h.iter().enumerate() {
                            g_w2[j * classes + c] += dl * hj;
                            d_h[j] += dl * w2[j * classes + c];
                        }
                    }
                    for (j, &dh) in d_h.iter().enumerate() {
                        if h[j] > 0.0 {
                            g_b1[j] += dh;
                            for (i, &x) in sample.features.iter().enumerate() {
                                g_w1[i * hidden + j] += dh * x;
                            }
                        }
                    }
                }
                let lr = config.learning_rate / batch.len() as f64;
                let mu = config.momentum;
                sgd_step(&mut w1, &mut v_w1, &g_w1, lr, mu);
                sgd_step(&mut b1, &mut v_b1, &g_b1, lr, mu);
                sgd_step(&mut w2, &mut v_w2, &g_w2, lr, mu);
                sgd_step(&mut b2, &mut v_b2, &g_b2, lr, mu);
            }
        }

        Self {
            w1: QuantizedTensor::quantize(&w1),
            b1: QuantizedTensor::quantize(&b1),
            w2: QuantizedTensor::quantize(&w2),
            b2: QuantizedTensor::quantize(&b2),
            features,
            hidden,
            classes,
        }
    }

    /// Per-class logits with the deployed quantized weights.
    ///
    /// # Panics
    ///
    /// Panics if the feature count differs from training.
    pub fn logits(&self, features: &[f64]) -> Vec<f64> {
        assert_eq!(
            features.len(),
            self.features,
            "expected {} features, got {}",
            self.features,
            features.len()
        );
        let w1 = self.w1.dequantize();
        let b1 = self.b1.dequantize();
        let w2 = self.w2.dequantize();
        let b2 = self.b2.dequantize();
        let mut h = vec![0.0f64; self.hidden];
        for (j, hj) in h.iter_mut().enumerate() {
            let mut sum = b1[j];
            for (i, &x) in features.iter().enumerate() {
                sum += w1[i * self.hidden + j] * x;
            }
            *hj = sum.max(0.0);
        }
        let mut logits = vec![0.0f64; self.classes];
        for (c, logit) in logits.iter_mut().enumerate() {
            let mut sum = b2[c];
            for (j, &hj) in h.iter().enumerate() {
                sum += w2[j * self.classes + c] * hj;
            }
            *logit = sum;
        }
        logits
    }

    /// Total number of deployed weights.
    pub fn parameter_count(&self) -> usize {
        self.w1.len() + self.b1.len() + self.w2.len() + self.b2.len()
    }
}

impl Classifier for Mlp {
    fn predict(&self, features: &[f64]) -> usize {
        argmax(&self.logits(features))
    }

    fn num_classes(&self) -> usize {
        self.classes
    }
}

impl BitStoredModel for Mlp {
    fn to_image(&self) -> Vec<u64> {
        pack_tensors(&[&self.w1, &self.b1, &self.w2, &self.b2])
    }

    fn bit_len(&self) -> usize {
        self.parameter_count() * 8
    }

    fn load_image(&mut self, image: &[u64]) {
        unpack_tensors(
            image,
            [&mut self.w1, &mut self.b1, &mut self.w2, &mut self.b2],
        );
    }

    fn field_bits(&self) -> usize {
        8
    }
}

/// Concatenates tensors byte-contiguously into one word image.
pub(crate) fn pack_tensors(tensors: &[&QuantizedTensor]) -> Vec<u64> {
    let total: usize = tensors.iter().map(|t| t.len()).sum();
    let mut bytes = Vec::with_capacity(total);
    for t in tensors {
        let words = t.to_words();
        for i in 0..t.len() {
            bytes.push(((words[i / 8] >> ((i % 8) * 8)) & 0xff) as u8);
        }
    }
    let mut image = vec![0u64; total.div_ceil(8)];
    for (i, &b) in bytes.iter().enumerate() {
        image[i / 8] |= (b as u64) << ((i % 8) * 8);
    }
    image
}

/// Splits a concatenated byte image back into the tensors.
///
/// # Panics
///
/// Panics if the image is too short.
pub(crate) fn unpack_tensors<const N: usize>(image: &[u64], tensors: [&mut QuantizedTensor; N]) {
    let total: usize = tensors.iter().map(|t| t.len()).sum();
    assert!(
        image.len() * 8 >= total,
        "image has {} bytes, need {total}",
        image.len() * 8
    );
    let mut offset = 0usize;
    for t in tensors {
        let len = t.len();
        let mut words = vec![0u64; len.div_ceil(8)];
        for i in 0..len {
            let byte = (image[(offset + i) / 8] >> (((offset + i) % 8) * 8)) & 0xff;
            words[i / 8] |= byte << ((i % 8) * 8);
        }
        t.load_words(&words);
        offset += len;
    }
}

pub(crate) fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

pub(crate) fn argmax(values: &[f64]) -> usize {
    values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite values"))
        .map(|(i, _)| i)
        .expect("nonempty")
}

fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

fn sgd_step(params: &mut [f64], velocity: &mut [f64], grads: &[f64], lr: f64, momentum: f64) {
    for ((p, v), g) in params.iter_mut().zip(velocity).zip(grads) {
        *v = momentum * *v - lr * g;
        *p += *v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::accuracy;
    use synthdata::{DatasetSpec, GeneratorConfig};

    fn small_data() -> synthdata::Dataset {
        GeneratorConfig::new(3).generate(&DatasetSpec::pecan().with_sizes(180, 90))
    }

    fn quick_config() -> MlpConfig {
        MlpConfig {
            hidden: 32,
            epochs: 15,
            ..MlpConfig::default()
        }
    }

    #[test]
    fn learns_separable_data() {
        let data = small_data();
        let model = Mlp::fit(&quick_config(), &data.train);
        let acc = accuracy(&model, &data.test);
        assert!(acc > 0.8, "MLP accuracy only {acc}");
    }

    #[test]
    fn training_is_deterministic() {
        let data = small_data();
        let a = Mlp::fit(&quick_config(), &data.train);
        let b = Mlp::fit(&quick_config(), &data.train);
        assert_eq!(a.to_image(), b.to_image());
    }

    #[test]
    fn image_roundtrips() {
        let data = small_data();
        let mut model = Mlp::fit(&quick_config(), &data.train);
        let image = model.to_image();
        let before: Vec<usize> = data
            .test
            .iter()
            .map(|s| model.predict(&s.features))
            .collect();
        model.load_image(&image);
        let after: Vec<usize> = data
            .test
            .iter()
            .map(|s| model.predict(&s.features))
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn bit_len_matches_parameters() {
        let data = small_data();
        let model = Mlp::fit(&quick_config(), &data.train);
        let expected = (data.spec.features * 32 + 32 + 32 * 3 + 3) * 8;
        assert_eq!(model.bit_len(), expected);
        assert_eq!(model.field_bits(), 8);
        assert!(model.to_image().len() * 64 >= model.bit_len());
    }

    #[test]
    fn corrupting_image_changes_predictions_eventually() {
        let data = small_data();
        let mut model = Mlp::fit(&quick_config(), &data.train);
        let clean_acc = accuracy(&model, &data.test);
        let mut image = model.to_image();
        // Flip every stored sign bit — a worst-case wipeout.
        for (i, word) in image.iter_mut().enumerate() {
            if i * 64 < model.bit_len() {
                *word ^= 0x8080_8080_8080_8080;
            }
        }
        model.load_image(&image);
        let corrupted_acc = accuracy(&model, &data.test);
        assert!(
            corrupted_acc < clean_acc,
            "sign wipeout did not hurt: {clean_acc} -> {corrupted_acc}"
        );
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_training_panics() {
        Mlp::fit(&MlpConfig::default(), &[]);
    }

    #[test]
    #[should_panic(expected = "expected")]
    fn wrong_feature_count_panics() {
        let data = small_data();
        let model = Mlp::fit(&quick_config(), &data.train);
        model.predict(&[0.0]);
    }
}
