//! Property-based tests of the fixed-point storage layer.

use baselines::{Fixed8Codec, QuantizedTensor};
use proptest::prelude::*;

proptest! {
    /// Quantize→dequantize error is bounded by half a step for in-range
    /// values, at any scale.
    #[test]
    fn codec_error_bound(scale in 0.01f64..1e4, frac in -1.0f64..=1.0) {
        let codec = Fixed8Codec::from_max_abs(scale);
        let value = frac * scale;
        let roundtrip = codec.decode(codec.encode(value));
        prop_assert!((roundtrip - value).abs() <= scale / 127.0 / 2.0 + 1e-9);
    }

    /// Encode clamps: the decoded magnitude never exceeds the scale (plus
    /// the -128 fault case, which encode never produces).
    #[test]
    fn encode_never_exceeds_scale(scale in 0.01f64..1e4, value in -1e6f64..1e6) {
        let codec = Fixed8Codec::from_max_abs(scale);
        let decoded = codec.decode(codec.encode(value));
        prop_assert!(decoded.abs() <= scale + 1e-9);
    }

    /// Tensor word images round-trip bit-exactly for any length.
    #[test]
    fn tensor_words_roundtrip(values in prop::collection::vec(-5.0f64..5.0, 1..64)) {
        let tensor = QuantizedTensor::quantize(&values);
        let mut copy = tensor.clone();
        copy.load_words(&tensor.to_words());
        prop_assert_eq!(copy, tensor);
    }

    /// Flipping stored bit `8 i + 7` (a sign bit) changes weight `i` by the
    /// full representable magnitude and touches no other weight.
    #[test]
    fn sign_flip_locality(values in prop::collection::vec(-1.0f64..1.0, 1..32), pick in any::<usize>()) {
        let tensor = QuantizedTensor::quantize(&values);
        let i = pick % values.len();
        let mut words = tensor.to_words();
        let pos = 8 * i + 7;
        words[pos / 64] ^= 1 << (pos % 64);
        let mut corrupted = tensor.clone();
        corrupted.load_words(&words);
        for j in 0..values.len() {
            if j == i {
                let delta = (corrupted.get(j) - tensor.get(j)).abs();
                prop_assert!(delta > tensor.codec().scale() * 0.99, "delta {} too small", delta);
            } else {
                prop_assert_eq!(corrupted.get(j), tensor.get(j));
            }
        }
    }
}
