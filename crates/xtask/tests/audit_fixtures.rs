//! Each fixture under `tests/fixtures/audit_*` is a miniature workspace
//! with exactly one deliberate audit violation (or none, for
//! `audit_clean`); every audit family must fire exactly once, on the
//! right file and line, and nowhere else. The final tests run the full
//! auditor over the real workspace — the merge gate: `cargo xtask
//! audit` must be green on the actual repo.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use xtask::audit::{run, AuditReport};
use xtask::Diagnostic;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn audit_fixture(name: &str) -> AuditReport {
    run(&fixture(name)).expect("fixture workspace must load")
}

/// Asserts the fixture yields exactly one finding and returns it.
fn single(name: &str) -> Diagnostic {
    let mut report = audit_fixture(name);
    assert_eq!(
        report.findings.len(),
        1,
        "fixture `{name}` must fire exactly one finding, got: {:#?}",
        report.findings
    );
    report.findings.pop().expect("len checked above")
}

#[test]
fn clean_fixture_is_silent_and_honors_its_allow() {
    let report = audit_fixture("audit_clean");
    assert!(
        report.findings.is_empty(),
        "clean fixture must produce no findings, got: {:#?}",
        report.findings
    );
    assert_eq!(report.allows, 1, "the one annotation must be honored");
    assert!(
        report.roots.iter().any(|r| r.name == "submit"),
        "the coalescer submit root must resolve, got: {:#?}",
        report.roots
    );
}

#[test]
fn reachable_unwrap_fires_audit_panic() {
    let d = single("audit_reachable_unwrap");
    assert_eq!(d.lint, "audit-panic");
    assert_eq!(d.file, Path::new("crates/serve/src/coalescer.rs"));
    assert_eq!(d.line, 15, "must point at the helper's `.unwrap()`");
    assert!(
        d.message.contains("hot-path root `submit`"),
        "message names the witness root: {}",
        d.message
    );
    assert!(
        d.message.contains("`pop_now`"),
        "message names the offending function: {}",
        d.message
    );
}

#[test]
fn unannotated_indexing_fires_audit_panic() {
    let d = single("audit_unannotated_index");
    assert_eq!(d.lint, "audit-panic");
    assert_eq!(d.file, Path::new("crates/serve/src/coalescer.rs"));
    assert_eq!(d.line, 10, "must point at the `slots[lane]` indexing");
    assert!(
        d.message.contains("indexing"),
        "message names the construct: {}",
        d.message
    );
}

#[test]
fn lock_order_cycle_fires_audit_lock_cycle() {
    let d = single("audit_lock_cycle");
    assert_eq!(d.lint, "audit-lock-cycle");
    assert_eq!(d.file, Path::new("crates/serve/src/state.rs"));
    assert!(
        d.message.contains("conns") && d.message.contains("stats"),
        "message names both locks of the cycle: {}",
        d.message
    );
}

#[test]
fn engine_call_under_lock_fires_audit_lock_engine() {
    let d = single("audit_lock_engine");
    assert_eq!(d.lint, "audit-lock-engine");
    assert_eq!(d.file, Path::new("crates/serve/src/engine.rs"));
    assert_eq!(d.line, 11, "must point at the engine call, not the lock");
    assert!(
        d.message.contains("`serve_scored`") && d.message.contains("`state`"),
        "message names the call and the held lock: {}",
        d.message
    );
}

#[test]
fn naked_condvar_wait_fires_audit_condvar_wait() {
    let d = single("audit_condvar_wait");
    assert_eq!(d.lint, "audit-condvar-wait");
    assert_eq!(d.file, Path::new("crates/serve/src/notify.rs"));
    assert_eq!(d.line, 12, "must point at the `.wait(…)` call");
}

#[test]
fn stale_allow_fires_audit_stale_allow() {
    let d = single("audit_stale_allow");
    assert_eq!(d.lint, "audit-stale-allow");
    assert_eq!(d.file, Path::new("crates/core/src/fleet.rs"));
    assert_eq!(d.line, 4, "must point at the annotation itself");
}

#[test]
fn json_report_carries_roots_findings_and_allow_count() {
    let json = audit_fixture("audit_reachable_unwrap").to_json();
    assert!(json.contains("\"kind\": \"audit-panic\""), "{json}");
    assert!(
        json.contains("\"file\": \"crates/serve/src/coalescer.rs\""),
        "{json}"
    );
    assert!(json.contains("\"name\": \"submit\""), "{json}");
    assert!(json.contains("\"allow_count\": 0"), "{json}");
    assert!(json.contains("\"finding_count\": 1"), "{json}");
}

/// The merge gate: the auditor must be green on the real repository —
/// zero unannotated panic sites reachable from the hot-path roots, no
/// lock-discipline violations, no stale allows.
#[test]
fn workspace_is_audit_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = run(&root).expect("real workspace must load");
    assert!(
        report.findings.is_empty(),
        "`cargo xtask audit` must be clean on the real workspace, got: {:#?}",
        report.findings
    );
    assert!(
        report.roots.len() >= 15,
        "the hot-path roots must resolve in the real tree, got: {:#?}",
        report.roots
    );
    assert!(report.allows > 0, "the triaged tree carries honored allows");
}
