//! Each fixture under `tests/fixtures/` is a miniature workspace with
//! exactly one deliberate violation (or none, for `clean`); every lint
//! must fire exactly once, on the right file and line, and nowhere else.
//! The final test runs the full engine over the real workspace — the
//! merge gate: `cargo xtask lint` must be green on the actual repo.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use xtask::{run_all, Diagnostic};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn lint_fixture(name: &str) -> Vec<Diagnostic> {
    run_all(&fixture(name)).expect("fixture workspace must load")
}

/// Asserts the fixture yields exactly one diagnostic and returns it.
fn single(name: &str) -> Diagnostic {
    let diagnostics = lint_fixture(name);
    assert_eq!(
        diagnostics.len(),
        1,
        "fixture `{name}` must fire exactly one diagnostic, got: {diagnostics:#?}"
    );
    diagnostics.into_iter().next().expect("len checked above")
}

#[test]
fn clean_fixture_is_silent() {
    let diagnostics = lint_fixture("clean");
    assert!(
        diagnostics.is_empty(),
        "clean fixture must produce no diagnostics, got: {diagnostics:#?}"
    );
}

#[test]
fn unsafe_block_fires_unsafe_code() {
    let d = single("unsafe_block");
    assert_eq!(d.lint, "unsafe-code");
    assert_eq!(d.file, Path::new("src/lib.rs"));
    assert_eq!(
        d.line, 7,
        "must point at the `unsafe` block, not the forbid"
    );
    assert_eq!(d.to_string().lines().count(), 1);
    assert!(d
        .to_string()
        .starts_with("error[unsafe-code]: src/lib.rs:7: "));
}

#[test]
fn missing_forbid_fires_unsafe_forbid() {
    let d = single("missing_forbid");
    assert_eq!(d.lint, "unsafe-forbid");
    assert_eq!(d.file, Path::new("src/lib.rs"));
    assert_eq!(d.line, 1);
}

#[test]
fn unregistered_flag_fires_env_read() {
    let d = single("unregistered_flag");
    assert_eq!(d.lint, "flag-env-read");
    assert_eq!(d.file, Path::new("src/lib.rs"));
    assert_eq!(d.line, 7, "must point at the std::env::var call");
    assert!(
        d.message.contains("config.rs"),
        "message names the flag module"
    );
}

#[test]
fn readme_drift_fires_on_the_stale_row() {
    let d = single("readme_drift");
    assert_eq!(d.lint, "flag-readme");
    assert_eq!(d.file, Path::new("README.md"));
    assert_eq!(d.line, 6, "must point at the ROBUSTHD_GHOST row");
    assert!(d.message.contains("ROBUSTHD_GHOST"));
}

#[test]
fn undocumented_fast_path_fires_duality() {
    let d = single("undocumented_fast_path");
    assert_eq!(d.lint, "fast-duality");
    assert_eq!(d.file, Path::new("crates/core/src/config.rs"));
    assert_eq!(d.line, 4, "must point at the FooConfig declaration");
    assert!(d.message.contains("FooConfig"));
}

#[test]
fn float_eq_in_kernel_fires() {
    let d = single("float_eq_kernel");
    assert_eq!(d.lint, "kernel-float-eq");
    assert_eq!(d.file, Path::new("crates/core/src/batch.rs"));
    assert_eq!(d.line, 4);
}

#[test]
fn kernel_unwrap_fires_outside_tests_only() {
    let d = single("kernel_unwrap");
    assert_eq!(d.lint, "kernel-unwrap");
    assert_eq!(d.file, Path::new("crates/hypervector/src/similarity.rs"));
    assert_eq!(d.line, 5, "the unwrap inside #[cfg(test)] must NOT fire");
}

#[test]
fn kernel_cast_fires_on_truncating_round() {
    let d = single("kernel_cast");
    assert_eq!(d.lint, "kernel-cast");
    assert_eq!(d.file, Path::new("crates/core/src/train.rs"));
    assert_eq!(d.line, 5);
    assert!(
        d.message.contains("round_to_"),
        "message points at the checked API"
    );
}

#[test]
fn kernel_bit_loop_fires() {
    let d = single("kernel_bit_loop");
    assert_eq!(d.lint, "kernel-bit-loop");
    assert_eq!(d.file, Path::new("crates/hypervector/src/bitvec.rs"));
    assert_eq!(d.line, 7);
}

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let diagnostics = run_all(&root).expect("workspace must load");
    assert!(
        diagnostics.is_empty(),
        "the real workspace must pass its own lints:\n{}",
        diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
