//! Fixture: an ABBA lock-order cycle — `refresh` takes `stats` then
//! `conns`, `report` takes `conns` then `stats`.

pub struct Shared {
    stats: Mutex,
    conns: Mutex,
}

impl Shared {
    pub fn refresh(&self) -> usize {
        let stats = self.stats.lock();
        let conns = self.conns.lock();
        stats + conns
    }

    pub fn report(&self) -> usize {
        let conns = self.conns.lock();
        let stats = self.stats.lock();
        conns + stats
    }
}
