//! Fixture: unannotated slice indexing directly inside the `submit`
//! hot-path root.

pub struct Coalescer {
    slots: Vec<usize>,
}

impl Coalescer {
    pub fn submit(&mut self, lane: usize) -> usize {
        self.slots[lane]
    }
}
