//! Fixture: a naked `Condvar::wait` — no `loop`/`while` revalidates the
//! predicate after a (possibly spurious) wakeup.

pub struct Notify {
    ready: Condvar,
    inner: Mutex,
}

impl Notify {
    pub fn wait_once(&self) -> usize {
        let guard = self.inner.lock();
        let woken = self.ready.wait(guard);
        woken
    }
}
