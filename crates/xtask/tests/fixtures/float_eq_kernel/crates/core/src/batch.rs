//! Violation: float equality inside a kernel module.

pub fn is_degenerate(denom: f64) -> bool {
    denom == 0.0
}
