//! Fixture: a clean hot path — the `submit` root reaches exactly one
//! panic-capable site, and that site carries an honest allow.

pub struct Coalescer {
    depth: usize,
}

impl Coalescer {
    pub fn submit(&mut self, items: &[usize], item: usize) -> bool {
        if self.depth == 0 {
            return false;
        }
        self.depth -= 1;
        self.admit(items, item)
    }

    fn admit(&mut self, items: &[usize], item: usize) -> bool {
        let first = items[0]; // audit:allow(panic): fixture: submit rejects empty batches
        first <= item
    }
}
