//! Fixture engine file: a call resolving only here counts as
//! `BatchEngine`/supervisor work for the lock-discipline pass.

pub fn serve_scored(pending: usize) -> usize {
    pending
}
