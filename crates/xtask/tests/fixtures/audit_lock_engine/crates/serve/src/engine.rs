//! Fixture: engine work performed while holding a lock — the guard is
//! live across the `serve_scored` call.

pub struct Engine {
    state: Mutex,
}

impl Engine {
    pub fn drain(&self) -> usize {
        let held = self.state.lock();
        serve_scored(held)
    }
}
