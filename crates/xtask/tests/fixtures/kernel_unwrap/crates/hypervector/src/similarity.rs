//! Violation: `unwrap()` on a kernel hot path — a panic here takes the
//! serving worker down with it.

pub fn first_score(scores: &[f64]) -> f64 {
    *scores.first().unwrap()
}

#[cfg(test)]
mod tests {
    // unwrap() is fine in test code; this must NOT fire.
    #[test]
    fn unwrap_in_tests_is_allowed() {
        let xs = [1.0_f64];
        assert!((xs.first().unwrap() - 1.0).abs() < 1e-12);
    }
}
