//! Violation: a config toggle that selects an execution path with no
//! differential or property test pinning it to the reference path.

pub struct FooConfig {
    pub fast_path: bool,
}

impl FooConfig {
    pub fn reference() -> Self {
        Self { fast_path: false }
    }
}
