//! Fixture: a stale `audit:allow` — the site it once justified is gone,
//! so the annotation itself must fail the audit.

// audit:allow(panic): the unwrap this covered was removed
pub fn tidy_registry() -> usize {
    0
}
