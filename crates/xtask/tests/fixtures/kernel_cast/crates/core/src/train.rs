//! Violation: a float→integer truncating cast inside a kernel module —
//! must go through `hypervector::cast::round_to_*` instead.

pub fn scaled_count(x: f64) -> usize {
    (x * 100.0).round() as usize
}
