//! Violation: a crate root without `#![forbid(unsafe_code)]`. No unsafe
//! code anywhere, so only the missing attribute fires.

pub fn succ(x: u64) -> u64 {
    x.saturating_add(1)
}
