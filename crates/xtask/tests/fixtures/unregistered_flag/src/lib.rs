//! Violation: an ad-hoc environment read outside the flag module.
//! `ROBUSTHD_SECRET` never passes through `parse_fast_flag` or the
//! `FlagRegistry`, so it can drift from docs and CLI output unnoticed.
#![forbid(unsafe_code)]

pub fn secret_enabled() -> bool {
    std::env::var("ROBUSTHD_SECRET").is_ok()
}
