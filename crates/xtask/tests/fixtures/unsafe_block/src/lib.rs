//! Violation: an `unsafe` block in workspace code. The crate root does
//! carry the forbid attribute, so exactly one diagnostic fires — the
//! token scan, which also covers files an attribute cannot reach.
#![forbid(unsafe_code)]

pub fn peek(p: *const u64) -> u64 {
    unsafe { *p }
}
