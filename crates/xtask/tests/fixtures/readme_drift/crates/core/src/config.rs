//! Flag module for the readme-drift fixture: one flag, correctly
//! registered. The drift is on the README side.

pub const WIDGETS_ENV_VAR: &str = "ROBUSTHD_WIDGETS";

pub struct FlagRegistry;

impl FlagRegistry {
    pub fn flags() -> Vec<&'static str> {
        vec![WIDGETS_ENV_VAR]
    }
}
