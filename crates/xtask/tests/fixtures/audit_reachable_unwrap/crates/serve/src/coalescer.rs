//! Fixture: an unannotated `.unwrap()` transitively reachable from the
//! `submit` hot-path root through a helper.

pub struct Coalescer {
    queue: Vec<usize>,
}

impl Coalescer {
    pub fn submit(&mut self, item: usize) -> usize {
        self.queue.push(item);
        self.pop_now()
    }

    fn pop_now(&mut self) -> usize {
        self.queue.pop().unwrap()
    }
}
