//! A minimal workspace that satisfies every invariant: the crate root
//! forbids unsafe, no environment reads, no kernel modules, no flags.
#![forbid(unsafe_code)]

/// Adds one. Entirely above suspicion.
pub fn succ(x: u64) -> u64 {
    x.saturating_add(1)
}
