//! Violation: bit-at-a-time access in a kernel module where word-level
//! kernels exist.

pub fn count_set(v: &crate::BitVector, d: usize) -> usize {
    let mut n = 0;
    for i in 0..d {
        if v.get_bit(i) {
            n += 1;
        }
    }
    n
}
