//! Function-level call-graph construction over the position-preserving
//! scan views.
//!
//! The parser is deliberately shallow: it finds `fn` items in the
//! comment/string-blanked code view, matches their parameter parens and
//! body braces positionally, and records every `ident(`-shaped call site
//! inside each body. Calls resolve by **simple name** — a call site
//! reaches every workspace function sharing the name, which
//! over-approximates both static dispatch (module paths are ignored) and
//! trait dispatch (every impl of a trait method shares its name). The
//! audit universe is the dependency closure of the hot-path roots:
//! `crates/serve`, `crates/core`, and `crates/hypervector` sources.

use crate::scan::SourceFile;
use crate::Workspace;
use crate::{brace_span, is_ident_byte, word_occurrences};
use std::collections::BTreeMap;

/// Workspace-relative path prefixes forming the audit universe: the
/// crates a hot-path root can reach. Binaries, benches, the CLI, the
/// adversarial simulator, and all `tests/` trees sit outside it — code
/// there cannot be called from the serving path.
pub const UNIVERSE: &[&str] = &[
    "crates/serve/src/",
    "crates/core/src/",
    "crates/hypervector/src/",
];

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Simple (last-segment) callee name.
    pub name: String,
    /// Byte offset of the callee identifier in the file's code view.
    pub at: usize,
}

/// One parsed function item.
#[derive(Debug)]
pub struct Function {
    /// The function's simple name.
    pub name: String,
    /// Index into [`Graph::files`].
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub decl_line: usize,
    /// Byte span of the `{ … }` body in the code view; `None` for
    /// bodiless trait/extern declarations.
    pub body: Option<(usize, usize)>,
    /// Call sites inside the body, in source order.
    pub calls: Vec<CallSite>,
}

/// What an `audit:allow(...)` annotation suppresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllowKind {
    /// `audit:allow(panic)` — a panic-surface site.
    Panic,
    /// `audit:allow(lock)` — a lock-discipline finding.
    Lock,
}

impl AllowKind {
    /// The annotation keyword, as written in source.
    pub fn as_str(self) -> &'static str {
        match self {
            AllowKind::Panic => "panic",
            AllowKind::Lock => "lock",
        }
    }
}

/// One parsed `// audit:allow(<kind>): <reason>` annotation.
#[derive(Debug)]
pub struct Allow {
    /// Index into [`Graph::files`].
    pub file: usize,
    /// 1-based line the annotation sits on.
    pub line: usize,
    /// Which finding family it suppresses.
    pub kind: AllowKind,
    /// `Some(f)` when the annotation heads a whole function (its first
    /// following code line is `f`'s declaration): every site in `f` is
    /// covered. `None` for site-level allows.
    pub function: Option<usize>,
    /// The 1-based code line a site-level allow covers (the annotation's
    /// own line for trailing allows, the next code line for standalone
    /// ones).
    pub covers_line: usize,
}

impl Allow {
    /// Whether this allow covers a site of `kind` at `(file, line)`,
    /// given the site's enclosing function (if any).
    pub fn covers(&self, kind: AllowKind, file: usize, line: usize, func: Option<usize>) -> bool {
        if self.kind != kind || self.file != file {
            return false;
        }
        match self.function {
            Some(f) => func == Some(f),
            None => self.covers_line == line,
        }
    }
}

/// The workspace call graph restricted to the audit universe.
#[derive(Debug)]
pub struct Graph<'w> {
    /// Universe source files (subset of the workspace, sorted).
    pub files: Vec<&'w SourceFile>,
    /// Every parsed function item.
    pub functions: Vec<Function>,
    /// Simple-name resolution: name → indices into [`Graph::functions`].
    pub by_name: BTreeMap<String, Vec<usize>>,
}

const KEYWORDS: &[&str] = &[
    "if", "match", "while", "for", "loop", "return", "fn", "move", "in", "as", "let", "else",
    "impl", "where", "pub", "ref", "mut", "box", "dyn", "break", "continue", "struct", "enum",
    "union", "trait", "use", "mod", "const", "static", "type", "Some", "None", "Ok", "Err", "Self",
    "await", "yield",
];

impl<'w> Graph<'w> {
    /// Parses every universe file of `ws` into functions and call sites.
    pub fn build(ws: &'w Workspace) -> Self {
        let files: Vec<&SourceFile> = ws
            .files
            .iter()
            .filter(|f| {
                let rel = f.path.to_string_lossy().replace('\\', "/");
                UNIVERSE.iter().any(|prefix| rel.starts_with(prefix))
            })
            .collect();
        let mut functions = Vec::new();
        for (file_idx, file) in files.iter().enumerate() {
            parse_functions(file, file_idx, &mut functions);
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (idx, func) in functions.iter().enumerate() {
            by_name.entry(func.name.clone()).or_default().push(idx);
        }
        Self {
            files,
            functions,
            by_name,
        }
    }

    /// Resolves `(file suffix, name)` root specs to function indices.
    /// Specs with no match are skipped (fixtures model a subset).
    pub fn resolve_roots(&self, specs: &[(&str, &str)]) -> Vec<usize> {
        let mut out = Vec::new();
        for (suffix, name) in specs {
            for (idx, func) in self.functions.iter().enumerate() {
                let rel = self.files[func.file]
                    .path
                    .to_string_lossy()
                    .replace('\\', "/");
                if func.name == *name && rel.ends_with(suffix) {
                    out.push(idx);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The function whose body span contains code-view offset `at` in
    /// `file`, if any.
    pub fn enclosing(&self, file: usize, at: usize) -> Option<usize> {
        self.functions
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                f.file == file && f.body.is_some_and(|(open, close)| at >= open && at < close)
            })
            // Innermost wins (nested fn items).
            .min_by_key(|(_, f)| f.body.map_or(usize::MAX, |(open, close)| close - open))
            .map(|(idx, _)| idx)
    }

    /// Parses every well-formed `// audit:allow(<kind>): <reason>`
    /// annotation in the universe. Malformed annotations (unknown kind,
    /// or a missing reason) are ignored entirely — the site they meant
    /// to cover keeps firing, which surfaces the mistake.
    pub fn collect_allows(&self) -> Vec<Allow> {
        let mut out = Vec::new();
        for (file_idx, file) in self.files.iter().enumerate() {
            for (kind, needle) in [
                (AllowKind::Panic, "audit:allow(panic)"),
                (AllowKind::Lock, "audit:allow(lock)"),
            ] {
                let mut from = 0;
                while let Some(pos) = file.raw[from..].find(needle) {
                    let at = from + pos;
                    from = at + needle.len();
                    // Require `: <reason>` after the closing paren.
                    let rest = file.raw[at + needle.len()..]
                        .lines()
                        .next()
                        .unwrap_or("")
                        .trim_start();
                    let Some(reason) = rest.strip_prefix(':') else {
                        continue;
                    };
                    if reason.trim().is_empty() {
                        continue;
                    }
                    let line = file.line_of(at);
                    out.push(self.classify_allow(file_idx, file, line, kind));
                }
            }
        }
        out.sort_by_key(|a| (a.file, a.line));
        out
    }

    /// Determines what an allow on `line` covers: its own line when
    /// trailing code, the next code line when standalone — or the whole
    /// function when that next code line is a `fn` declaration.
    fn classify_allow(
        &self,
        file_idx: usize,
        file: &SourceFile,
        line: usize,
        kind: AllowKind,
    ) -> Allow {
        let code_lines: Vec<&str> = file.code.lines().collect();
        let own = code_lines.get(line - 1).copied().unwrap_or("");
        if !own.trim().is_empty() {
            return Allow {
                file: file_idx,
                line,
                kind,
                function: None,
                covers_line: line,
            };
        }
        // Standalone comment: walk down past blank/comment/attribute
        // lines to the first code line.
        let mut next = line; // 0-based index of the line after `line`
        while next < code_lines.len() {
            let text = code_lines[next].trim();
            if text.is_empty() || text.starts_with("#[") {
                next += 1;
            } else {
                break;
            }
        }
        let covers_line = next + 1;
        let function = self
            .functions
            .iter()
            .position(|f| f.file == file_idx && f.decl_line == covers_line);
        Allow {
            file: file_idx,
            line,
            kind,
            function,
            covers_line,
        }
    }
}

/// Finds every `fn` item of `file` outside `#[cfg(test)]` regions.
fn parse_functions(file: &SourceFile, file_idx: usize, out: &mut Vec<Function>) {
    let code = &file.code;
    let bytes = code.as_bytes();
    for at in word_occurrences(code, "fn") {
        let decl_line = file.line_of(at);
        if file.line_in_test(decl_line) {
            continue;
        }
        // Name: the identifier after `fn` (absent for fn-pointer types).
        let mut i = at + 2;
        while i < bytes.len() && (bytes[i] as char).is_whitespace() {
            i += 1;
        }
        let name_start = i;
        while i < bytes.len() && is_ident_byte(bytes[i]) {
            i += 1;
        }
        if i == name_start {
            continue;
        }
        let name = code[name_start..i].to_owned();
        // Skip generic parameters `<...>` (`->` inside bounds must not
        // close the angle scan).
        while i < bytes.len() && (bytes[i] as char).is_whitespace() {
            i += 1;
        }
        if bytes.get(i) == Some(&b'<') {
            let mut depth = 0i64;
            while i < bytes.len() {
                match bytes[i] {
                    b'<' => depth += 1,
                    b'>' if bytes.get(i.wrapping_sub(1)) != Some(&b'-') => depth -= 1,
                    _ => {}
                }
                i += 1;
                if depth == 0 {
                    break;
                }
            }
        }
        while i < bytes.len() && (bytes[i] as char).is_whitespace() {
            i += 1;
        }
        if bytes.get(i) != Some(&b'(') {
            continue; // not a function item after all
        }
        // Match the parameter parens.
        let mut depth = 0i64;
        while i < bytes.len() {
            match bytes[i] {
                b'(' => depth += 1,
                b')' => depth -= 1,
                _ => {}
            }
            i += 1;
            if depth == 0 {
                break;
            }
        }
        // Return type / where clause: the body opens at the first `{`;
        // a `;` outside brackets means a bodiless declaration. Brackets
        // are tracked so `-> [u64; 4]` does not end the item early.
        let mut brackets = 0i64;
        let mut body = None;
        while i < bytes.len() {
            match bytes[i] {
                b'[' => brackets += 1,
                b']' => brackets -= 1,
                b'{' => {
                    body = brace_span(code, i);
                    break;
                }
                b';' if brackets == 0 => break,
                _ => {}
            }
            i += 1;
        }
        let calls = body.map_or_else(Vec::new, |(open, close)| extract_calls(code, open, close));
        out.push(Function {
            name,
            file: file_idx,
            decl_line,
            body,
            calls,
        });
    }
}

/// Records every `ident(`-shaped call site in `code[open..close]`,
/// skipping keywords, macro invocations (`ident!`), and numeric-led
/// tokens. Turbofish (`ident::<T>(`) is tolerated.
fn extract_calls(code: &str, open: usize, close: usize) -> Vec<CallSite> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut i = open;
    while i < close {
        let b = bytes[i];
        if !(b.is_ascii_alphabetic() || b == b'_') || (i > 0 && is_ident_byte(bytes[i - 1])) {
            i += 1;
            continue;
        }
        let start = i;
        while i < close && is_ident_byte(bytes[i]) {
            i += 1;
        }
        let name = &code[start..i];
        let mut j = i;
        while j < close && (bytes[j] as char).is_whitespace() {
            j += 1;
        }
        // Turbofish between name and arguments.
        if bytes.get(j) == Some(&b':')
            && bytes.get(j + 1) == Some(&b':')
            && bytes.get(j + 2) == Some(&b'<')
        {
            let mut depth = 0i64;
            let mut k = j + 2;
            while k < close {
                match bytes[k] {
                    b'<' => depth += 1,
                    b'>' if bytes.get(k.wrapping_sub(1)) != Some(&b'-') => depth -= 1,
                    _ => {}
                }
                k += 1;
                if depth == 0 {
                    break;
                }
            }
            j = k;
            while j < close && (bytes[j] as char).is_whitespace() {
                j += 1;
            }
        }
        if bytes.get(j) == Some(&b'(') && !KEYWORDS.contains(&name) {
            out.push(CallSite {
                name: name.to_owned(),
                at: start,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::SourceFile;
    use std::path::PathBuf;

    fn graph_of(text: &str) -> (Vec<Function>, Vec<CallSite>) {
        let file = SourceFile::from_text(PathBuf::from("crates/core/src/x.rs"), text.to_owned());
        let mut functions = Vec::new();
        parse_functions(&file, 0, &mut functions);
        let calls = functions.iter().flat_map(|f| f.calls.clone()).collect();
        (functions, calls)
    }

    #[test]
    fn functions_and_calls_are_extracted() {
        let (funcs, calls) = graph_of(
            "pub fn outer(x: usize) -> usize {\n    helper(x) + x.method()\n}\nfn helper(x: usize) -> usize { x }\n",
        );
        assert_eq!(funcs.len(), 2);
        assert_eq!(funcs[0].name, "outer");
        assert_eq!(funcs[1].name, "helper");
        let names: Vec<&str> = calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["helper", "method"]);
    }

    #[test]
    fn generics_where_clauses_and_array_returns_parse() {
        let (funcs, _) = graph_of(
            "fn g<F: Fn() -> usize>(f: F) -> [u64; 4]\nwhere\n    F: Send,\n{\n    let _ = f();\n    [0; 4]\n}\n",
        );
        assert_eq!(funcs.len(), 1);
        assert!(funcs[0].body.is_some());
    }

    #[test]
    fn trait_declarations_have_no_body_and_macros_are_not_calls() {
        let (funcs, calls) = graph_of(
            "trait T {\n    fn decl(&self) -> usize;\n    fn with_default(&self) { println!(\"x\"); go() }\n}\n",
        );
        assert_eq!(funcs.len(), 2);
        assert!(funcs[0].body.is_none());
        let names: Vec<&str> = calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["go"], "println! must not count as a call");
    }

    #[test]
    fn test_region_functions_are_skipped() {
        let (funcs, _) = graph_of(
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { x.unwrap(); }\n}\n",
        );
        assert_eq!(funcs.len(), 1);
        assert_eq!(funcs[0].name, "live");
    }
}
