//! The panic-surface pass: no unannotated panic-capable (or silently
//! value-truncating) site may be transitively reachable from a hot-path
//! root.
//!
//! Sites detected, all in non-test code:
//!
//! * `.unwrap()` / `.expect(` — explicit panics on failure values;
//! * `panic!` / `unreachable!` / `todo!` / `unimplemented!` macros;
//! * indexing and slicing `x[i]` — out-of-bounds panics (detected as a
//!   `[` directly following an identifier, `)`, or `]`);
//! * truncating `as` casts (to a ≤32-bit numeric target, or a rounded
//!   float into a wide integer) — not panics, but silent value
//!   corruption on the same no-surprises hot path, and exactly what the
//!   checked `hypervector::cast` API exists for.
//!
//! `assert!`-family macros and `/`-by-variable are deliberately out of
//! scope (documented in DESIGN §18): asserts state intended invariants,
//! and division appears only with structurally nonzero divisors.
//!
//! Suppression is `// audit:allow(panic): <reason>` — trailing on the
//! site's line, standalone on the line above it, or heading a whole
//! `fn` (covering every site in that function, for kernels whose whole
//! body is bounded indexing).

use super::graph::{Allow, AllowKind, Graph};
use crate::scan::SourceFile;
use crate::{
    token_after, word_occurrences, Diagnostic, FLOAT_RESULT_METHODS, NARROW_TARGETS,
    WIDE_INT_TARGETS,
};
use std::collections::VecDeque;

/// One panic-capable site inside a function body.
#[derive(Debug)]
pub struct PanicSite {
    /// 1-based line.
    pub line: usize,
    /// Human-readable description of the construct.
    pub what: String,
}

/// Detects every panic-surface site in `code[open..close]` of `file`,
/// skipping `#[cfg(test)]` lines.
pub fn panic_sites(file: &SourceFile, open: usize, close: usize) -> Vec<PanicSite> {
    let body = &file.code[open..close];
    let mut out = Vec::new();
    let mut push = |at: usize, what: String| {
        let line = file.line_of(open + at);
        if !file.line_in_test(line) {
            out.push(PanicSite { line, what });
        }
    };

    for (needle, what) in [(".unwrap()", "`.unwrap()`"), (".expect(", "`.expect(…)`")] {
        let mut from = 0;
        while let Some(pos) = body[from..].find(needle) {
            let at = from + pos;
            push(at, what.to_owned());
            from = at + needle.len();
        }
    }

    for mac in ["panic", "unreachable", "todo", "unimplemented"] {
        for at in word_occurrences(body, mac) {
            if body.as_bytes().get(at + mac.len()) == Some(&b'!') {
                push(at, format!("`{mac}!`"));
            }
        }
    }

    let bytes = body.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let prev = bytes[i - 1];
        if prev.is_ascii_alphanumeric() || prev == b'_' || prev == b')' || prev == b']' {
            push(i, "indexing `[…]`".to_owned());
        }
    }

    let mut line_start = 0;
    for line in body.lines() {
        for at in word_occurrences(line, "as") {
            let target = token_after(line, at + 2);
            let before = line[..at].trim_end();
            if NARROW_TARGETS.contains(&target) {
                push(line_start + at, format!("truncating `as {target}`"));
            } else if WIDE_INT_TARGETS.contains(&target)
                && FLOAT_RESULT_METHODS.iter().any(|m| before.ends_with(*m))
            {
                push(line_start + at, format!("float→integer `as {target}`"));
            }
        }
        line_start += line.len() + 1;
    }

    out
}

/// Runs the panic-surface pass: BFS the call graph from `roots`, then
/// report every unallowed site in a reachable function. `honored[i]` is
/// set when `allows[i]` suppressed at least one site (reachable or not —
/// an allow on an unreachable site is *placed*, not stale).
pub fn check(
    graph: &Graph<'_>,
    roots: &[usize],
    allows: &[Allow],
    honored: &mut [bool],
) -> Vec<Diagnostic> {
    // Breadth-first reachability with a witness root name per function.
    let mut witness: Vec<Option<usize>> = vec![None; graph.functions.len()];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &root in roots {
        if witness[root].is_none() {
            witness[root] = Some(root);
            queue.push_back(root);
        }
    }
    while let Some(func) = queue.pop_front() {
        let from = witness[func];
        for call in &graph.functions[func].calls {
            if let Some(callees) = graph.by_name.get(&call.name) {
                for &callee in callees {
                    if witness[callee].is_none() {
                        witness[callee] = from;
                        queue.push_back(callee);
                    }
                }
            }
        }
    }

    let mut out = Vec::new();
    for (idx, func) in graph.functions.iter().enumerate() {
        let Some((open, close)) = func.body else {
            continue;
        };
        let file = graph.files[func.file];
        let sites = panic_sites(file, open, close);
        let reachable = witness[idx].is_some();
        for site in sites {
            let mut allowed = false;
            for (i, allow) in allows.iter().enumerate() {
                if allow.covers(AllowKind::Panic, func.file, site.line, Some(idx)) {
                    honored[i] = true;
                    allowed = true;
                }
            }
            if allowed || !reachable {
                continue;
            }
            let root = witness[idx].map_or_else(String::new, |r| graph.functions[r].name.clone());
            out.push(Diagnostic {
                lint: "audit-panic",
                file: file.path.clone(),
                line: site.line,
                message: format!(
                    "{} in `{}`, reachable from hot-path root `{root}` — a panic \
                     here takes down a serving thread the supervisor cannot \
                     recover; handle the failure, or annotate the site with \
                     `// audit:allow(panic): <reason>`",
                    site.what, func.name
                ),
            });
        }
    }
    out
}
