//! The lock-discipline pass: acquisition extraction, lock-order cycles,
//! holds across engine calls or blocking I/O, and naked `Condvar::wait`.
//!
//! Acquisitions are recognized syntactically:
//!
//! * `recv.lock()`, `recv.read()`, `recv.write()` (no-argument forms
//!   only, so `io::Read::read(buf)` does not count), and
//!   `recv.get_or_init(…)` — the lock's identity is the receiver's last
//!   field/identifier (`self.state.lock()` is lock `state`);
//! * calls to guard-returning helpers named `lock_<name>` — the
//!   workspace convention for poison-recovering wrappers
//!   (`lock_conns()` is lock `conns`), which keeps wrapper-mediated
//!   holds visible to an analysis that cannot see types.
//!
//! A guard's held region is approximated intraprocedurally: a
//! `let`-bound guard is held to the end of its enclosing block (or to an
//! explicit `drop(guard)`); a temporary guard is held to the end of its
//! statement (including a trailing block, so `for x in m.lock_…()` holds
//! through the loop body). Guards returned to a caller are *not*
//! tracked across the return — which is why helpers must follow the
//! `lock_*` naming convention.
//!
//! Findings:
//!
//! * `audit-lock-cycle` — the lock-order graph (nested acquisitions,
//!   plus locks transitively acquired by calls made while holding) has
//!   a cycle: an ABBA deadlock waiting for the right schedule;
//! * `audit-lock-engine` — a `BatchEngine`/supervisor call (a call
//!   resolving only into `core/src/batch.rs` or
//!   `core/src/supervisor.rs`) made while holding a lock: serving work
//!   stalls every thread contending for that lock;
//! * `audit-lock-blocking` — blocking I/O (`write_all`, `flush`,
//!   `accept`, `recv`, `join`, `sleep`, …) while holding a lock;
//! * `audit-condvar-wait` — a `Condvar::wait`/`wait_timeout` outside a
//!   `loop`/`while` predicate loop: wakeups are permitted to be spurious
//!   or stale, so every wait must revalidate its predicate.

use super::graph::{Allow, AllowKind, Graph};
use crate::{is_ident_byte, word_occurrences, Diagnostic};
use std::collections::{BTreeMap, BTreeSet};

/// Method-shaped acquisition patterns (receiver-derived lock name).
const ACQUIRE_METHODS: &[&str] = &[".lock()", ".read()", ".write()", ".get_or_init("];

/// Blocking-call tokens that must not run under a lock. `Condvar::wait`
/// is deliberately absent: it releases the guard while parked.
const BLOCKING: &[&str] = &[
    ".write_all(",
    ".flush(",
    ".fill_buf(",
    ".read_to_end(",
    ".read_line(",
    ".read_exact(",
    ".accept(",
    ".recv(",
    ".recv_timeout(",
    ".join(",
    "sleep(",
];

/// One lock acquisition with its approximated held region.
#[derive(Debug)]
struct Acquisition {
    /// Lock identity (receiver field name or `lock_*` suffix).
    name: String,
    /// Absolute code-view offset where the acquisition starts.
    at: usize,
    /// Absolute offset where the held region ends.
    end: usize,
    /// 1-based line of the acquisition.
    line: usize,
}

/// Brace pair spans `(open, close_exclusive)` inside `code[open..close]`.
fn block_spans(code: &str, open: usize, close: usize) -> Vec<(usize, usize)> {
    let bytes = code.as_bytes();
    let mut stack = Vec::new();
    let mut out = Vec::new();
    for i in open..close {
        match bytes[i] {
            b'{' => stack.push(i),
            b'}' => {
                if let Some(start) = stack.pop() {
                    out.push((start, i + 1));
                }
            }
            _ => {}
        }
    }
    out
}

/// The innermost block span containing `at`.
fn enclosing_block(spans: &[(usize, usize)], at: usize) -> Option<(usize, usize)> {
    spans
        .iter()
        .filter(|(open, close)| at > *open && at < *close)
        .min_by_key(|(open, close)| close - open)
        .copied()
}

/// Walks back from `at` to the start of the enclosing statement and
/// reports the `let`-bound variable, if the acquisition is a binding's
/// initializer. `Some(None)` means "bound, but to a pattern" (held to
/// block end, drop untrackable).
fn let_binding(code: &str, at: usize) -> Option<Option<String>> {
    let stmt_start = code[..at]
        .rfind(|c| c == ';' || c == '{' || c == '}')
        .map_or(0, |i| i + 1);
    let stmt = &code[stmt_start..at];
    let let_at = word_occurrences(stmt, "let").into_iter().next_back()?;
    let after = stmt[let_at + 3..].trim_start();
    let after = after.strip_prefix("mut ").unwrap_or(after).trim_start();
    let var: String = after
        .bytes()
        .take_while(|&b| is_ident_byte(b))
        .map(char::from)
        .collect();
    if var.is_empty() || !after[var.len()..].trim_start().starts_with('=') {
        Some(None)
    } else {
        Some(Some(var))
    }
}

/// End of the statement a temporary guard lives for: the first `;` at
/// relative brace depth 0, the close of the first brace group opened at
/// depth 0 (a `for`/`if`/`match` body consuming the temporary), or the
/// end of the enclosing block.
fn statement_end(code: &str, from: usize, block_close: usize) -> usize {
    let bytes = code.as_bytes();
    let mut depth = 0i64;
    let mut i = from;
    while i < block_close {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
                if depth < 0 {
                    return i;
                }
            }
            b';' if depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    block_close
}

/// The last identifier of the receiver expression ending at `dot`
/// (exclusive): `self.state.lock()` → `state`; `inner().lock()` →
/// `inner`; unresolvable receivers collapse to `"<expr>"`.
fn receiver_name(code: &str, dot: usize) -> String {
    let bytes = code.as_bytes();
    let mut i = dot;
    if i > 0 && bytes[i - 1] == b')' {
        // Walk back over a call's parens to its name.
        let mut depth = 0i64;
        while i > 0 {
            i -= 1;
            match bytes[i] {
                b')' => depth += 1,
                b'(' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
        }
    }
    let end = i;
    let start = (0..end)
        .rev()
        .take_while(|&j| is_ident_byte(bytes[j]))
        .last();
    match start {
        Some(s) if s < end => code[s..end].to_owned(),
        _ => "<expr>".to_owned(),
    }
}

/// Extracts every acquisition in one function body.
fn acquisitions(graph: &Graph<'_>, func: usize) -> Vec<Acquisition> {
    let f = &graph.functions[func];
    let Some((open, close)) = f.body else {
        return Vec::new();
    };
    let file = graph.files[f.file];
    let code = &file.code;
    let spans = block_spans(code, open, close);
    let mut out = Vec::new();

    let mut record = |name: String, at: usize| {
        let line = file.line_of(at);
        if file.line_in_test(line) {
            return;
        }
        let (_, block_close) = enclosing_block(&spans, at).unwrap_or((open, close));
        let end = match let_binding(code, at) {
            Some(bound) => {
                let mut end = block_close;
                if let Some(var) = bound {
                    // An explicit drop shortens the held region.
                    for drop_at in word_occurrences(&code[at..block_close], "drop") {
                        let after = &code
                            [at + drop_at + 4..block_close.min(at + drop_at + 4 + var.len() + 8)];
                        let after = after.trim_start();
                        if let Some(rest) = after.strip_prefix('(') {
                            if rest.trim_start().starts_with(&var) {
                                end = at + drop_at;
                                break;
                            }
                        }
                    }
                }
                end
            }
            None => statement_end(code, at, block_close),
        };
        out.push(Acquisition {
            name,
            at,
            end,
            line,
        });
    };

    for pattern in ACQUIRE_METHODS {
        let mut from = open;
        while let Some(pos) = code[from..close].find(pattern) {
            let at = from + pos;
            from = at + pattern.len();
            record(receiver_name(code, at), at);
        }
    }
    for call in &f.calls {
        if let Some(suffix) = call.name.strip_prefix("lock_") {
            if !suffix.is_empty() {
                record(suffix.to_owned(), call.at);
            }
        }
    }
    out.sort_by_key(|a| a.at);
    out
}

/// Fixpoint of the lock names each function (transitively) acquires.
fn transitive_acquires(graph: &Graph<'_>, direct: &[Vec<Acquisition>]) -> Vec<BTreeSet<String>> {
    let mut sets: Vec<BTreeSet<String>> = direct
        .iter()
        .map(|acqs| acqs.iter().map(|a| a.name.clone()).collect())
        .collect();
    loop {
        let mut changed = false;
        for idx in 0..graph.functions.len() {
            let mut additions: Vec<String> = Vec::new();
            for call in &graph.functions[idx].calls {
                if let Some(callees) = graph.by_name.get(&call.name) {
                    for &callee in callees {
                        for name in &sets[callee] {
                            if !sets[idx].contains(name) {
                                additions.push(name.clone());
                            }
                        }
                    }
                }
            }
            for name in additions {
                changed |= sets[idx].insert(name);
            }
        }
        if !changed {
            return sets;
        }
    }
}

/// Whether every resolution candidate of `name` lives in an engine file
/// (`core/src/batch.rs` / `core/src/supervisor.rs`). Exclusive
/// resolution keeps ubiquitous names (`new`, `len`) from turning every
/// constructor call under a lock into a finding.
fn resolves_only_into_engine(graph: &Graph<'_>, name: &str) -> bool {
    let Some(callees) = graph.by_name.get(name) else {
        return false;
    };
    !callees.is_empty()
        && callees.iter().all(|&callee| {
            let rel = graph.files[graph.functions[callee].file]
                .path
                .to_string_lossy()
                .replace('\\', "/");
            rel.ends_with("core/src/batch.rs") || rel.ends_with("core/src/supervisor.rs")
        })
}

/// Runs the lock-discipline pass. `honored[i]` is set when `allows[i]`
/// (of kind `lock`) suppressed at least one finding.
#[allow(clippy::too_many_lines)]
pub fn check(graph: &Graph<'_>, allows: &[Allow], honored: &mut [bool]) -> Vec<Diagnostic> {
    let direct: Vec<Vec<Acquisition>> = (0..graph.functions.len())
        .map(|idx| acquisitions(graph, idx))
        .collect();
    let transitive = transitive_acquires(graph, &direct);

    let mut out = Vec::new();
    let suppress = |out: &mut Vec<Diagnostic>, honored: &mut [bool], func: usize, d: Diagnostic| {
        let mut allowed = false;
        for (i, allow) in allows.iter().enumerate() {
            if allow.covers(
                AllowKind::Lock,
                graph.functions[func].file,
                d.line,
                Some(func),
            ) {
                honored[i] = true;
                allowed = true;
            }
        }
        if !allowed {
            out.push(d);
        }
    };

    // Lock-order edges: (from, to) → representative (file, line).
    let mut edges: BTreeMap<(String, String), (usize, usize)> = BTreeMap::new();
    for (idx, func) in graph.functions.iter().enumerate() {
        let file = graph.files[func.file];
        for acq in &direct[idx] {
            // Nested direct acquisitions.
            for inner in &direct[idx] {
                if inner.at > acq.at && inner.at < acq.end && inner.name != acq.name {
                    edges
                        .entry((acq.name.clone(), inner.name.clone()))
                        .or_insert((func.file, inner.line));
                }
            }
            // Locks acquired by calls made while holding.
            for call in &func.calls {
                if call.at <= acq.at || call.at >= acq.end {
                    continue;
                }
                if let Some(callees) = graph.by_name.get(&call.name) {
                    for &callee in callees {
                        for name in &transitive[callee] {
                            if *name != acq.name {
                                edges
                                    .entry((acq.name.clone(), name.clone()))
                                    .or_insert((func.file, file.line_of(call.at)));
                            }
                        }
                    }
                }
            }

            // Engine calls and blocking I/O inside the held region.
            let code = &file.code;
            for call in &func.calls {
                if call.at > acq.at
                    && call.at < acq.end
                    && resolves_only_into_engine(graph, &call.name)
                {
                    let d = Diagnostic {
                        lint: "audit-lock-engine",
                        file: file.path.clone(),
                        line: file.line_of(call.at),
                        message: format!(
                            "`{}` (BatchEngine/supervisor work) called while \
                             holding lock `{}` (acquired line {}) — serving \
                             work under a lock stalls every contending thread; \
                             copy what you need out of the guard first",
                            call.name, acq.name, acq.line
                        ),
                    };
                    suppress(&mut out, honored, idx, d);
                }
            }
            for token in BLOCKING {
                let mut from = acq.at;
                while let Some(pos) = code[from..acq.end].find(token) {
                    let at = from + pos;
                    from = at + token.len();
                    let d = Diagnostic {
                        lint: "audit-lock-blocking",
                        file: file.path.clone(),
                        line: file.line_of(at),
                        message: format!(
                            "blocking call `{}…)` while holding lock `{}` \
                             (acquired line {}) — I/O latency becomes lock \
                             hold time for every contending thread",
                            token.trim_start_matches('.'),
                            acq.name,
                            acq.line
                        ),
                    };
                    suppress(&mut out, honored, idx, d);
                }
            }
        }

        // Naked Condvar waits: every wait must sit inside a predicate
        // loop that revalidates its condition on wakeup.
        if let Some((open, close)) = func.body {
            let code = &file.code;
            let mut loops: Vec<(usize, usize)> = Vec::new();
            for keyword in ["loop", "while"] {
                for at in word_occurrences(&code[open..close], keyword) {
                    if let Some(span) = crate::brace_span(code, open + at) {
                        if span.0 < close {
                            loops.push(span);
                        }
                    }
                }
            }
            for pattern in [".wait(", ".wait_timeout("] {
                let mut from = open;
                while let Some(pos) = code[from..close].find(pattern) {
                    let at = from + pos;
                    from = at + pattern.len();
                    let line = file.line_of(at);
                    if file.line_in_test(line) {
                        continue;
                    }
                    if !loops.iter().any(|(o, c)| at > *o && at < *c) {
                        let d = Diagnostic {
                            lint: "audit-condvar-wait",
                            file: file.path.clone(),
                            line,
                            message: format!(
                                "`{}…)` outside a `loop`/`while` predicate loop \
                                 in `{}` — wakeups may be spurious or stale, so \
                                 the predicate must be revalidated after every \
                                 wait",
                                pattern.trim_start_matches('.'),
                                func.name
                            ),
                        };
                        suppress(&mut out, honored, idx, d);
                    }
                }
            }
        }
    }

    // Cycle detection on the lock-order graph: a strongly connected
    // component of ≥ 2 locks is an ABBA deadlock waiting for the right
    // schedule. One diagnostic per component, at its smallest edge site.
    for component in strongly_connected(&edges) {
        let mut members: Vec<&str> = component.iter().map(String::as_str).collect();
        members.sort_unstable();
        let site = edges
            .iter()
            .filter(|((a, b), _)| component.contains(a) && component.contains(b))
            .map(|(_, site)| *site)
            .min();
        if let Some((file_idx, line)) = site {
            out.push(Diagnostic {
                lint: "audit-lock-cycle",
                file: graph.files[file_idx].path.clone(),
                line,
                message: format!(
                    "lock-order cycle between {{{}}} — two threads taking \
                     these locks in opposite orders deadlock; pick one \
                     global order and release before re-acquiring",
                    members.join(", ")
                ),
            });
        }
    }

    out
}

/// Strongly connected components of ≥ 2 nodes in the lock-order graph
/// (iterative Tarjan, deterministic over the sorted edge map).
fn strongly_connected(edges: &BTreeMap<(String, String), (usize, usize)>) -> Vec<BTreeSet<String>> {
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for (a, b) in edges.keys() {
        nodes.insert(a);
        nodes.insert(b);
    }
    let index_of: BTreeMap<&str, usize> = nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let names: Vec<&str> = nodes.into_iter().collect();
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); names.len()];
    for (a, b) in edges.keys() {
        succ[index_of[a.as_str()]].push(index_of[b.as_str()]);
    }

    let n = names.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0;
    let mut components = Vec::new();

    // Iterative Tarjan: (node, child cursor) frames.
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut frames: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
            if *cursor == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = succ[v].get(*cursor) {
                *cursor += 1;
                if index[w] == usize::MAX {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut component = BTreeSet::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        component.insert(names[w].to_owned());
                        if w == v {
                            break;
                        }
                    }
                    if component.len() >= 2 {
                        components.push(component);
                    }
                }
                frames.pop();
                if let Some(&mut (parent, _)) = frames.last_mut() {
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
    }
    components
}
