//! `cargo xtask audit` — the hot-path panic-surface and lock-discipline
//! auditor.
//!
//! Where `cargo xtask lint` enforces *local* hygiene (no `unwrap` inside
//! a kernel module), the audit is *global*: it parses the workspace into
//! a function-level call graph ([`graph`]) and asks reachability
//! questions from designated hot-path roots — the functions a serving
//! daemon cannot afford to lose to a panic. Two hard-fail families:
//!
//! 1. **panic-surface** ([`panics`]): any `unwrap`/`expect`/panicking
//!    macro/indexing `[]`/truncating `as` cast in a function
//!    transitively reachable from a hot-path root is an error, unless
//!    annotated `// audit:allow(panic): <reason>`.
//! 2. **lock-discipline** ([`locks`]): every `Mutex`/`RwLock`/`OnceLock`
//!    acquisition is extracted per function, a lock-order graph is built
//!    across the serving crates, and the audit fails on order cycles, on
//!    locks held across `BatchEngine`/supervisor calls or blocking I/O,
//!    and on a `Condvar::wait` outside a predicate loop.
//!
//! The analyses are deliberately syntactic (built on the same
//! position-preserving [`crate::scan`] views as the lints — no rustc, no
//! proc macros) and resolve calls by *simple name*: a call site reaches
//! every workspace function of that name. That over-approximates
//! reachability (safe for the panic pass: extra findings, never missed
//! ones) and is documented with its limits in `DESIGN.md` §18.
//!
//! Stale annotations are themselves findings: an `audit:allow` that no
//! longer covers any site fails the audit, so the allow inventory cannot
//! rot as code moves.

pub mod graph;
pub mod locks;
pub mod panics;

use crate::Diagnostic;
use crate::Workspace;
use graph::Graph;
use std::fmt::Write as _;
use std::path::Path;

/// Hot-path roots: `(file suffix, function name)` pairs. A root is every
/// function with that name declared in that file. Missing roots are
/// tolerated (fixture workspaces model a subset of the hot path).
pub const ROOTS: &[(&str, &str)] = &[
    // The coalescer's admission and drain protocol.
    ("crates/serve/src/coalescer.rs", "submit"),
    ("crates/serve/src/coalescer.rs", "submit_routed"),
    ("crates/serve/src/coalescer.rs", "next_batch"),
    // The daemon's drain thread and both engines behind it.
    ("crates/serve/src/server.rs", "drain_loop"),
    ("crates/serve/src/engine.rs", "serve"),
    ("crates/serve/src/engine.rs", "serve_pending"),
    // The fleet registry's routing, serving, and rehydration paths.
    ("crates/core/src/fleet.rs", "route_batch"),
    ("crates/core/src/fleet.rs", "serve_supervised"),
    ("crates/core/src/fleet.rs", "ensure_hot"),
    // The execution-tier kernel families every score goes through.
    ("crates/hypervector/src/tier.rs", "hamming_words"),
    ("crates/hypervector/src/tier.rs", "hamming_range_words"),
    ("crates/hypervector/src/tier.rs", "hamming_all_into_words"),
    ("crates/hypervector/src/tier.rs", "xor_words_into"),
    ("crates/hypervector/src/tier.rs", "ripple_add"),
    ("crates/hypervector/src/tier.rs", "ripple_add_xor"),
    ("crates/hypervector/src/tier.rs", "bipolar_accumulate"),
    ("crates/hypervector/src/tier.rs", "threshold_words"),
];

/// One resolved hot-path root, for the report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RootInfo {
    /// The root function's name.
    pub name: String,
    /// Workspace-relative file declaring it.
    pub file: String,
    /// 1-based declaration line.
    pub line: usize,
}

/// The full audit outcome: resolved roots, findings, and how many
/// `audit:allow` annotations are currently suppressing a site.
#[derive(Debug)]
pub struct AuditReport {
    /// Hot-path roots that resolved in this workspace.
    pub roots: Vec<RootInfo>,
    /// Hard-fail findings, sorted by `(file, line, lint)`.
    pub findings: Vec<Diagnostic>,
    /// Honored `audit:allow` annotations (each covering ≥ 1 site).
    pub allows: usize,
}

impl AuditReport {
    /// Machine-readable report (`cargo xtask audit --json`): roots, one
    /// record per finding, and the allow count — so future changes can
    /// gate on audit-surface growth.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"roots\": [");
        for (i, root) in self.roots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"name\": {}, \"file\": {}, \"line\": {}}}",
                json_string(&root.name),
                json_string(&root.file),
                root.line
            );
        }
        out.push_str("\n  ],\n  \"findings\": [");
        for (i, d) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"kind\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
                json_string(d.lint),
                json_string(&d.file.display().to_string()),
                d.line,
                json_string(&d.message)
            );
        }
        let _ = write!(
            out,
            "\n  ],\n  \"allow_count\": {},\n  \"finding_count\": {}\n}}",
            self.allows,
            self.findings.len()
        );
        out
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Runs both audit families over the workspace at `root`.
///
/// # Errors
///
/// Returns a message when the workspace cannot be loaded.
pub fn run(root: &Path) -> Result<AuditReport, String> {
    let ws = Workspace::load(root)?;
    Ok(run_on(&ws))
}

/// Runs both audit families over an already-loaded workspace.
pub fn run_on(ws: &Workspace) -> AuditReport {
    let graph = Graph::build(ws);
    let roots = graph.resolve_roots(ROOTS);
    let allows = graph.collect_allows();

    let mut findings = Vec::new();
    let mut honored = vec![false; allows.len()];
    findings.extend(panics::check(&graph, &roots, &allows, &mut honored));
    findings.extend(locks::check(&graph, &allows, &mut honored));

    // A suppression that suppresses nothing is drift: the site it
    // covered was fixed or moved, and the annotation now only misleads.
    for (allow, honored) in allows.iter().zip(&honored) {
        if !honored {
            findings.push(Diagnostic {
                lint: "audit-stale-allow",
                file: graph.files[allow.file].path.clone(),
                line: allow.line,
                message: format!(
                    "stale `audit:allow({})` — no {} site is covered by this \
                     annotation any more; delete it (or move it next to the \
                     site it justifies)",
                    allow.kind.as_str(),
                    allow.kind.as_str(),
                ),
            });
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    // Several sites on one line (e.g. `a[i] ^ b[i]`) produce identical
    // diagnostics; one line-granular finding is enough to act on.
    findings.dedup_by(|a, b| {
        a.lint == b.lint && a.file == b.file && a.line == b.line && a.message == b.message
    });
    let root_infos = roots
        .iter()
        .map(|&f| {
            let func = &graph.functions[f];
            RootInfo {
                name: func.name.clone(),
                file: graph.files[func.file].path.display().to_string(),
                line: func.decl_line,
            }
        })
        .collect();
    AuditReport {
        roots: root_infos,
        findings,
        allows: honored.iter().filter(|&&h| h).count(),
    }
}
