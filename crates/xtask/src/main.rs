//! `cargo xtask lint` — run the repo-native invariant lints.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: cargo xtask <command>

commands:
  lint [--root PATH]   Run the workspace invariant lints (default root:
                       the workspace this xtask binary was built from).
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("lint") => lint(&argv[1..]),
        Some("--help" | "-h" | "help") => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn lint(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(path) => root = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--root requires a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown option `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    // The alias runs us from the workspace root; CARGO_MANIFEST_DIR keeps
    // this correct when invoked as a bare binary from anywhere.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| PathBuf::from("."))
    });
    match xtask::run_all(&root) {
        Ok(diagnostics) if diagnostics.is_empty() => {
            println!("xtask lint: clean ({} invariant families)", 4);
            ExitCode::SUCCESS
        }
        Ok(diagnostics) => {
            for d in &diagnostics {
                println!("{d}");
            }
            println!("xtask lint: {} violation(s)", diagnostics.len());
            ExitCode::FAILURE
        }
        Err(message) => {
            eprintln!("xtask lint: {message}");
            ExitCode::from(2)
        }
    }
}
