//! `cargo xtask lint` / `cargo xtask audit` — run the repo-native
//! invariant lints and the hot-path panic-surface & lock-discipline
//! auditor.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: cargo xtask <command>

commands:
  lint [--root PATH]            Run the workspace invariant lints (default
                                root: the workspace this xtask binary was
                                built from).
  audit [--root PATH] [--json]  Run the hot-path panic-surface and
                                lock-discipline auditor; --json emits the
                                machine-readable report (roots, findings,
                                allow count).
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("lint") => lint(&argv[1..]),
        Some("audit") => audit(&argv[1..]),
        Some("--help" | "-h" | "help") => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Parses `--root PATH` (and optionally `--json`) from `args`. Returns
/// `Err` with an exit code on malformed options.
fn parse_opts(args: &[String], allow_json: bool) -> Result<(PathBuf, bool), ExitCode> {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(path) => root = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--root requires a path\n{USAGE}");
                    return Err(ExitCode::from(2));
                }
            },
            "--json" if allow_json => json = true,
            other => {
                eprintln!("unknown option `{other}`\n{USAGE}");
                return Err(ExitCode::from(2));
            }
        }
    }
    // The alias runs us from the workspace root; CARGO_MANIFEST_DIR keeps
    // this correct when invoked as a bare binary from anywhere.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| PathBuf::from("."))
    });
    Ok((root, json))
}

fn lint(args: &[String]) -> ExitCode {
    let root = match parse_opts(args, false) {
        Ok((root, _)) => root,
        Err(code) => return code,
    };
    match xtask::run_all(&root) {
        Ok(diagnostics) if diagnostics.is_empty() => {
            println!("xtask lint: clean ({} invariant families)", 4);
            ExitCode::SUCCESS
        }
        Ok(diagnostics) => {
            for d in &diagnostics {
                println!("{d}");
            }
            println!("xtask lint: {} violation(s)", diagnostics.len());
            ExitCode::FAILURE
        }
        Err(message) => {
            eprintln!("xtask lint: {message}");
            ExitCode::from(2)
        }
    }
}

fn audit(args: &[String]) -> ExitCode {
    let (root, json) = match parse_opts(args, true) {
        Ok(parsed) => parsed,
        Err(code) => return code,
    };
    match xtask::audit::run(&root) {
        Ok(report) => {
            if json {
                println!("{}", report.to_json());
            } else {
                for d in &report.findings {
                    println!("{d}");
                }
                println!(
                    "xtask audit: {} finding(s), {} hot-path root(s), {} allow(s) honored",
                    report.findings.len(),
                    report.roots.len(),
                    report.allows
                );
            }
            if report.findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("xtask audit: {message}");
            ExitCode::from(2)
        }
    }
}
