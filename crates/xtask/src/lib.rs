//! Repo-native static analysis for the RobustHD workspace.
//!
//! `cargo xtask lint` walks the workspace sources (no `syn`, no network —
//! a position-preserving comment/string-blanking scanner, see [`scan`])
//! and enforces the invariants the test suites rely on by *convention*
//! as hard CI failures:
//!
//! 1. **No unsafe, ever** ([`lint_unsafe`]) — every crate root carries
//!    `#![forbid(unsafe_code)]` and the token `unsafe` appears nowhere in
//!    workspace code, including integration tests that a crate-root
//!    `forbid` would not cover.
//! 2. **One birthplace for runtime flags** ([`lint_flags`]) — every
//!    `ROBUSTHD_*` environment read lives in `crates/core/src/config.rs`
//!    (the `FlagRegistry` / `parse_fast_flag` module); every `*_ENV_VAR`
//!    constant is registered in `FlagRegistry::flags`; `README.md`
//!    documents exactly the registered set (drift in either direction
//!    fails); and the `robusthd flags` subcommand is wired to print the
//!    registry.
//! 3. **Fast/reference duality** ([`lint_duality`]) — every config
//!    toggle in `config.rs` that owns a fast path (a `fast_path` field or
//!    a `from_env` reader) is named by at least one `*_differential.rs`
//!    or `*_props.rs` test, so no execution-path switch can exist without
//!    a bit-exactness suite pinning it.
//! 4. **Hot-path hygiene** ([`lint_hygiene`]) — inside the kernel
//!    modules ([`KERNEL_MODULES`]) and outside `#[cfg(test)]`: no
//!    `.unwrap()` / `.expect(`, no bit-at-a-time `.get_bit(` /
//!    `.set_bit(`, no float `==` / `!=`, and no truncating `as` casts
//!    (float→integer, or any cast to a ≤32-bit numeric type) — checked
//!    conversions go through `hypervector::cast`.
//!
//! The `vendor/` tree is exempt: those crates are API-compatible
//! stand-ins for external dependencies, not code this repo authors.
//! Anything under a `fixtures/` directory is exempt too — that is where
//! this crate's own deliberately-violating test inputs live.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod audit;
pub mod scan;

use scan::{collect_rust_files, SourceFile};
use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// The hot-path kernel modules under hot-path hygiene (workspace-relative).
pub const KERNEL_MODULES: &[&str] = &[
    "crates/hypervector/src/tier.rs",
    "crates/hypervector/src/bitvec.rs",
    "crates/hypervector/src/bitslice.rs",
    "crates/hypervector/src/similarity.rs",
    "crates/hypervector/src/accumulator.rs",
    "crates/core/src/batch.rs",
    "crates/core/src/train.rs",
    "crates/core/src/fleet.rs",
    "crates/advsim/src/attack.rs",
    "crates/serve/src/coalescer.rs",
    "crates/serve/src/engine.rs",
    "crates/serve/src/server.rs",
];

/// The one module allowed to read `ROBUSTHD_*` environment variables.
pub const FLAG_MODULE: &str = "crates/core/src/config.rs";

/// One lint violation, addressable as `file:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable lint identifier (e.g. `unsafe-code`, `kernel-float-eq`).
    pub lint: &'static str,
    /// Workspace-relative path of the offending file.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "error[{}]: {}:{}: {}",
            self.lint,
            self.file.display(),
            self.line,
            self.message
        )
    }
}

/// A loaded workspace: every authored `.rs` file, scanned, with paths
/// relative to `root`.
#[derive(Debug)]
pub struct Workspace {
    /// The workspace root directory.
    pub root: PathBuf,
    /// Scanned source files, workspace-relative paths, sorted.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Loads every authored `.rs` file under `root` (root `src/`,
    /// `tests/`, `examples/`, and the whole `crates/` tree; `vendor/`,
    /// `target/`, and `fixtures/` are exempt).
    ///
    /// # Errors
    ///
    /// Returns a message naming any unreadable file.
    pub fn load(root: &Path) -> Result<Self, String> {
        let mut files = Vec::new();
        for sub in ["src", "tests", "examples", "benches", "crates"] {
            let dir = root.join(sub);
            if !dir.is_dir() {
                continue;
            }
            for path in collect_rust_files(&dir) {
                let mut file = SourceFile::load(&path)
                    .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
                file.path = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
                files.push(file);
            }
        }
        Ok(Self {
            root: root.to_path_buf(),
            files,
        })
    }

    /// The scanned file at a workspace-relative path, if present.
    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.path == Path::new(rel))
    }

    fn crate_roots(&self) -> Vec<&SourceFile> {
        self.files
            .iter()
            .filter(|f| {
                let p = f.path.to_string_lossy().replace('\\', "/");
                p == "src/lib.rs"
                    || p == "src/main.rs"
                    || (p.starts_with("crates/")
                        && (p.ends_with("/src/lib.rs") || p.ends_with("/src/main.rs")))
            })
            .collect()
    }
}

/// Runs every lint pass over the workspace at `root`.
///
/// # Errors
///
/// Returns a message when the workspace cannot be loaded.
pub fn run_all(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let ws = Workspace::load(root)?;
    let mut diagnostics = Vec::new();
    diagnostics.extend(lint_unsafe(&ws));
    diagnostics.extend(lint_flags(&ws));
    diagnostics.extend(lint_duality(&ws));
    diagnostics.extend(lint_hygiene(&ws));
    diagnostics.sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    Ok(diagnostics)
}

pub(crate) fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Byte offsets of whole-word occurrences of `word` in `text`.
pub(crate) fn word_occurrences(text: &str, word: &str) -> Vec<usize> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = text[from..].find(word) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + word.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + word.len().max(1);
    }
    out
}

/// Invariant 1: `#![forbid(unsafe_code)]` in every crate root, no
/// `unsafe` token anywhere in workspace code.
pub fn lint_unsafe(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for root_file in ws.crate_roots() {
        if !root_file.code.contains("#![forbid(unsafe_code)]") {
            out.push(Diagnostic {
                lint: "unsafe-forbid",
                file: root_file.path.clone(),
                line: 1,
                message: "crate root must carry #![forbid(unsafe_code)]".to_owned(),
            });
        }
    }
    for file in &ws.files {
        for at in word_occurrences(&file.code, "unsafe") {
            out.push(Diagnostic {
                lint: "unsafe-code",
                file: file.path.clone(),
                line: file.line_of(at),
                message: "`unsafe` is banned workspace-wide (including tests); \
                          model bits can only degrade gracefully if the code \
                          touching them has no undefined behaviour to offer"
                    .to_owned(),
            });
        }
    }
    out
}

/// The `"ROBUSTHD_X"` string literals of `pub const <NAME>_ENV_VAR`
/// declarations in the flag module, with their const names and lines.
fn registered_flags(config: &SourceFile) -> Vec<(String, String, usize)> {
    let mut out = Vec::new();
    for (idx, line) in config.nocomment.lines().enumerate() {
        let trimmed = line.trim_start();
        if !trimmed.starts_with("pub const ") {
            continue;
        }
        let Some(rest) = trimmed.strip_prefix("pub const ") else {
            continue;
        };
        let name: String = rest
            .bytes()
            .take_while(|&b| is_ident_byte(b))
            .map(char::from)
            .collect();
        if !name.ends_with("_ENV_VAR") {
            continue;
        }
        if let Some(value) = line
            .split('"')
            .nth(1)
            .filter(|v| v.starts_with("ROBUSTHD_"))
        {
            out.push((name, value.to_owned(), idx + 1));
        }
    }
    out
}

/// `ROBUSTHD_[A-Z0-9_]+` tokens in arbitrary text, with 1-based lines.
fn flag_tokens(text: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let mut from = 0;
        while let Some(pos) = line[from..].find("ROBUSTHD_") {
            let at = from + pos;
            let suffix: String = line[at + "ROBUSTHD_".len()..]
                .bytes()
                .take_while(|&b| b.is_ascii_uppercase() || b.is_ascii_digit() || b == b'_')
                .map(char::from)
                .collect();
            if !suffix.is_empty() {
                out.push((format!("ROBUSTHD_{suffix}"), idx + 1));
            }
            from = at + "ROBUSTHD_".len();
        }
    }
    out
}

/// Brace-matched body span (byte range of the code view) starting at the
/// first `{` at or after `open_from`.
pub(crate) fn brace_span(code: &str, open_from: usize) -> Option<(usize, usize)> {
    let bytes = code.as_bytes();
    let open = code[open_from..].find('{')? + open_from;
    let mut depth = 0i64;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some((open, i + 1));
                }
            }
            _ => {}
        }
    }
    None
}

/// Invariant 2: central flag registry, no stray environment reads, no
/// README drift, `robusthd flags` wired.
pub fn lint_flags(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // 2a. Environment reads outside the flag module (test code exempt;
    // the lint engine itself exempt — it quotes these patterns).
    for file in &ws.files {
        let rel = file.path.to_string_lossy().replace('\\', "/");
        if rel == FLAG_MODULE || rel.starts_with("crates/xtask/") {
            continue;
        }
        let in_test_dir = rel.contains("/tests/") || rel.starts_with("tests/");
        for (idx, line) in file.nocomment.lines().enumerate() {
            let lineno = idx + 1;
            if in_test_dir || file.line_in_test(lineno) {
                continue;
            }
            if line.contains("env::var") || line.contains("env::var_os") {
                out.push(Diagnostic {
                    lint: "flag-env-read",
                    file: file.path.clone(),
                    line: lineno,
                    message: format!(
                        "environment reads must go through {FLAG_MODULE} \
                         (parse_fast_flag / FlagRegistry), not ad-hoc env::var"
                    ),
                });
            }
        }
    }

    let Some(config) = ws.file(FLAG_MODULE) else {
        return out; // fixture workspaces without a flag module
    };
    let registered = registered_flags(config);

    // 2b. Every *_ENV_VAR const is registered in FlagRegistry::flags.
    if let Some(impl_at) = config.code.find("impl FlagRegistry") {
        if let Some((open, close)) = brace_span(&config.code, impl_at) {
            let body = &config.nocomment[open..close];
            for (const_name, flag_name, line) in &registered {
                if word_occurrences(body, const_name).is_empty() {
                    out.push(Diagnostic {
                        lint: "flag-registry",
                        file: config.path.clone(),
                        line: *line,
                        message: format!(
                            "{flag_name} ({const_name}) is not registered in \
                             FlagRegistry::flags — every flag must have exactly \
                             one registry entry"
                        ),
                    });
                }
            }
        }
    } else if !registered.is_empty() {
        out.push(Diagnostic {
            lint: "flag-registry",
            file: config.path.clone(),
            line: registered[0].2,
            message: "flag constants exist but no `impl FlagRegistry` block \
                      registers them"
                .to_owned(),
        });
    }

    // 2c. README drift, both directions.
    let readme_path = ws.root.join("README.md");
    if let Ok(readme) = fs::read_to_string(&readme_path) {
        let documented: BTreeSet<String> = flag_tokens(&readme)
            .into_iter()
            .map(|(name, _)| name)
            .collect();
        let known: BTreeSet<String> = registered
            .iter()
            .map(|(_, flag_name, _)| flag_name.clone())
            .collect();
        for (_, flag_name, line) in &registered {
            if !documented.contains(flag_name) {
                out.push(Diagnostic {
                    lint: "flag-readme",
                    file: config.path.clone(),
                    line: *line,
                    message: format!(
                        "{flag_name} is registered but undocumented — add it to \
                         the README runtime-flags table"
                    ),
                });
            }
        }
        for (token, line) in flag_tokens(&readme) {
            if !known.contains(&token) {
                out.push(Diagnostic {
                    lint: "flag-readme",
                    file: PathBuf::from("README.md"),
                    line,
                    message: format!(
                        "{token} is documented but not registered in FlagRegistry — \
                         stale docs or an unregistered flag"
                    ),
                });
            }
        }
    }

    // 2d. The `robusthd flags` subcommand prints the registry.
    if !registered.is_empty() {
        if let Some(commands) = ws.file("crates/cli/src/commands.rs") {
            if !commands.code.contains("FlagRegistry") {
                out.push(Diagnostic {
                    lint: "flag-cli",
                    file: commands.path.clone(),
                    line: 1,
                    message: "cli commands must print the FlagRegistry (the \
                              `flags` subcommand) so `robusthd flags` cannot \
                              drift from the registry"
                        .to_owned(),
                });
            }
        }
        if let Some(cli) = ws.file("crates/cli/src/lib.rs") {
            if !cli.code.contains("commands::flags") {
                out.push(Diagnostic {
                    lint: "flag-cli",
                    file: cli.path.clone(),
                    line: 1,
                    message: "cli dispatch must route a `flags` subcommand to \
                              commands::flags"
                        .to_owned(),
                });
            }
        }
    }
    out
}

/// Invariant 3: every fast-path/config toggle is pinned by a
/// differential or property test referencing it by name.
pub fn lint_duality(ws: &Workspace) -> Vec<Diagnostic> {
    let Some(config) = ws.file(FLAG_MODULE) else {
        return Vec::new();
    };
    let mut toggles: Vec<(String, usize)> = Vec::new();
    for at in word_occurrences(&config.code, "struct") {
        let rest = &config.code[at + "struct".len()..];
        let name: String = rest
            .trim_start()
            .bytes()
            .take_while(|&b| is_ident_byte(b))
            .map(char::from)
            .collect();
        if !name.ends_with("Config") || name.is_empty() {
            continue;
        }
        let body_is_toggle = brace_span(&config.code, at)
            .is_some_and(|(open, close)| config.code[open..close].contains("fast_path"));
        let has_from_env = word_occurrences(&config.code, &format!("impl {name}"))
            .iter()
            .any(|&impl_at| {
                brace_span(&config.code, impl_at)
                    .is_some_and(|(open, close)| config.code[open..close].contains("fn from_env"))
            });
        if body_is_toggle || has_from_env {
            toggles.push((name, config.line_of(at)));
        }
    }
    let suites: Vec<&SourceFile> = ws
        .files
        .iter()
        .filter(|f| {
            let p = f.path.to_string_lossy().replace('\\', "/");
            p.contains("/tests/") && (p.ends_with("_differential.rs") || p.ends_with("_props.rs"))
        })
        .collect();
    let mut out = Vec::new();
    for (name, line) in toggles {
        let covered = suites
            .iter()
            .any(|f| !word_occurrences(&f.nocomment, &name).is_empty());
        if !covered {
            out.push(Diagnostic {
                lint: "fast-duality",
                file: config.path.clone(),
                line,
                message: format!(
                    "{name} selects an execution path but no *_differential.rs or \
                     *_props.rs test references it — every fast path needs a \
                     bit-exactness suite pinning it to the reference path"
                ),
            });
        }
    }
    out
}

pub(crate) const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];
pub(crate) const WIDE_INT_TARGETS: &[&str] = &["usize", "isize", "u64", "i64", "u128", "i128"];
pub(crate) const FLOAT_RESULT_METHODS: &[&str] = &[".round()", ".ceil()", ".floor()", ".trunc()"];

/// Whether a token (stripped of a leading `-`) is a float literal.
fn is_float_literal(token: &str) -> bool {
    let tok = token.strip_prefix('-').unwrap_or(token);
    let tok = tok
        .strip_suffix("f64")
        .or_else(|| tok.strip_suffix("f32"))
        .map_or(tok, |t| t.strip_suffix('_').unwrap_or(t));
    !tok.is_empty()
        && tok.bytes().next().is_some_and(|b| b.is_ascii_digit())
        && tok.contains('.')
        && tok
            .bytes()
            .all(|b| b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'_')
}

/// The last operand-ish token before byte `end` of `line`.
pub(crate) fn token_before(line: &str, end: usize) -> &str {
    let upto = line[..end].trim_end();
    let start = upto
        .rfind(|c: char| !(c.is_ascii_alphanumeric() || c == '.' || c == '_' || c == '-'))
        .map_or(0, |i| i + 1);
    &upto[start..]
}

/// The first operand-ish token after byte `start` of `line`.
pub(crate) fn token_after(line: &str, start: usize) -> &str {
    let from = line[start..].trim_start();
    let end = from
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '.' || c == '_' || c == '-'))
        .unwrap_or(from.len());
    &from[..end]
}

/// Invariant 4: hot-path hygiene inside the kernel modules.
pub fn lint_hygiene(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for rel in KERNEL_MODULES {
        let Some(file) = ws.file(rel) else { continue };
        for (idx, line) in file.code.lines().enumerate() {
            let lineno = idx + 1;
            if file.line_in_test(lineno) {
                continue;
            }
            for (needle, what) in [(".unwrap()", "unwrap()"), (".expect(", "expect()")] {
                if line.contains(needle) {
                    out.push(Diagnostic {
                        lint: "kernel-unwrap",
                        file: file.path.clone(),
                        line: lineno,
                        message: format!(
                            "{what} in a kernel hot path — match on the failure or \
                             propagate it; panics here take down serving workers"
                        ),
                    });
                }
            }
            for needle in [".get_bit(", ".set_bit("] {
                if line.contains(needle) {
                    out.push(Diagnostic {
                        lint: "kernel-bit-loop",
                        file: file.path.clone(),
                        line: lineno,
                        message: format!(
                            "bit-at-a-time {needle}..) in a kernel module — use the \
                             word-level kernels (write_bits/extract_bits, fused \
                             popcounts) instead"
                        ),
                    });
                }
            }
            out.extend(float_eq_diagnostics(file, line, lineno));
            out.extend(cast_diagnostics(file, line, lineno));
        }
    }
    out
}

fn float_eq_diagnostics(file: &SourceFile, line: &str, lineno: usize) -> Vec<Diagnostic> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = line[from..].find("==").map(|p| p + from).or_else(|| {
        line[from..]
            .find("!=")
            .map(|p| p + from)
            .filter(|&p| bytes.get(p + 1) == Some(&b'='))
    }) {
        let op_ok = (pos == 0 || !matches!(bytes[pos - 1], b'=' | b'!' | b'<' | b'>'))
            && bytes.get(pos + 2) != Some(&b'=');
        if op_ok {
            let lhs = token_before(line, pos);
            let rhs = token_after(line, pos + 2);
            if is_float_literal(lhs) || is_float_literal(rhs) {
                out.push(Diagnostic {
                    lint: "kernel-float-eq",
                    file: file.path.clone(),
                    line: lineno,
                    message: "float equality in a kernel module — compare with an \
                              explicit ordering or tolerance instead"
                        .to_owned(),
                });
            }
        }
        from = pos + 2;
    }
    out
}

fn cast_diagnostics(file: &SourceFile, line: &str, lineno: usize) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for at in word_occurrences(line, "as") {
        let target = token_after(line, at + 2);
        let before = line[..at].trim_end();
        if NARROW_TARGETS.contains(&target) {
            out.push(Diagnostic {
                lint: "kernel-cast",
                file: file.path.clone(),
                line: lineno,
                message: format!(
                    "truncating `as {target}` in a kernel module — route the \
                     conversion through hypervector::cast (checked) instead"
                ),
            });
        } else if let Some(method) = WIDE_INT_TARGETS
            .contains(&target)
            .then(|| FLOAT_RESULT_METHODS.iter().find(|m| before.ends_with(**m)))
            .flatten()
        {
            out.push(Diagnostic {
                lint: "kernel-cast",
                file: file.path.clone(),
                line: lineno,
                message: format!(
                    "float→integer `{method} as {target}` in a kernel module — \
                     use hypervector::cast::round_to_* (checked) instead"
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_occurrences_respects_boundaries() {
        assert_eq!(
            word_occurrences("unsafe unsafely un_safe", "unsafe"),
            vec![0]
        );
        assert_eq!(word_occurrences("x as u8", "as").len(), 1);
        assert!(word_occurrences("alias", "as").is_empty());
    }

    #[test]
    fn float_literals_are_recognized() {
        assert!(is_float_literal("0.0"));
        assert!(is_float_literal("-1.5"));
        assert!(is_float_literal("1.0e3"));
        assert!(!is_float_literal("10"));
        assert!(!is_float_literal("x"));
        assert!(!is_float_literal(""));
    }

    #[test]
    fn tokens_around_operators() {
        let line = "if denom == 0.0 {";
        let pos = line.find("==").unwrap();
        assert_eq!(token_before(line, pos), "denom");
        assert_eq!(token_after(line, pos + 2), "0.0");
    }

    #[test]
    fn brace_span_matches_nesting() {
        let code = "impl X { fn a() { b(); } }";
        let (open, close) = brace_span(code, 0).unwrap();
        assert_eq!(&code[open..=open], "{");
        assert_eq!(close, code.len());
    }

    #[test]
    fn flag_tokens_extract_names() {
        let text = "set ROBUSTHD_THREADS=4 or ROBUSTHD_ENCODE_FAST; ROBUSTHD_* is prose";
        let tokens: Vec<String> = flag_tokens(text).into_iter().map(|(n, _)| n).collect();
        assert_eq!(tokens, vec!["ROBUSTHD_THREADS", "ROBUSTHD_ENCODE_FAST"]);
    }
}
